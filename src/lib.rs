//! # MUTLS-RS — Mixed Model Universal Software Thread-Level Speculation
//!
//! Facade crate re-exporting the whole MUTLS workspace:
//!
//! * [`membuf`] — speculative memory buffering (read/write sets, local
//!   buffers, address spaces, the shared [`membuf::GlobalMemory`] arena).
//! * [`adaptive`] — the adaptive speculation governor: per-fork-site
//!   profiling plus fork-throttling and per-site model-selection policies.
//! * [`runtime`] — the native TLS runtime: virtual CPUs, fork models
//!   (in-order, out-of-order, tree-form mixed), speculation, validation,
//!   commit, rollback and per-thread statistics.
//! * [`simcpu`] — a deterministic discrete-event multicore simulator used
//!   to reproduce the paper's 64-core evaluation on small hosts.
//! * [`workloads`] — the eight benchmarks of Table II, sequential and
//!   speculative.
//! * [`harness`] — experiment definitions regenerating every figure and
//!   table of the paper's evaluation section.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and per-experiment index.

pub use mutls_adaptive as adaptive;
pub use mutls_harness as harness;
pub use mutls_membuf as membuf;
pub use mutls_runtime as runtime;
pub use mutls_simcpu as simcpu;
pub use mutls_workloads as workloads;

/// Commonly used items for writing speculative programs against the native
/// runtime.
pub mod prelude {
    pub use mutls_adaptive::{ForkDecision, Governor, GovernorConfig, PolicyKind, SiteProfile};
    pub use mutls_membuf::{GPtr, GlobalMemory};
    pub use mutls_runtime::{ForkModel, Runtime, RuntimeConfig, SpecContext};
    pub use mutls_workloads::WorkloadKind;
}
