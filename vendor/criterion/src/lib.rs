//! Offline shim of `criterion`: a minimal benchmarking harness exposing
//! the API surface this workspace's benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`, the
//! `criterion_group!`/`criterion_main!` macros).  Each benchmark is timed
//! over a fixed warm-up plus measurement loop and the median per-iteration
//! time is printed — no statistics machinery, but comparable run-to-run
//! numbers for the perf trajectory.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (subset of `criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Per-iteration timing callback handle.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = started.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples (accepted for API parity).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run_samples<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        // Warm-up round, then `sample_size` measured samples.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            per_iter.push(bencher.elapsed);
        }
        per_iter.sort();
        let median = per_iter[per_iter.len() / 2];
        println!(
            "bench: {}/{id} ... median {:?} ({} samples)",
            self.name, median, self.sample_size
        );
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_samples(&id.to_string(), f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_samples(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (no-op; prints happen eagerly).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Declare a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(runs >= 4, "warm-up + samples should run, got {runs}");
    }
}
