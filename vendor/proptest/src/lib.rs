//! Offline shim of `proptest`: deterministic pseudo-random property
//! testing covering the DSL subset this workspace's tests use —
//! `proptest! { fn f(x in strategy) {...} }`, `any::<T>()`, ranges as
//! strategies, `prop_map`, tuple strategies, `collection::vec`, and the
//! `prop_assert*` macros.  Each property runs a fixed number of
//! deterministic cases (no shrinking).

/// Default number of cases each property is executed with.
pub const CASES: u64 = 96;

/// Number of cases to run: the `PROPTEST_CASES` environment variable
/// when set (as in real proptest), else [`CASES`].  CI pins this low for
/// the heavyweight differential suites.
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(CASES)
}

/// Deterministic generator driving all strategies.
pub mod test_runner {
    /// splitmix64-based generator.
    #[derive(Debug, Clone)]
    pub struct Gen(u64);

    impl Gen {
        /// Create a generator from a seed.
        pub fn new(seed: u64) -> Self {
            Gen(seed)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (> 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::Gen;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, g: &mut Gen) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, g: &mut Gen) -> O {
            (self.f)(self.inner.generate(g))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, g: &mut Gen) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty range strategy");
                    self.start + g.below(span) as $t
                }
            }
        )*};
    }

    range_strategy!(u64, u32, usize);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(g: &mut Gen) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(g: &mut Gen) -> u64 {
            g.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(g: &mut Gen) -> u32 {
            g.next_u64() as u32
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(g: &mut Gen) -> bool {
            g.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`](super::prelude::any).
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, g: &mut Gen) -> T {
            T::arbitrary(g)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, g: &mut Gen) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(g),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::Gen;

    /// Strategy for `Vec`s with lengths drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start).max(1) as u64;
            let len = self.sizes.start + g.below(span) as usize;
            (0..len).map(|_| self.element.generate(g)).collect()
        }
    }

    /// Generate vectors of `element` values with a length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::Gen;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any::default()
    }
}

/// Assert inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Define deterministic property tests:
/// `proptest! { #[test] fn f(x in strategy, ...) { body } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut gen = $crate::test_runner::Gen::new(0xC0DE ^ stringify!($name).len() as u64);
                for _case in 0..$crate::cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut gen);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10) {
            prop_assert!((5..10).contains(&x));
        }

        #[test]
        fn map_and_tuples_compose(pair in (1u64..4, any::<bool>()), v in collection::vec(0u64..3, 1..5)) {
            prop_assert!(pair.0 >= 1 && pair.0 < 4);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn properties_run() {
        ranges_stay_in_bounds();
        map_and_tuples_compose();
    }
}
