//! Offline shim of `serde`: a JSON-only serialization pair of traits plus
//! re-exported derive macros, enough for the workspace's experiment rows
//! and the simulator's cost-model round-trip.  The derive macros (see
//! `vendor/serde_derive`) support non-generic structs with named fields —
//! exactly what this codebase derives.

pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON value (shared with the `serde_json` shim).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; exact for |x| ≤ 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Append this value's JSON representation to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Types that can be rebuilt from a parsed [`JsonValue`].
pub trait Deserialize: Sized {
    /// Rebuild a value, or explain why the JSON does not fit.
    fn deserialize(value: &JsonValue) -> Result<Self, String>;
}

/// Append one `"name": value` object member (derive-generated code).
pub fn ser_field<T: Serialize + ?Sized>(out: &mut String, name: &str, value: &T, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    ser_str(out, name);
    out.push(':');
    value.serialize_json(out);
}

/// Look up an object member (derive-generated code).
pub fn obj_get<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Result<&'a JsonValue, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn ser_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &JsonValue) -> Result<Self, String> {
                match value {
                    JsonValue::Num(n) => Ok(*n as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &JsonValue) -> Result<Self, String> {
        match value {
            JsonValue::Num(n) => Ok(*n),
            JsonValue::Null => Ok(f64::NAN),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize(value: &JsonValue) -> Result<Self, String> {
        match value {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        ser_str(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        ser_str(out, self);
    }
}

impl Deserialize for String {
    fn deserialize(value: &JsonValue) -> Result<Self, String> {
        match value {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &JsonValue) -> Result<Self, String> {
        match value {
            JsonValue::Arr(items) => items.iter().map(T::deserialize).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &JsonValue) -> Result<Self, String> {
        let items: Vec<T> = Vec::deserialize(value)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected {N}-element array, got {got}"))
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        // Serialized as an array of `[key, value]` pairs so non-string
        // keys work; BTreeMap ordering keeps the output deterministic.
        out.push('[');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            k.serialize_json(out);
            out.push(',');
            v.serialize_json(out);
            out.push(']');
        }
        out.push(']');
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize(value: &JsonValue) -> Result<Self, String> {
        // Mirrors the array-of-`[key, value]`-pairs encoding above.
        let pairs: Vec<(K, V)> = Vec::deserialize(value)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &JsonValue) -> Result<Self, String> {
        match value {
            JsonValue::Arr(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(format!("expected 2-element array, got {other:?}")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        let mut out = String::new();
        42u64.serialize_json(&mut out);
        out.push(' ');
        true.serialize_json(&mut out);
        out.push(' ');
        "a\"b".serialize_json(&mut out);
        assert_eq!(out, r#"42 true "a\"b""#);
    }

    #[test]
    fn vec_and_tuple_serialize() {
        let mut out = String::new();
        vec![("x".to_string(), 0.5f64)].serialize_json(&mut out);
        assert_eq!(out, r#"[["x",0.5]]"#);
    }

    #[test]
    fn arrays_and_maps_round_trip() {
        let arr = JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.0)]);
        assert_eq!(<[u64; 2]>::deserialize(&arr).unwrap(), [1, 2]);
        assert!(<[u64; 3]>::deserialize(&arr).unwrap_err().contains("3"));

        let mut map = std::collections::BTreeMap::new();
        map.insert("b".to_string(), 2u64);
        map.insert("a".to_string(), 1u64);
        let mut out = String::new();
        map.serialize_json(&mut out);
        assert_eq!(out, r#"[["a",1],["b",2]]"#);
        let parsed = JsonValue::Arr(vec![
            JsonValue::Arr(vec![JsonValue::Str("a".into()), JsonValue::Num(1.0)]),
            JsonValue::Arr(vec![JsonValue::Str("b".into()), JsonValue::Num(2.0)]),
        ]);
        let back = std::collections::BTreeMap::<String, u64>::deserialize(&parsed).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn obj_get_reports_missing_fields() {
        let obj = vec![("a".to_string(), JsonValue::Num(1.0))];
        assert!(obj_get(&obj, "a").is_ok());
        assert!(obj_get(&obj, "b").unwrap_err().contains("`b`"));
    }
}
