//! Offline shim of the `rand` crate: the build environment has no network
//! access, so the workspace vendors the small API surface it actually uses
//! (`SmallRng`, `SeedableRng`, `Rng::gen_bool`, `Rng::gen_range`).
//!
//! The generator is a splitmix64-seeded xoshiro256** — deterministic for a
//! given seed, which is all the runtime's rollback-injection knob and the
//! simulator need.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Bernoulli draw with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform draw from `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Small, fast generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64 (mirrors `rand::rngs::SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
