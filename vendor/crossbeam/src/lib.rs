//! Offline shim of the `crossbeam` crate: only the unbounded MPSC channel
//! surface the runtime uses, implemented over `std::sync::mpsc` (whose
//! `Sender` has been `Sync` since Rust 1.72, which is all the
//! `ThreadManager` slots need).

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crossbeam, `Debug` does not require `T: Debug`.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only when the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails when all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn send_and_receive_across_threads() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..10 {
            sum += rx.recv().unwrap();
        }
        handle.join().unwrap();
        assert_eq!(sum, 45);
    }

    #[test]
    fn recv_fails_after_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
