//! Offline shim of the `parking_lot` crate: `Mutex`, `RwLock` and
//! `Condvar` with parking_lot's non-poisoning API, implemented over the
//! std primitives (poison errors are swallowed via `into_inner`).

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard of a [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value (ignoring
    /// poisoning, as parking_lot mutexes cannot be poisoned).
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.0.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Acquire the lock if it is free right now (`None` when contended),
    /// ignoring poisoning.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self.0.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses, releasing the guard
    /// while waiting.  Returns `true` when the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .0
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        result.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose acquire methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard of a [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard of a [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected value (ignoring
    /// poisoning, as parking_lot locks cannot be poisoned).
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut guard = lock.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        handle.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
