//! Offline shim of `serde_json`: `to_string` / `from_str` over the
//! workspace's serde shim traits, with a small recursive-descent JSON
//! parser (numbers as f64 — exact for the integer magnitudes this
//! workspace serializes).

use std::fmt;

use serde::{Deserialize, JsonValue, Serialize};

/// Serialization / parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Parse a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize(&value).map_err(Error)
}

/// Parse a JSON string into the raw [`JsonValue`] tree (for callers that
/// want to inspect a document structurally rather than deserialize it
/// into a known type — e.g. validating an exported trace file).
pub fn parse(s: &str) -> Result<JsonValue, Error> {
    parse_value(s)
}

fn parse_value(s: &str) -> Result<JsonValue, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_any(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing data at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!(
            "expected `{}` at byte {pos}",
            b as char,
            pos = *pos
        )))
    }
}

fn parse_any(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_any(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_any(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(entries));
                    }
                    _ => {
                        return Err(Error(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid keyword at byte {pos}", pos = *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(Error("bad escape".into())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error("invalid UTF-8".into()))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, Error> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| Error(format!("bad number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_nested() {
        let v = parse_value(r#"{"a": [1, 2.5, "x\n"], "b": {"c": true, "d": null}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        assert_eq!(obj[0].0, "a");
        match &obj[0].1 {
            JsonValue::Arr(items) => {
                assert_eq!(items[0], JsonValue::Num(1.0));
                assert_eq!(items[2], JsonValue::Str("x\n".to_string()));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
        assert_eq!(to_string(&7u32).unwrap(), "7");
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<u64>("{nope").is_err());
        assert!(from_str::<u64>("12 34").is_err());
    }
}
