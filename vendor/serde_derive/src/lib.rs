//! Offline shim of `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for **non-generic structs with named fields**
//! (the only shapes this workspace derives), written against the compiler's
//! own `proc_macro` API so no syn/quote download is needed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extract `(struct_name, field_names)` from a struct item token stream.
fn parse_struct(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    let mut name = None;

    // Find `struct <Name>`, skipping visibility and outer attributes.
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Ident(ref ident) if ident.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("derive target must be a struct");

    // The first brace group after the name holds the named fields.
    let body = tokens
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("derive supports only structs with named fields");

    let mut fields = Vec::new();
    let mut inner = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included) and visibility.
        match inner.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                inner.next();
                inner.next(); // the [...] group
                continue;
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                inner.next();
                // Skip `(crate)`-style restrictions.
                if let Some(TokenTree::Group(g)) = inner.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        inner.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        // Field name.
        match inner.next() {
            Some(TokenTree::Ident(ident)) => fields.push(ident.to_string()),
            Some(other) => panic!("unexpected token in struct body: {other}"),
            None => break,
        }
        // Skip `: <type>` up to the next top-level comma, tracking angle
        // bracket depth (commas inside `<...>` belong to the type).
        let mut angle_depth = 0i32;
        for tt in inner.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    (name, fields)
}

/// Derive the workspace-shim `serde::Serialize` (JSON writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let mut body = String::new();
    for field in &fields {
        body.push_str(&format!(
            "::serde::ser_field(out, \"{field}\", &self.{field}, &mut first);\n"
        ));
    }
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self, out: &mut String) {{\n\
                 out.push('{{');\n\
                 let mut first = true;\n\
                 let _ = &mut first;\n\
                 {body}\
                 out.push('}}');\n\
             }}\n\
         }}"
    );
    code.parse().expect("generated impl parses")
}

/// Derive the workspace-shim `serde::Deserialize` (from parsed JSON).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let mut body = String::new();
    for field in &fields {
        body.push_str(&format!(
            "{field}: ::serde::Deserialize::deserialize(::serde::obj_get(obj, \"{field}\")?)?,\n"
        ));
    }
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::JsonValue) -> ::std::result::Result<Self, String> {{\n\
                 let obj = value.as_object().ok_or_else(|| \"expected object\".to_string())?;\n\
                 Ok({name} {{\n\
                     {body}\
                 }})\n\
             }}\n\
         }}"
    );
    code.parse().expect("generated impl parses")
}
