//! Live-metrics-plane oracle: series determinism, zero-cost disabled
//! path, and end-to-end export.
//!
//! The telemetry plane makes three promises this file pins down:
//!
//! 1. **Byte-identical series** — the simulator samples its registry off
//!    the *virtual* clock, so the serialized metrics time series (like
//!    the `RunReport`) is byte-identical at every `sim_threads` and
//!    shard policy.  Time Warp shard telemetry is deliberately excluded
//!    from the series, which is exactly what makes this hold.
//! 2. **Free when off** — a disabled registry is a one-branch no-op: a
//!    metrics-enabled replay moves zero *virtual* cycles relative to a
//!    disabled one (the report serializes identically), and the native
//!    runtime spawns no sampler thread.
//! 3. **Live derived gauges** — an instrumented native conflict run
//!    exports Prometheus text with non-zero rollback counters and the
//!    derived `rollback_amplification` / `speculation_success_rate` /
//!    `precise_pass_fraction` gauges.

use std::sync::Arc;

use serde::Serialize;

use mutls::membuf::GlobalMemory;
use mutls::runtime::{MetricsConfig, RuntimeConfig};
use mutls::simcpu::{record_region, simulate, Recording, ShardPolicy, SimConfig};
use mutls::workloads::conflict::{self, ChainConfig};
use mutls::workloads::Scale;

fn to_json<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    value.serialize_json(&mut out);
    out
}

/// A conflict-chain recording at full true sharing — rollback-heavy, so
/// every counter the plane tracks actually moves.
fn chain_recording() -> Recording {
    let config = ChainConfig::for_scale(Scale::Tiny).sharing_permille(1000);
    let memory = Arc::new(GlobalMemory::new(conflict::ARENA_BYTES));
    let data = conflict::chain_setup(&memory, &config);
    record_region(memory, |ctx| conflict::chain_run(ctx, data, config))
}

fn sim_config(sim_threads: usize, policy: ShardPolicy, metrics: MetricsConfig) -> SimConfig {
    SimConfig {
        num_cpus: 8,
        seed: 7,
        sim_threads,
        shard_policy: policy,
        metrics,
        ..SimConfig::default()
    }
}

#[test]
fn sim_metric_series_is_byte_identical_across_threads_and_policies() {
    let recording = chain_recording();
    let baseline = simulate(
        &recording,
        sim_config(1, ShardPolicy::CpuStripe, MetricsConfig::enabled()),
    );
    assert!(
        !baseline.metrics.is_empty(),
        "enabled metrics must sample at least the final snapshot"
    );
    let reference_series = baseline.metrics.to_json();
    let reference_report = to_json(&baseline.report);
    for sim_threads in [1, 4] {
        for policy in [ShardPolicy::CpuStripe, ShardPolicy::FiberHash] {
            let result = simulate(
                &recording,
                sim_config(sim_threads, policy, MetricsConfig::enabled()),
            );
            assert_eq!(
                result.metrics.to_json(),
                reference_series,
                "metrics series diverged at sim_threads={sim_threads}, policy={}",
                policy.label()
            );
            assert_eq!(
                to_json(&result.report),
                reference_report,
                "report diverged at sim_threads={sim_threads}, policy={}",
                policy.label()
            );
        }
    }
}

#[test]
fn enabling_metrics_moves_zero_virtual_cycles() {
    let recording = chain_recording();
    let disabled = simulate(
        &recording,
        sim_config(1, ShardPolicy::CpuStripe, MetricsConfig::default()),
    );
    let enabled = simulate(
        &recording,
        sim_config(1, ShardPolicy::CpuStripe, MetricsConfig::enabled()),
    );
    assert!(
        disabled.metrics.is_empty(),
        "disabled metrics must not sample"
    );
    assert_eq!(
        disabled.parallel_cycles, enabled.parallel_cycles,
        "metrics sampling must be invisible to the virtual clock"
    );
    assert_eq!(
        to_json(&disabled.report),
        to_json(&enabled.report),
        "metrics sampling must not perturb the simulated execution"
    );
}

#[test]
fn sim_final_snapshot_carries_live_counters_and_derived_gauges() {
    let result = simulate(
        &chain_recording(),
        sim_config(1, ShardPolicy::CpuStripe, MetricsConfig::enabled()),
    );
    let last = result.metrics.latest().expect("final snapshot");
    assert_eq!(
        last.counter("commits"),
        Some(result.report.committed_threads)
    );
    assert_eq!(
        last.counter("rollbacks"),
        Some(result.report.rolled_back_threads)
    );
    assert_eq!(
        last.counter("wasted_cycles"),
        Some(result.report.wasted_work())
    );
    let amplification = last.gauge("rollback_amplification").expect("derived gauge");
    assert!(
        (amplification - result.report.rollback_amplification()).abs() < 1e-12,
        "snapshot amplification {amplification} != report {}",
        result.report.rollback_amplification()
    );
    assert!(last.gauge("speculation_success_rate").is_some());
    assert!(last.gauge("precise_pass_fraction").is_some());
}

#[test]
fn native_conflict_run_exports_live_prometheus_metrics() {
    let chain = ChainConfig::for_scale(Scale::Tiny).sharing_permille(1000);
    let (sum, report, _, (series, last)) = conflict::chain_native_observed(
        chain,
        RuntimeConfig::with_cpus(4).metrics(MetricsConfig::enabled().sample_interval_ms(1)),
    );
    assert_eq!(sum, conflict::chain_reference(chain), "checksum mismatch");
    assert!(!series.is_empty(), "the sampler must retain snapshots");
    assert_eq!(last.counter("commits"), Some(report.committed_threads));
    assert_eq!(last.counter("rollbacks"), Some(report.rolled_back_threads));
    assert!(
        last.counter("rollbacks").unwrap_or(0) > 0,
        "100% sharing must roll threads back"
    );
    let text = mutls::runtime::metrics::prometheus_text(&last, &[]);
    assert!(text.contains("# TYPE mutls_rollbacks_total counter"));
    assert!(text.contains("mutls_rollback_amplification"));
    assert!(text.contains("mutls_speculation_success_rate"));
    assert!(text.contains("mutls_precise_pass_fraction"));
}

#[test]
fn disabled_native_metrics_capture_is_empty() {
    let chain = ChainConfig::for_scale(Scale::Tiny).sharing_permille(0);
    let (_, _, _, (series, last)) =
        conflict::chain_native_observed(chain, RuntimeConfig::with_cpus(2));
    assert!(series.is_empty(), "disabled metrics must not sample");
    assert_eq!(
        last.counter("forks"),
        Some(0),
        "disabled registry stays zero"
    );
}
