//! Differential sequential-vs-speculative oracle.
//!
//! The range-granular commit log changes *what* validation compares
//! (range versions instead of word versions), which is exactly the kind
//! of change that can corrupt results silently: a missed conflict
//! produces a wrong answer, not a crash.  This suite therefore runs
//! **every** workload in the registry speculatively and sequentially and
//! asserts the final memory states agree — across tracking grains (word,
//! cache line, page) and, for the conflict family, across true-sharing
//! rates.
//!
//! The guarantee under test is one-sided by design:
//!
//! * at every grain, speculative execution must equal the sequential
//!   reference (false sharing may roll threads back, never corrupt);
//! * at **word** grain, zero sharing must produce zero conflict
//!   rollbacks *structurally* — coarser grains are exempt, since
//!   adjacent private words may share a range.
//!
//! A proptest harness additionally fuzzes (grain, shards, CPUs, sharing
//! rate, recovery engine, adaptive-grain control, seed) on a fast chain
//! kernel; CI pins `PROPTEST_CASES` low in its dedicated job, while
//! local runs default to the full case count.  A dedicated pass runs the
//! whole registry with the adaptive-grain controller enabled (live
//! regrains, conservative whole-region flushes, eager reader dooming),
//! since regraining mid-run is exactly the kind of change that could
//! corrupt state silently.

use proptest::prelude::*;

use mutls::membuf::{
    CommitLogConfig, RollbackReason, LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2, WORD_GRAIN_LOG2,
};
use mutls::runtime::{GrainControlConfig, RecoveryConfig, RunReport, Runtime, RuntimeConfig};
use mutls::workloads::conflict::{self, ChainConfig, HistConfig};
use mutls::workloads::{
    arena_bytes, checksum, reference_checksum, run_speculative, setup, Scale, WorkloadKind,
};

/// The recovery engines the oracle sweeps (cascade baseline, targeted
/// dooming, targeted dooming + value-predict-and-retry, and the mvcc
/// engine with its multi-version rings and time-travel retry).
fn recovery_engines() -> [RecoveryConfig; 4] {
    [
        RecoveryConfig::cascade_only(),
        RecoveryConfig::targeted(),
        RecoveryConfig::targeted_with_retry(),
        RecoveryConfig::mvcc(),
    ]
}

/// The grains the oracle sweeps.
const GRAINS: [u32; 3] = [WORD_GRAIN_LOG2, LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2];

/// True-sharing rates (permille) swept for the conflict family.
const SHARING_PERMILLE: [u32; 3] = [0, 250, 1000];

/// Every workload the registry knows: the paper's Table II suite plus
/// the conflict-generating family.
fn registry() -> impl Iterator<Item = WorkloadKind> {
    WorkloadKind::ALL
        .into_iter()
        .chain(WorkloadKind::CONFLICT_FAMILY)
}

/// Run `kind` on the native runtime at the given commit-log grain and
/// return its checksum plus the run report.
fn native_at_grain(kind: WorkloadKind, grain_log2: u32, cpus: usize) -> (u64, RunReport) {
    let runtime = Runtime::new(
        RuntimeConfig::with_cpus(cpus)
            .memory_bytes(arena_bytes(kind, Scale::Tiny))
            .commit_grain_log2(grain_log2),
    );
    let memory = runtime.memory();
    let data = setup(kind, Scale::Tiny, &memory);
    let (_, report) = runtime.run(|ctx| run_speculative(ctx, &data));
    (checksum(&memory, &data), report)
}

#[test]
fn every_registry_workload_matches_sequential_at_every_grain() {
    // The runtime default is the full mvcc recovery engine (targeted
    // dooming + time-travel retry over the version rings), so this
    // registry-wide pass exercises reader registration, surgical dooming,
    // ring-precise validation and in-place retries at every grain — not
    // just the cascade.
    for kind in registry() {
        let expected = reference_checksum(kind, Scale::Tiny);
        for grain_log2 in GRAINS {
            let (got, report) = native_at_grain(kind, grain_log2, 3);
            assert_eq!(
                got,
                expected,
                "{} diverged from the sequential reference at grain 2^{grain_log2}B \
                 ({} rollbacks: {})",
                kind.name(),
                report.rolled_back_threads,
                report.rollback_breakdown()
            );
            assert_eq!(
                report.rollbacks_with(RollbackReason::Injected),
                0,
                "{}: injected rollbacks without opting in",
                kind.name()
            );
        }
    }
}

#[test]
fn every_registry_workload_matches_sequential_with_the_grain_controller() {
    // The adaptive-grain control plane changes *when* regions are tracked
    // at which grain — live, mid-run, with conservative whole-region
    // flushes and eager reader dooming on every regrain.  None of that
    // may change *what* commits: the whole registry must still converge
    // to the sequential state with the controller enabled (word floor,
    // page start, aggressive tick cadence so tiny runs actually regrain).
    for kind in registry() {
        let expected = reference_checksum(kind, Scale::Tiny);
        let runtime = Runtime::new(
            RuntimeConfig::with_cpus(3)
                .memory_bytes(arena_bytes(kind, Scale::Tiny))
                .adaptive_grain()
                .grain_control(GrainControlConfig::adaptive().tick_commits(1)),
        );
        let memory = runtime.memory();
        let data = setup(kind, Scale::Tiny, &memory);
        let (_, report) = runtime.run(|ctx| run_speculative(ctx, &data));
        assert_eq!(
            checksum(&memory, &data),
            expected,
            "{} diverged under the grain controller ({} rollbacks: {}, {} regrains)",
            kind.name(),
            report.rolled_back_threads,
            report.rollback_breakdown(),
            report.commit_log.regrains
        );
        assert_eq!(
            report.rollbacks_with(RollbackReason::Injected),
            0,
            "{}: injected rollbacks without opting in",
            kind.name()
        );
    }
}

#[test]
fn conflict_family_matches_sequential_under_every_recovery_engine() {
    // Recovery-equivalence oracle: cascade-only, targeted and
    // targeted+retry must all converge to the sequential state at every
    // grain — a doomed thread, an abandoned join or an in-place retry
    // may change *when* work is discarded, never *what* commits.
    for recovery in recovery_engines() {
        for grain_log2 in GRAINS {
            let config = RuntimeConfig::with_cpus(4)
                .commit_grain_log2(grain_log2)
                .recovery(recovery);

            let chain = ChainConfig::tiny().sharing_permille(500);
            let (state_ok, report) = conflict::chain_verify_native(chain, config);
            assert!(
                state_ok,
                "conflict_chain diverged under {} at grain 2^{grain_log2}B ({})",
                recovery.label(),
                report.rollback_breakdown()
            );

            let hist = HistConfig::tiny().sharing_permille(500);
            let (state_ok, report) = conflict::hist_verify_native(hist, config);
            assert!(
                state_ok,
                "hist_shared diverged under {} at grain 2^{grain_log2}B ({})",
                recovery.label(),
                report.rollback_breakdown()
            );

            // The cascade baseline must never consult the registry.
            if recovery == RecoveryConfig::cascade_only() {
                assert_eq!(report.targeted_dooms(), 0, "cascade doomed surgically");
                assert_eq!(report.retries(), 0, "cascade retried");
            }
        }
    }
}

#[test]
fn conflict_family_matches_sequential_across_sharing_and_grain() {
    for permille in SHARING_PERMILLE {
        for grain_log2 in GRAINS {
            let config = RuntimeConfig::with_cpus(4).commit_grain_log2(grain_log2);

            let chain = ChainConfig::tiny().sharing_permille(permille);
            let (state_ok, report) = conflict::chain_verify_native(chain, config);
            assert!(
                state_ok,
                "conflict_chain diverged at {permille}‰ sharing, grain 2^{grain_log2}B"
            );
            assert_conflict_structure("conflict_chain", &report, permille, grain_log2);

            let hist = HistConfig::tiny().sharing_permille(permille);
            let (state_ok, report) = conflict::hist_verify_native(hist, config);
            assert!(
                state_ok,
                "hist_shared diverged at {permille}‰ sharing, grain 2^{grain_log2}B"
            );
            assert_conflict_structure("hist_shared", &report, permille, grain_log2);
        }
    }
}

/// The structural assertions of the oracle: no injection ever; zero
/// sharing at word grain means zero conflict rollbacks; full sharing at
/// word grain means real conflicts were detected.
fn assert_conflict_structure(name: &str, report: &RunReport, permille: u32, grain_log2: u32) {
    assert_eq!(
        report.rollbacks_with(RollbackReason::Injected),
        0,
        "{name}: injected rollbacks without opting in"
    );
    if grain_log2 == WORD_GRAIN_LOG2 {
        if permille == 0 {
            assert_eq!(
                report.rollbacks_with(RollbackReason::Conflict),
                0,
                "{name}: conflict rollbacks with zero sharing at word grain ({})",
                report.rollback_breakdown()
            );
        }
        if permille == 1000 {
            assert!(
                report.rollbacks_with(RollbackReason::Conflict) > 0,
                "{name}: full sharing produced no conflicts at word grain ({})",
                report.rollback_breakdown()
            );
        }
    }
}

/// Fast chain kernel for the fuzzing harness: small link count and a
/// short mixing chain keep one case in the low milliseconds.
fn fast_chain(permille: u32, seed: u64) -> ChainConfig {
    ChainConfig {
        chunks: 10,
        work_per_chunk: 2_000,
        sharing_permille: permille,
        seed,
    }
}

proptest! {
    /// Randomized differential property: for arbitrary (grain, shards,
    /// CPU count, sharing rate, recovery engine, seed), the speculative
    /// chain execution equals the sequential reference and nothing is
    /// ever injected.
    #[test]
    fn randomized_chain_differential(
        grain_i in 0u32..3,
        shards in (0u32..3).prop_map(|i| [1usize, 4, 16][i as usize]),
        cpus in 2usize..6,
        permille in 0u32..1001,
        recovery_i in 0usize..4,
        adaptive_grain in any::<bool>(),
        tick_commits in 1u64..5,
        lock_free in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let grain_log2 = GRAINS[grain_i as usize];
        let recovery = recovery_engines()[recovery_i];
        let chain = fast_chain(permille, seed);
        let mut runtime_config = RuntimeConfig::with_cpus(cpus)
            .commit_log(CommitLogConfig {
                grain_log2,
                shards,
                lock_free,
                ..CommitLogConfig::default()
            })
            .recovery(recovery);
        if adaptive_grain {
            // Live regrains (page start over the swept floor grain, at a
            // random tick cadence) must preserve the oracle too.
            runtime_config = runtime_config
                .grain_control(GrainControlConfig::adaptive().tick_commits(tick_commits));
        }
        let (state_ok, report) = conflict::chain_verify_native(chain, runtime_config);
        prop_assert!(
            state_ok,
            "chain diverged: grain 2^{}B, {} shards, {} cpus, {}‰ sharing, {}, {} commit path, seed {seed:#x} ({})",
            grain_log2,
            shards,
            cpus,
            permille,
            recovery.label(),
            if lock_free { "lock-free" } else { "locked" },
            report.rollback_breakdown()
        );
        prop_assert_eq!(report.rollbacks_with(RollbackReason::Injected), 0);
        if permille == 0 && grain_log2 == WORD_GRAIN_LOG2 && !adaptive_grain {
            // Structural only at a *static* word grain: the controller's
            // page-start regions can false-share (and conservatively
            // doom) before they re-split.
            prop_assert_eq!(report.rollbacks_with(RollbackReason::Conflict), 0);
        }
    }
}
