//! Integration tests of the adaptive speculation governor across the
//! simulator and the native runtime: a pathological always-conflicting
//! fork site must be suppressed while a clean site keeps speculating, the
//! throttle policy must reduce rolled-back work on rollback-heavy
//! workloads, and the static policy must reproduce ungoverned behaviour
//! exactly.

use std::sync::Arc;

use mutls::adaptive::{GovernorConfig, PolicyKind};
use mutls::membuf::GlobalMemory;
use mutls::runtime::{task, Runtime, RuntimeConfig, TlsContext};
use mutls::simcpu::{record_region, simulate, RecordContext, Recording, SimConfig};
use mutls::workloads::{
    arena_bytes, checksum, md, reference_checksum, run_speculative, setup, Scale, WorkloadKind,
};

/// Fork-site IDs of the synthetic two-site workload.
const SITE_BAD: u32 = 900;
const SITE_GOOD: u32 = 901;

/// Build a recording with two fork sites per iteration: `SITE_BAD`'s child
/// always reads a cell the parent writes right afterwards (a guaranteed
/// read conflict), while `SITE_GOOD`'s child works on a private cell.
fn two_site_recording(iterations: usize) -> Recording {
    let memory = Arc::new(GlobalMemory::new(1 << 20));
    let shared = memory.alloc::<i64>(2);
    let private = memory.alloc::<i64>(iterations);
    record_region(Arc::clone(&memory), move |ctx| {
        for i in 0..iterations {
            // Pathological site: the child reads `shared[0]`, which the
            // parent writes while the child is in flight.
            let bad = task(move |ctx: &mut RecordContext| {
                ctx.work(2_000)?;
                let v = ctx.load(&shared, 0)?;
                ctx.store(&shared, 1, v + 1)?;
                ctx.barrier()
            });
            let bad_handle = ctx.fork(SITE_BAD, bad)?;
            ctx.work(2_000)?;
            ctx.store(&shared, 0, i as i64)?;
            ctx.join(bad_handle)?;

            // Clean site: the child owns its output cell outright.
            let good = task(move |ctx: &mut RecordContext| {
                ctx.work(2_000)?;
                ctx.store(&private, i, i as i64 * 3)?;
                ctx.barrier()
            });
            let good_handle = ctx.fork(SITE_GOOD, good)?;
            ctx.work(2_000)?;
            ctx.join(good_handle)?;
        }
        Ok(())
    })
}

fn governed(policy: PolicyKind) -> SimConfig {
    SimConfig {
        num_cpus: 8,
        fork_model: None,
        rollback_probability: 0.0,
        seed: 11,
        cost: Default::default(),
        governor: GovernorConfig::with_policy(policy),
        ..Default::default()
    }
}

#[test]
fn pathological_site_is_suppressed_while_clean_site_keeps_speculating() {
    let recording = two_site_recording(64);

    let throttled = simulate(&recording, governed(PolicyKind::Throttle));
    let sites = &throttled.report.sites;
    let bad = sites
        .iter()
        .find(|s| s.site == SITE_BAD)
        .expect("bad site profiled");
    let good = sites
        .iter()
        .find(|s| s.site == SITE_GOOD)
        .expect("good site profiled");

    // The conflicting site is mostly denied after the warm-up samples...
    assert!(
        bad.throttled > bad.forks,
        "bad site should be mostly suppressed: {} forks vs {} throttled",
        bad.forks,
        bad.throttled
    );
    assert!(
        bad.rollback_rate > 0.5,
        "bad site rate = {}",
        bad.rollback_rate
    );
    // ...while the clean site is never throttled and keeps committing.
    assert_eq!(good.throttled, 0, "clean site must not be throttled");
    assert!(good.commits > 32, "clean site commits = {}", good.commits);

    // And throttling pays: less work is rolled back than under Static.
    let staticp = simulate(&recording, governed(PolicyKind::Static));
    assert!(
        throttled.report.wasted_work() < staticp.report.wasted_work() / 2,
        "wasted work: throttle {} vs static {}",
        throttled.report.wasted_work(),
        staticp.report.wasted_work()
    );
    assert!(
        throttled.report.rolled_back_threads < staticp.report.rolled_back_threads,
        "rolled back: throttle {} vs static {}",
        throttled.report.rolled_back_threads,
        staticp.report.rolled_back_threads
    );
}

#[test]
fn throttle_reduces_rolled_back_work_on_a_rollback_heavy_workload() {
    // md at scaled size with a 40% injected rollback probability is the
    // harness's rollback-heavy configuration.
    let kind = WorkloadKind::Md;
    let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, Scale::Scaled)));
    let data = setup(kind, Scale::Scaled, &memory);
    let recording = record_region(memory, |ctx| run_speculative(ctx, &data));

    let run = |policy: PolicyKind| {
        simulate(
            &recording,
            SimConfig {
                num_cpus: 16,
                fork_model: None,
                rollback_probability: 0.4,
                seed: 0xAB5C155A,
                cost: Default::default(),
                governor: GovernorConfig::with_policy(policy),
                ..Default::default()
            },
        )
    };
    let staticp = run(PolicyKind::Static);
    let throttle = run(PolicyKind::Throttle);
    assert!(
        throttle.report.wasted_work() * 2 < staticp.report.wasted_work(),
        "throttle should at least halve wasted work: {} vs {}",
        throttle.report.wasted_work(),
        staticp.report.wasted_work()
    );
    assert!(
        throttle.report.rolled_back_threads < staticp.report.rolled_back_threads,
        "throttle should reduce rollbacks: {} vs {}",
        throttle.report.rolled_back_threads,
        staticp.report.rolled_back_threads
    );
    assert!(throttle.report.throttled_forks() > 0);
    // The profile table names the md force-phase site.
    let site = md::SITE_FORCE_CHUNK;
    assert!(throttle
        .report
        .sites
        .iter()
        .any(|s| s.site == site && s.throttled > 0));
}

#[test]
fn static_policy_reproduces_ungoverned_simulation_exactly() {
    let recording = two_site_recording(32);
    // `SimConfig::default()` leaves the governor at its default (Static);
    // an explicit Static governor must not change a single cycle or count.
    let default_run = simulate(&recording, SimConfig::with_cpus(8));
    let static_run = simulate(
        &recording,
        SimConfig::with_cpus(8).governor(GovernorConfig::with_policy(PolicyKind::Static)),
    );
    assert_eq!(default_run.parallel_cycles, static_run.parallel_cycles);
    assert_eq!(
        default_run.report.committed_threads,
        static_run.report.committed_threads
    );
    assert_eq!(
        default_run.report.rolled_back_threads,
        static_run.report.rolled_back_threads
    );
    assert_eq!(default_run.report.sites, static_run.report.sites);
    assert_eq!(static_run.report.throttled_forks(), 0);
}

#[test]
fn native_runtime_is_correct_and_throttles_under_forced_rollbacks() {
    let kind = WorkloadKind::Nqueen;
    let expected = reference_checksum(kind, Scale::Tiny);
    let runtime = Runtime::new(
        RuntimeConfig::with_cpus(2)
            .memory_bytes(arena_bytes(kind, Scale::Tiny))
            .rollback_probability(1.0)
            .governor(
                GovernorConfig::with_policy(PolicyKind::Throttle)
                    .min_samples(2)
                    .probe_interval(8),
            ),
    );
    let memory = runtime.memory();
    let data = setup(kind, Scale::Tiny, &memory);
    let (_, report) = runtime.run(|ctx| run_speculative(ctx, &data));
    // Rollback every join -> the site's rate hits 1.0 and the governor
    // suppresses it; the result must still be correct because the parent
    // executes the continuations inline.
    assert_eq!(
        checksum(&memory, &data),
        expected,
        "throttling broke the result"
    );
    assert!(
        report.throttled_forks() > 0,
        "expected throttled forks, sites: {:?}",
        report.sites
    );
    assert!(!report.sites.is_empty());
}

#[test]
fn native_runtime_model_select_stays_correct() {
    for kind in [WorkloadKind::Fft, WorkloadKind::Tsp] {
        let expected = reference_checksum(kind, Scale::Tiny);
        let runtime = Runtime::new(
            RuntimeConfig::with_cpus(3)
                .memory_bytes(arena_bytes(kind, Scale::Tiny))
                .governor(GovernorConfig::with_policy(PolicyKind::ModelSelect).min_samples(2)),
        );
        let memory = runtime.memory();
        let data = setup(kind, Scale::Tiny, &memory);
        let (_, report) = runtime.run(|ctx| run_speculative(ctx, &data));
        assert_eq!(
            checksum(&memory, &data),
            expected,
            "{}: model selection changed the result",
            kind.name()
        );
        assert!(!report.sites.is_empty());
    }
}
