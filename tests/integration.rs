//! Integration tests spanning the whole workspace: the same workload code
//! must produce identical results through the sequential baseline, the
//! native threaded runtime and the multicore simulator's recorder, and the
//! simulator must reproduce the qualitative behaviour the paper reports.

use std::sync::Arc;

use mutls::membuf::{CommitLogConfig, GlobalMemory, RollbackReason};
use mutls::runtime::{ForkModel, Runtime, RuntimeConfig};
use mutls::simcpu::{record_region, simulate, SimConfig};
use mutls::workloads::conflict::{
    chain_verify_native, hist_verify_native, ChainConfig, HistConfig,
};
use mutls::workloads::{checksum, reference_checksum, run_speculative, setup, Scale, WorkloadKind};

/// Run a workload on the native runtime and return its checksum plus the
/// run report.
fn native_checksum(
    kind: WorkloadKind,
    cpus: usize,
    rollback_probability: f64,
    model: ForkModel,
) -> (u64, mutls::runtime::RunReport) {
    let runtime = Runtime::new(
        RuntimeConfig::with_cpus(cpus)
            .memory_bytes(mutls::workloads::arena_bytes(kind, Scale::Tiny))
            .rollback_probability(rollback_probability)
            .fork_model(model),
    );
    let memory = runtime.memory();
    let data = setup(kind, Scale::Tiny, &memory);
    let (_, report) = runtime.run(|ctx| run_speculative(ctx, &data));
    (checksum(&memory, &data), report)
}

#[test]
fn native_runtime_matches_sequential_baseline_for_every_workload() {
    for kind in WorkloadKind::ALL {
        let expected = reference_checksum(kind, Scale::Tiny);
        let (got, report) = native_checksum(kind, 3, 0.0, ForkModel::Mixed);
        assert_eq!(got, expected, "{}: speculative result differs", kind.name());
        assert_eq!(
            report.committed_threads + report.rolled_back_threads,
            report.committed_threads + report.rolled_back_threads,
        );
    }
}

#[test]
fn native_runtime_is_correct_under_forced_rollbacks() {
    for kind in [
        WorkloadKind::Nqueen,
        WorkloadKind::Fft,
        WorkloadKind::ThreeXPlusOne,
    ] {
        let expected = reference_checksum(kind, Scale::Tiny);
        let (got, report) = native_checksum(kind, 2, 1.0, ForkModel::Mixed);
        assert_eq!(
            got,
            expected,
            "{}: rollback changed the result",
            kind.name()
        );
        assert!(
            report.rolled_back_threads > 0,
            "{}: no rollbacks injected",
            kind.name()
        );
    }
}

#[test]
fn native_runtime_is_correct_under_every_forking_model() {
    for model in ForkModel::ALL {
        let expected = reference_checksum(WorkloadKind::Matmult, Scale::Tiny);
        let (got, _) = native_checksum(WorkloadKind::Matmult, 3, 0.0, model);
        assert_eq!(got, expected, "matmult under {model}");
    }
}

#[test]
fn recorder_matches_sequential_baseline_for_every_workload() {
    for kind in WorkloadKind::ALL {
        let expected = reference_checksum(kind, Scale::Tiny);
        let memory = Arc::new(GlobalMemory::new(mutls::workloads::arena_bytes(
            kind,
            Scale::Tiny,
        )));
        let data = setup(kind, Scale::Tiny, &memory);
        let recording = record_region(Arc::clone(&memory), |ctx| run_speculative(ctx, &data));
        assert_eq!(
            checksum(&memory, &data),
            expected,
            "{}: recording changed the result",
            kind.name()
        );
        assert!(
            recording.task_count() > 1,
            "{}: no speculation recorded",
            kind.name()
        );
    }
}

#[test]
fn simulated_speedups_reproduce_the_papers_shape() {
    // Computation-intensive workloads scale much better than
    // memory-intensive ones (paper figures 3 vs 4).
    let speedup_at = |kind: WorkloadKind, cpus: usize| {
        let memory = Arc::new(GlobalMemory::new(mutls::workloads::arena_bytes(
            kind,
            Scale::Scaled,
        )));
        let data = setup(kind, Scale::Scaled, &memory);
        let recording = record_region(memory, |ctx| run_speculative(ctx, &data));
        simulate(&recording, SimConfig::with_cpus(cpus)).speedup()
    };
    let compute = speedup_at(WorkloadKind::ThreeXPlusOne, 32);
    let memory_bound = speedup_at(WorkloadKind::Fft, 32);
    assert!(
        compute > memory_bound,
        "3x+1 ({compute:.1}) should outscale fft ({memory_bound:.1})"
    );
    assert!(
        compute > 8.0,
        "3x+1 at 32 CPUs should show real speedup, got {compute:.1}"
    );
    assert!(
        memory_bound > 1.2,
        "fft should still speed up, got {memory_bound:.1}"
    );
}

#[test]
fn conflict_chain_real_conflicts_roll_back_and_preserve_sequential_state() {
    // 100% true sharing, injection disabled (the default): every
    // speculated link reads the cell its logical predecessor writes, so
    // rollbacks must occur, every one must be classified as a *real*
    // conflict, and the final memory state must equal the sequential run.
    let config = ChainConfig::tiny().sharing_permille(1000);
    let (state_ok, report) = chain_verify_native(config, RuntimeConfig::with_cpus(4));
    assert!(state_ok, "real conflicts changed the final memory state");
    assert!(
        report.rollbacks_with(RollbackReason::Conflict) > 0,
        "100% sharing produced no conflict rollbacks ({})",
        report.rollback_breakdown()
    );
    assert_eq!(
        report.rollbacks_with(RollbackReason::Injected),
        0,
        "injected rollbacks without opting in"
    );

    // 0% sharing: every link reads private data, so no conflict rollback
    // can occur — structurally, not probabilistically.  This guarantee
    // only holds at *word* grain: the default line-granular commit log
    // may add false-sharing rollbacks for adjacent words (correct, but
    // not zero), which tests/differential.rs covers separately.
    let private = ChainConfig::tiny().sharing_permille(0);
    let (state_ok, report) = chain_verify_native(
        private,
        RuntimeConfig::with_cpus(4).commit_log(CommitLogConfig::word_grain()),
    );
    assert!(state_ok);
    assert_eq!(
        report.rollbacks_with(RollbackReason::Conflict),
        0,
        "conflict rollbacks without any sharing ({})",
        report.rollback_breakdown()
    );
}

#[test]
fn hist_shared_read_modify_write_races_are_detected_and_corrected() {
    let config = HistConfig::tiny().sharing_permille(1000);
    let (state_ok, report) = hist_verify_native(config, RuntimeConfig::with_cpus(4));
    assert!(state_ok, "histogram diverged from the sequential run");
    assert!(
        report.rollbacks_with(RollbackReason::Conflict) > 0,
        "shared-bin increments produced no conflicts ({})",
        report.rollback_breakdown()
    );
    assert_eq!(report.rollbacks_with(RollbackReason::Injected), 0);
}

#[test]
fn simulator_detects_real_conflicts_in_the_conflict_family() {
    // The discrete-event simulator's publish-log conflict detection must
    // agree qualitatively: full sharing → conflict rollbacks, zero
    // sharing → none.  (Recordings execute sequentially, so this is fully
    // deterministic.)
    for kind in WorkloadKind::CONFLICT_FAMILY {
        let memory = Arc::new(GlobalMemory::new(mutls::workloads::arena_bytes(
            kind,
            Scale::Tiny,
        )));
        let data = setup(kind, Scale::Tiny, &memory);
        let recording = record_region(Arc::clone(&memory), |ctx| run_speculative(ctx, &data));
        let result = simulate(&recording, SimConfig::with_cpus(8));
        // The tiny presets use a 50% sharing rate: some conflicts, all real.
        assert!(
            result.rollback_reasons()[RollbackReason::Conflict.index()] > 0,
            "{}: simulator saw no conflicts",
            kind.name()
        );
        assert_eq!(
            result.rollback_reasons()[RollbackReason::Injected.index()],
            0,
            "{}: simulator injected rollbacks",
            kind.name()
        );
    }
}

#[test]
fn mixed_model_beats_simple_models_on_tree_recursion_in_simulation() {
    let kind = WorkloadKind::Nqueen;
    let memory = Arc::new(GlobalMemory::new(mutls::workloads::arena_bytes(
        kind,
        Scale::Tiny,
    )));
    let data = setup(kind, Scale::Tiny, &memory);
    let recording = record_region(memory, |ctx| run_speculative(ctx, &data));
    let mixed = simulate(&recording, SimConfig::with_cpus(16)).speedup();
    let ooo = simulate(
        &recording,
        SimConfig::with_cpus(16).fork_model(ForkModel::OutOfOrder),
    )
    .speedup();
    assert!(
        mixed >= ooo,
        "mixed ({mixed:.2}) should not lose to out-of-order ({ooo:.2})"
    );
}
