//! Time Warp parallel-simulation oracle: byte-identity and trajectory
//! reproduction.
//!
//! The sharded optimistic simulator (`SimConfig::sim_threads > 1`) makes
//! a strong promise: the serialized [`RunReport`] is **byte-identical**
//! to the sequential event loop's at every thread count and shard
//! policy.  These tests pin that promise down three ways:
//!
//! 1. **Registry-wide identity** — every workload the registry knows,
//!    simulated at 2/4/8 threads under both shard policies, serializes
//!    exactly like the sequential run.
//! 2. **Randomized identity** — a proptest fuzzes (threads, policy,
//!    conflict workload, sharing rate, grain, recovery engine, adaptive
//!    grain control, CPU count, seed) on fast conflict kernels.  CI pins
//!    `PROPTEST_CASES` low in its dedicated job; local runs default to
//!    the full case count.
//! 3. **Committed-trajectory reproduction** — the deterministic replay
//!    experiments re-run at `sim_threads = 4` must reproduce the
//!    committed `BENCH_PR4.json`, `BENCH_PR5.json` and `BENCH_PR8.json`
//!    replay rows counter-for-counter.  (`BENCH_PR7.json` carries only
//!    the *native* `commitbench` experiment — no simulator rows exist to
//!    replay, so the PR 7 baseline is out of scope by construction.)
//!
//! The cross-shard straggler unit test (injected virtual-past events
//! force ≥ 1 shard rollback and still converge identically) lives next
//! to the machinery in `crates/simcpu/src/schedule.rs`.

use std::sync::Arc;

use proptest::prelude::*;
use serde::{JsonValue, Serialize};

use mutls::harness::{graincontrol_replay, recovery_replay, ExperimentConfig};
use mutls::membuf::{GlobalMemory, LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2, WORD_GRAIN_LOG2};
use mutls::runtime::{GrainControlConfig, RecoveryConfig};
use mutls::simcpu::{record_region, simulate, Recording, ShardPolicy, SimConfig};
use mutls::workloads::conflict::{self, ChainConfig, HistConfig};
use mutls::workloads::{arena_bytes, run_speculative, setup, Scale, WorkloadKind};

fn to_json<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    value.serialize_json(&mut out);
    out
}

/// The thread counts the deterministic sweeps exercise (the proptest
/// additionally draws 3, an uneven shard split).
const SWEEP_THREADS: [usize; 3] = [2, 4, 8];

/// Both fiber → shard-worker maps.
const POLICIES: [ShardPolicy; 2] = [ShardPolicy::CpuStripe, ShardPolicy::FiberHash];

/// The recovery engines the fuzzer sweeps (same set as the native
/// differential oracle).
fn recovery_engines() -> [RecoveryConfig; 4] {
    [
        RecoveryConfig::cascade_only(),
        RecoveryConfig::targeted(),
        RecoveryConfig::targeted_with_retry(),
        RecoveryConfig::mvcc(),
    ]
}

const GRAINS: [u32; 3] = [WORD_GRAIN_LOG2, LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2];

/// Record a conflict-family workload on a fast kernel: small task counts
/// and short mixing chains keep one proptest case in the low
/// milliseconds while still producing real cross-fiber conflicts.
fn record_fast_conflict(kind: WorkloadKind, permille: u32, seed: u64) -> Recording {
    let memory = Arc::new(GlobalMemory::new(conflict::ARENA_BYTES));
    match kind {
        WorkloadKind::ConflictChain => {
            let config = ChainConfig {
                chunks: 10,
                work_per_chunk: 2_000,
                sharing_permille: permille,
                seed,
            };
            let data = conflict::chain_setup(&memory, &config);
            record_region(memory, |ctx| conflict::chain_run(ctx, data, config))
        }
        WorkloadKind::HistShared => {
            let config = HistConfig {
                items: 60,
                chunks: 8,
                shared_bins: 4,
                private_bins: 4,
                sharing_permille: permille,
                work_per_item: 500,
                seed,
            };
            let data = conflict::hist_setup(&memory, &config);
            record_region(memory, |ctx| conflict::hist_run(ctx, data, config))
        }
        other => unreachable!("{} is not a conflict-family workload", other.name()),
    }
}

#[test]
fn registry_workloads_are_byte_identical_at_every_thread_count() {
    for kind in WorkloadKind::ALL
        .into_iter()
        .chain(WorkloadKind::CONFLICT_FAMILY)
    {
        let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, Scale::Tiny)));
        let data = setup(kind, Scale::Tiny, &memory);
        let recording = record_region(memory, |ctx| run_speculative(ctx, &data));
        let sequential = simulate(&recording, SimConfig::with_cpus(16));
        assert_eq!(sequential.warp.sim_threads, 1);
        assert_eq!(sequential.warp.requests, 0, "sequential mode posts no work");
        let reference = to_json(&sequential.report);
        for sim_threads in SWEEP_THREADS {
            for policy in POLICIES {
                let parallel = simulate(
                    &recording,
                    SimConfig::with_cpus(16)
                        .sim_threads(sim_threads)
                        .shard_policy(policy),
                );
                assert_eq!(
                    reference,
                    to_json(&parallel.report),
                    "{} diverged at {sim_threads} threads under {}",
                    kind.name(),
                    policy.label()
                );
                assert_eq!(parallel.warp.sim_threads, sim_threads);
                assert!(
                    parallel.warp.requests > 0,
                    "{}: parallel mode never engaged the shard workers",
                    kind.name()
                );
            }
        }
    }
}

proptest! {
    /// Randomized identity: for arbitrary (threads, policy, conflict
    /// workload, sharing rate, grain, recovery engine, grain control,
    /// CPU count, seed), the parallel simulation serializes exactly like
    /// the sequential one — including under injected rollbacks, adaptive
    /// regrains, mvcc version rings and uneven (3-way) shard splits.
    #[test]
    fn randomized_parallel_simulation_is_byte_identical(
        threads_i in 0usize..4,
        policy_i in 0usize..2,
        kind_i in 0usize..2,
        permille in 0u32..1001,
        grain_i in 0usize..3,
        recovery_i in 0usize..4,
        adaptive_grain in any::<bool>(),
        rollback_injection in any::<bool>(),
        cpus in 2usize..17,
        seed in any::<u64>(),
    ) {
        let sim_threads = [2usize, 3, 4, 8][threads_i];
        let policy = POLICIES[policy_i];
        let kind = [WorkloadKind::ConflictChain, WorkloadKind::HistShared][kind_i];
        let recording = record_fast_conflict(kind, permille, seed);
        // The adaptive controller's floor is word grain (mirroring
        // `GrainMode::Adaptive`); static modes sweep the grain ladder.
        let grain_log2 = if adaptive_grain { WORD_GRAIN_LOG2 } else { GRAINS[grain_i] };
        let mut config = SimConfig {
            num_cpus: cpus,
            seed,
            recovery: recovery_engines()[recovery_i],
            ..SimConfig::default()
        }
        .grain_log2(grain_log2);
        if adaptive_grain {
            config.grain_control = GrainControlConfig::adaptive().tick_commits(2);
        }
        if rollback_injection {
            config = config.rollback_probability(0.3);
        }
        let sequential = to_json(&simulate(&recording, config.clone()).report);
        let parallel = simulate(
            &recording,
            config.clone().sim_threads(sim_threads).shard_policy(policy),
        );
        prop_assert_eq!(
            &sequential,
            &to_json(&parallel.report),
            "{} diverged: {} threads, {}, {}‰ sharing, grain 2^{}B, {}, adaptive={}, inject={}, {} cpus, seed {:#x}",
            kind.name(),
            sim_threads,
            policy.label(),
            permille,
            grain_log2,
            recovery_engines()[recovery_i].label(),
            adaptive_grain,
            rollback_injection,
            cpus,
            seed
        );
        prop_assert!(parallel.warp.requests > 0);
    }
}

// ---------------------------------------------------------------------------
// Committed-trajectory reproduction at sim_threads = 4.
// ---------------------------------------------------------------------------

fn u64_of(row: &[(String, JsonValue)], key: &str) -> u64 {
    match serde::obj_get(row, key) {
        Ok(JsonValue::Num(n)) => *n as u64,
        other => panic!("{key}: expected number, got {other:?}"),
    }
}

fn str_of<'a>(row: &'a [(String, JsonValue)], key: &str) -> &'a str {
    match serde::obj_get(row, key) {
        Ok(JsonValue::Str(s)) => s,
        other => panic!("{key}: expected string, got {other:?}"),
    }
}

/// Parse the named experiment's row array out of a committed baseline.
fn baseline_rows(file: &str, experiment: &str) -> Vec<JsonValue> {
    let path = format!("{}/{file}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let doc = serde_json::parse(&text).expect("baseline parses");
    let rows = serde::obj_get(doc.as_object().expect("object"), "experiments")
        .and_then(|e| serde::obj_get(e.as_object().expect("object"), experiment))
        .unwrap_or_else(|e| panic!("{file} has no {experiment} rows: {e:?}"));
    match rows {
        JsonValue::Arr(rows) => rows.clone(),
        other => panic!("{experiment} must be an array, got {other:?}"),
    }
}

/// Replay config matching the runs that produced the committed baselines
/// (`--scale tiny`, default seed and CPU sweep) — except the simulator
/// now runs the Time Warp split at 4 threads, which must not move a
/// single counter.
fn replay_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: Scale::Tiny,
        ..ExperimentConfig::default()
    }
    .with_sim_threads(4)
}

#[test]
fn parallel_recovery_replay_reproduces_bench_pr8() {
    let rows = baseline_rows("BENCH_PR8.json", "recovery_replay");
    let (fresh, _) = recovery_replay(&replay_config());
    assert_eq!(fresh.len(), rows.len(), "replay row count drifted");
    for (row, expect) in fresh.iter().zip(&rows) {
        let expect = expect.as_object().expect("row object");
        let point = format!(
            "{}/grain 2^{}B/{} at {:.0}% sharing",
            row.workload,
            row.grain_log2,
            row.recovery,
            row.sharing * 100.0
        );
        assert_eq!(row.sim_threads, 4, "{point}");
        assert_eq!(row.workload, str_of(expect, "workload"), "{point}");
        assert_eq!(row.recovery, str_of(expect, "recovery"), "{point}");
        assert_eq!(
            u64::from(row.grain_log2),
            u64_of(expect, "grain_log2"),
            "{point}"
        );
        for (label, got, want) in [
            ("committed", row.committed, u64_of(expect, "committed")),
            ("retried", row.retried, u64_of(expect, "retried")),
            (
                "rolled_back",
                row.rolled_back,
                u64_of(expect, "rolled_back"),
            ),
            (
                "targeted_dooms",
                row.targeted_dooms,
                u64_of(expect, "targeted_dooms"),
            ),
            (
                "precise_passes",
                row.precise_passes,
                u64_of(expect, "precise_passes"),
            ),
            (
                "ring_overflows",
                row.ring_overflows,
                u64_of(expect, "ring_overflows"),
            ),
            (
                "wasted_cycles",
                row.wasted_cycles,
                u64_of(expect, "wasted_cycles"),
            ),
        ] {
            assert_eq!(
                got, want,
                "{point}: {label} drifted vs BENCH_PR8.json at sim_threads=4"
            );
        }
    }
}

#[test]
fn parallel_recovery_replay_reproduces_bench_pr4() {
    // The PR 4 baseline predates the grain dimension (implicit word
    // grain) and the mvcc engine; the surviving subset — word grain,
    // single-version engines, in the same kind × sharing × engine order —
    // must still reproduce counter-for-counter.
    let rows = baseline_rows("BENCH_PR4.json", "recovery_replay");
    let (fresh, _) = recovery_replay(&replay_config());
    let fresh: Vec<_> = fresh
        .into_iter()
        .filter(|r| r.grain_log2 == WORD_GRAIN_LOG2 && r.recovery != "mvcc")
        .collect();
    assert_eq!(fresh.len(), rows.len(), "PR4 subset row count drifted");
    for (row, expect) in fresh.iter().zip(&rows) {
        let expect = expect.as_object().expect("row object");
        let point = format!(
            "{}/{} at {:.0}% sharing",
            row.workload,
            row.recovery,
            row.sharing * 100.0
        );
        assert_eq!(row.workload, str_of(expect, "workload"), "{point}");
        assert_eq!(row.recovery, str_of(expect, "recovery"), "{point}");
        for (label, got, want) in [
            ("committed", row.committed, u64_of(expect, "committed")),
            ("retried", row.retried, u64_of(expect, "retried")),
            (
                "rolled_back",
                row.rolled_back,
                u64_of(expect, "rolled_back"),
            ),
            (
                "targeted_dooms",
                row.targeted_dooms,
                u64_of(expect, "targeted_dooms"),
            ),
            (
                "wasted_cycles",
                row.wasted_cycles,
                u64_of(expect, "wasted_cycles"),
            ),
        ] {
            assert_eq!(
                got, want,
                "{point}: {label} drifted vs BENCH_PR4.json at sim_threads=4"
            );
        }
    }
}

#[test]
fn parallel_graincontrol_replay_reproduces_bench_pr5() {
    // Same subset rule as the trace-overhead bench: the replay has since
    // grown an mvcc recovery dimension; the single-version rows (the
    // engine BENCH_PR5.json was generated under) are the baseline.
    let rows = baseline_rows("BENCH_PR5.json", "graincontrol_replay");
    let (fresh, _) = graincontrol_replay(&replay_config());
    let fresh: Vec<_> = fresh
        .into_iter()
        .filter(|r| r.recovery == "targeted+retry")
        .collect();
    assert_eq!(fresh.len(), rows.len(), "PR5 subset row count drifted");
    for (row, expect) in fresh.iter().zip(&rows) {
        let expect = expect.as_object().expect("row object");
        let point = format!(
            "{}/{} at {:.0}% sharing",
            row.workload,
            row.mode,
            row.sharing * 100.0
        );
        assert_eq!(row.workload, str_of(expect, "workload"), "{point}");
        assert_eq!(row.mode, str_of(expect, "mode"), "{point}");
        for (label, got, want) in [
            ("committed", row.committed, u64_of(expect, "committed")),
            ("retried", row.retried, u64_of(expect, "retried")),
            (
                "rolled_back",
                row.rolled_back,
                u64_of(expect, "rolled_back"),
            ),
            (
                "stamp_writes",
                row.stamp_writes,
                u64_of(expect, "stamp_writes"),
            ),
            ("regrains", row.regrains, u64_of(expect, "regrains")),
            (
                "wasted_cycles",
                row.wasted_cycles,
                u64_of(expect, "wasted_cycles"),
            ),
        ] {
            assert_eq!(
                got, want,
                "{point}: {label} drifted vs BENCH_PR5.json at sim_threads=4"
            );
        }
    }
}
