//! Determinism oracle: same seed + same configuration ⇒ byte-identical
//! serialized results.
//!
//! The simulator is the deterministic substrate of every figure in the
//! harness, and PR-level changes keep adding concurrency (the parallel
//! sweep fan-out, the sharded commit log).  These tests pin the
//! guarantee down where it is supposed to be exact: the discrete-event
//! simulator and everything built on it, including the `par_map` sweep
//! fan-out, must reproduce byte-identical serialized output across runs.
//! (The *native* runtime reports wall-clock nanoseconds and is
//! intentionally out of scope.)

use std::sync::Arc;

use serde::Serialize;

use mutls::harness::{speedup_sweep, ExperimentConfig};
use mutls::membuf::{GlobalMemory, LINE_GRAIN_LOG2};
use mutls::simcpu::{record_region, simulate, SimConfig};
use mutls::workloads::{arena_bytes, run_speculative, setup, Scale, WorkloadKind};

fn to_json<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    value.serialize_json(&mut out);
    out
}

/// One full record → simulate pipeline, from a fresh arena.
fn pipeline(kind: WorkloadKind, config: &SimConfig) -> String {
    let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, Scale::Tiny)));
    let data = setup(kind, Scale::Tiny, &memory);
    let recording = record_region(memory, |ctx| run_speculative(ctx, &data));
    let result = simulate(&recording, config.clone());
    to_json(&result.report)
}

#[test]
fn simulated_run_reports_are_byte_identical_across_runs() {
    // Exercise the nondeterminism-prone paths deliberately: injected
    // rollbacks (RNG), a coarse commit-log grain (range conflicts) and
    // multiple shards (commit-lock cost).
    let config = SimConfig::with_cpus(16)
        .rollback_probability(0.3)
        .grain_log2(LINE_GRAIN_LOG2)
        .commit_shards(4);
    for kind in [
        WorkloadKind::Fft,
        WorkloadKind::ConflictChain,
        WorkloadKind::Nqueen,
    ] {
        let first = pipeline(kind, &config);
        let second = pipeline(kind, &config);
        assert_eq!(
            first,
            second,
            "{}: two identical record+simulate pipelines diverged",
            kind.name()
        );
        assert!(first.contains("committed_threads"), "report serialized");
    }
}

#[test]
fn parallel_sweep_fan_out_is_byte_identical_across_runs() {
    // The sweep fans its points out across host threads (par_map); the
    // serialized row set must not depend on scheduling.
    let kinds = [
        WorkloadKind::Fft,
        WorkloadKind::ThreeXPlusOne,
        WorkloadKind::HistShared,
    ];
    let config = ExperimentConfig {
        scale: Scale::Tiny,
        cpus: vec![1, 4, 16],
        seed: 42,
        sim_threads: 1,
        trace: None,
        metrics: None,
    };
    let first = to_json(&speedup_sweep(&kinds, &config));
    let second = to_json(&speedup_sweep(&kinds, &config));
    assert_eq!(first, second, "parallel sweep fan-out is nondeterministic");
    assert!(first.contains("\"workload\":\"fft\""));
}
