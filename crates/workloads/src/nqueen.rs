//! The nqueen benchmark — N-queens solution counting, memory intensive,
//! depth-first-search pattern.
//!
//! The first-row column choices are explored as a speculative DFS: each
//! choice forks the continuation exploring the remaining choices (the
//! tree-form recursion the mixed model is designed for) and solves its own
//! subtree with a bitmask DFS, storing the per-subtree solution count in a
//! distinct arena cell.

use mutls_membuf::{GPtr, GlobalMemory};
use mutls_runtime::{task, SpecResult, TlsContext};

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Board size (number of queens).
    pub n: usize,
}

impl Config {
    /// Paper-scale problem: 14 queens.
    pub fn paper() -> Self {
        Config { n: 14 }
    }

    /// Scaled-down problem for simulation and native testing.
    pub fn scaled() -> Self {
        Config { n: 10 }
    }

    /// Tiny problem for unit tests.
    pub fn tiny() -> Self {
        Config { n: 7 }
    }
}

/// Arena-resident data: per-first-column solution counts.
#[derive(Debug, Clone, Copy)]
pub struct Data {
    /// `counts[c]` = number of solutions whose first-row queen is in
    /// column `c`.
    pub counts: GPtr<u64>,
}

/// Allocate the benchmark's shared data.
pub fn setup(memory: &GlobalMemory, config: &Config) -> Data {
    Data {
        counts: memory.alloc::<u64>(config.n),
    }
}

/// Count solutions of the sub-board where `cols`, `diag1`, `diag2` encode
/// already-attacked columns/diagonals, charging work per visited node.
fn solve<C: TlsContext>(
    ctx: &mut C,
    n: usize,
    row: usize,
    cols: u32,
    diag1: u32,
    diag2: u32,
) -> SpecResult<u64> {
    if row == n {
        return Ok(1);
    }
    let mut count = 0;
    let full = (1u32 << n) - 1;
    let mut free = full & !(cols | diag1 | diag2);
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free -= bit;
        ctx.work(3)?;
        count += solve(
            ctx,
            n,
            row + 1,
            cols | bit,
            (diag1 | bit) << 1,
            (diag2 | bit) >> 1,
        )?;
    }
    Ok(count)
}

/// Explore first-row column `c` and store its subtree's solution count.
fn subtree<C: TlsContext>(ctx: &mut C, data: Data, config: Config, c: usize) -> SpecResult<()> {
    let bit = 1u32 << c;
    let count = solve(ctx, config.n, 1, bit, bit << 1, bit >> 1)?;
    ctx.store(&data.counts, c, count)
}

/// Fork-site ID of the first-row column continuation speculation.
pub const SITE_COLUMN: u32 = 17;
/// DFS over first-row choices: each choice forks the continuation that
/// explores the remaining choices.
fn explore_from<C: TlsContext>(
    ctx: &mut C,
    data: Data,
    config: Config,
    c: usize,
) -> SpecResult<()> {
    if c + 1 < config.n {
        let cont = task(move |ctx: &mut C| explore_from(ctx, data, config, c + 1));
        let handle = ctx.fork(SITE_COLUMN, cont)?;
        subtree(ctx, data, config, c)?;
        ctx.join(handle)?;
    } else {
        subtree(ctx, data, config, c)?;
    }
    Ok(())
}

/// The speculative region: the whole search.
pub fn run<C: TlsContext>(ctx: &mut C, data: Data, config: Config) -> SpecResult<()> {
    explore_from(ctx, data, config, 0)
}

/// Result extractor: total number of solutions.
pub fn result(memory: &GlobalMemory, data: &Data, config: &Config) -> u64 {
    (0..config.n).map(|c| memory.get(&data.counts, c)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutls_runtime::DirectContext;
    use std::sync::Arc;

    fn count(n: usize) -> u64 {
        let config = Config { n };
        let memory = Arc::new(GlobalMemory::new(1 << 16));
        let data = setup(&memory, &config);
        run(&mut DirectContext::new(Arc::clone(&memory)), data, config).unwrap();
        result(&memory, &data, &config)
    }

    #[test]
    fn known_solution_counts() {
        assert_eq!(count(4), 2);
        assert_eq!(count(5), 10);
        assert_eq!(count(6), 4);
        assert_eq!(count(7), 40);
        assert_eq!(count(8), 92);
    }

    #[test]
    fn per_column_counts_are_symmetric() {
        let config = Config { n: 6 };
        let memory = Arc::new(GlobalMemory::new(1 << 16));
        let data = setup(&memory, &config);
        run(&mut DirectContext::new(Arc::clone(&memory)), data, config).unwrap();
        for c in 0..config.n {
            let mirror = config.n - 1 - c;
            assert_eq!(
                memory.get(&data.counts, c),
                memory.get(&data.counts, mirror),
                "column {c} vs its mirror"
            );
        }
    }
}
