//! The matmult benchmark — block-based matrix multiplication, memory
//! intensive, divide-and-conquer pattern.
//!
//! `C += A·B` on `n × n` matrices, recursively split into quadrants.
//! Following the paper, the computation is split into 4 sub-tasks (one per
//! `C` quadrant) and each sub-task's *second* product is speculated — the
//! two products of a quadrant read and write the same `C` sub-matrix, so
//! sub-sub-task speculation produces genuine read/write conflicts and
//! rollbacks (matmult is the only benchmark in the paper that exhibits
//! them).

use mutls_membuf::{GPtr, GlobalMemory};
use mutls_runtime::{task, SpecResult, TlsContext};

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Matrix dimension (must be a power of two).
    pub n: usize,
    /// Block size at which recursion switches to the direct triple loop.
    pub leaf: usize,
}

impl Config {
    /// Paper-scale problem: 1024×1024 matrices.
    pub fn paper() -> Self {
        Config { n: 1024, leaf: 64 }
    }

    /// Scaled-down problem for simulation and native testing.
    pub fn scaled() -> Self {
        Config { n: 64, leaf: 16 }
    }

    /// Tiny problem for unit tests.
    pub fn tiny() -> Self {
        Config { n: 16, leaf: 4 }
    }
}

/// Arena-resident matrices (row-major).
#[derive(Debug, Clone, Copy)]
pub struct Data {
    /// Left operand.
    pub a: GPtr<f64>,
    /// Right operand.
    pub b: GPtr<f64>,
    /// Accumulated product.
    pub c: GPtr<f64>,
}

/// Allocate and deterministically initialize the matrices.
pub fn setup(memory: &GlobalMemory, config: &Config) -> Data {
    assert!(config.n.is_power_of_two(), "n must be a power of two");
    let n = config.n;
    let data = Data {
        a: memory.alloc::<f64>(n * n),
        b: memory.alloc::<f64>(n * n),
        c: memory.alloc::<f64>(n * n),
    };
    for i in 0..n {
        for j in 0..n {
            memory.set(&data.a, i * n + j, ((i * 7 + j * 3) % 11) as f64 - 5.0);
            memory.set(&data.b, i * n + j, ((i * 5 + j * 13) % 7) as f64 - 3.0);
            memory.set(&data.c, i * n + j, 0.0);
        }
    }
    data
}

/// A quadrant of a matrix: top-left row/column and size.
#[derive(Debug, Clone, Copy)]
struct Block {
    row: usize,
    col: usize,
    size: usize,
}

/// Fork-site ID of the three speculated quadrant tasks.
pub const SITE_QUADRANT: u32 = 15;

/// Fork-site ID of the speculated second partial product.
pub const SITE_PARTIAL: u32 = 16;

impl Block {
    fn quadrant(&self, qr: usize, qc: usize) -> Block {
        let half = self.size / 2;
        Block {
            row: self.row + qr * half,
            col: self.col + qc * half,
            size: half,
        }
    }
}

/// Direct `C += A·B` on a leaf block.
fn leaf_multiply<C: TlsContext>(
    ctx: &mut C,
    data: Data,
    n: usize,
    a: Block,
    b: Block,
    c: Block,
) -> SpecResult<()> {
    for i in 0..c.size {
        for j in 0..c.size {
            let mut acc = ctx.load(&data.c, (c.row + i) * n + c.col + j)?;
            for k in 0..a.size {
                let av = ctx.load(&data.a, (a.row + i) * n + a.col + k)?;
                let bv = ctx.load(&data.b, (b.row + k) * n + b.col + j)?;
                acc += av * bv;
                ctx.work(2)?;
            }
            ctx.store(&data.c, (c.row + i) * n + c.col + j, acc)?;
        }
    }
    Ok(())
}

/// Recursive block multiply `C += A·B`.
fn multiply<C: TlsContext>(
    ctx: &mut C,
    data: Data,
    n: usize,
    leaf: usize,
    a: Block,
    b: Block,
    c: Block,
) -> SpecResult<()> {
    if c.size <= leaf {
        return leaf_multiply(ctx, data, n, a, b, c);
    }
    // For each C quadrant: C_qr,qc += A_qr,0 · B_0,qc  +  A_qr,1 · B_1,qc.
    // The three non-first quadrants are speculated (4 sub-tasks, as in the
    // paper); within a quadrant the second product is also speculated,
    // which conflicts with the first product on the same C block.
    let mut handles = Vec::new();
    for (qr, qc) in [(0, 1), (1, 0), (1, 1)] {
        let cont = task(move |ctx: &mut C| {
            quadrant(ctx, data, n, leaf, a, b, c, qr, qc)?;
            ctx.barrier()
        });
        handles.push(ctx.fork(SITE_QUADRANT, cont)?);
    }
    quadrant(ctx, data, n, leaf, a, b, c, 0, 0)?;
    for handle in handles.into_iter().rev() {
        ctx.join(handle)?;
    }
    Ok(())
}

/// Compute one quadrant of C: two block products accumulated into the same
/// destination (the second is speculated and typically rolls back).
#[allow(clippy::too_many_arguments)]
fn quadrant<C: TlsContext>(
    ctx: &mut C,
    data: Data,
    n: usize,
    leaf: usize,
    a: Block,
    b: Block,
    c: Block,
    qr: usize,
    qc: usize,
) -> SpecResult<()> {
    let cq = c.quadrant(qr, qc);
    let a0 = a.quadrant(qr, 0);
    let b0 = b.quadrant(0, qc);
    let a1 = a.quadrant(qr, 1);
    let b1 = b.quadrant(1, qc);
    let cont = task(move |ctx: &mut C| {
        multiply(ctx, data, n, leaf, a1, b1, cq)?;
        ctx.barrier()
    });
    let handle = ctx.fork(SITE_PARTIAL, cont)?;
    multiply(ctx, data, n, leaf, a0, b0, cq)?;
    ctx.join(handle)?;
    Ok(())
}

/// The speculative region: the whole product.
pub fn run<C: TlsContext>(ctx: &mut C, data: Data, config: Config) -> SpecResult<()> {
    let whole = Block {
        row: 0,
        col: 0,
        size: config.n,
    };
    multiply(ctx, data, config.n, config.leaf, whole, whole, whole)
}

/// Result extractor: quantized sum of C's entries.
pub fn result(memory: &GlobalMemory, data: &Data, config: &Config) -> u64 {
    let n = config.n;
    let mut acc = 0i64;
    for i in 0..n * n {
        acc = acc.wrapping_add((memory.get(&data.c, i) * 1e3).round() as i64);
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutls_runtime::DirectContext;
    use std::sync::Arc;

    #[test]
    fn block_multiply_matches_naive_product() {
        let config = Config::tiny();
        let memory = Arc::new(GlobalMemory::new(1 << 22));
        let data = setup(&memory, &config);
        let n = config.n;
        // Naive reference on host copies.
        let a: Vec<f64> = (0..n * n).map(|i| memory.get(&data.a, i)).collect();
        let b: Vec<f64> = (0..n * n).map(|i| memory.get(&data.b, i)).collect();
        let mut want = vec![0.0f64; n * n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    want[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        run(&mut DirectContext::new(Arc::clone(&memory)), data, config).unwrap();
        for (i, expect) in want.iter().enumerate() {
            assert!(
                (memory.get(&data.c, i) - expect).abs() < 1e-9,
                "C[{i}] mismatch"
            );
        }
    }

    #[test]
    fn quadrant_decomposition_covers_the_matrix() {
        let b = Block {
            row: 0,
            col: 0,
            size: 8,
        };
        let q11 = b.quadrant(1, 1);
        assert_eq!((q11.row, q11.col, q11.size), (4, 4, 4));
        let q01 = b.quadrant(0, 1);
        assert_eq!((q01.row, q01.col, q01.size), (0, 4, 4));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let memory = GlobalMemory::new(1 << 16);
        let _ = setup(&memory, &Config { n: 12, leaf: 4 });
    }
}
