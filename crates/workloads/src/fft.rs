//! The fft benchmark — recursive Fast Fourier Transform, memory intensive,
//! divide-and-conquer pattern.
//!
//! A radix-2 Cooley–Tukey FFT over `n = 2^k` complex points stored in the
//! shared arena (separate real/imaginary arrays plus ping-pong scratch).
//! At every recursion level the second recursive call is speculated and a
//! barrier placed right after it, exactly as the paper describes for its
//! divide-and-conquer benchmarks.

use mutls_membuf::{GPtr, GlobalMemory};
use mutls_runtime::{task, SpecResult, TlsContext};

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of complex points (must be a power of two).
    pub n: usize,
    /// Sub-problem size below which recursion stops speculating.
    pub fork_threshold: usize,
}

impl Config {
    /// Paper-scale problem: 2^20 doubles.
    pub fn paper() -> Self {
        Config {
            n: 1 << 20,
            fork_threshold: 1 << 14,
        }
    }

    /// Scaled-down problem for simulation and native testing.
    pub fn scaled() -> Self {
        Config {
            n: 1 << 12,
            fork_threshold: 1 << 7,
        }
    }

    /// Tiny problem for unit tests.
    pub fn tiny() -> Self {
        Config {
            n: 64,
            fork_threshold: 8,
        }
    }
}

/// Arena-resident data: signal and scratch buffers.
#[derive(Debug, Clone, Copy)]
pub struct Data {
    /// Real parts of the signal (input and output, in place).
    pub re: GPtr<f64>,
    /// Imaginary parts of the signal.
    pub im: GPtr<f64>,
    /// Scratch real parts (ping-pong buffer).
    pub sre: GPtr<f64>,
    /// Scratch imaginary parts.
    pub sim: GPtr<f64>,
}

/// Allocate and initialize the input signal (a deterministic mix of
/// sinusoids).
pub fn setup(memory: &GlobalMemory, config: &Config) -> Data {
    assert!(config.n.is_power_of_two(), "n must be a power of two");
    let data = Data {
        re: memory.alloc::<f64>(config.n),
        im: memory.alloc::<f64>(config.n),
        sre: memory.alloc::<f64>(config.n),
        sim: memory.alloc::<f64>(config.n),
    };
    for i in 0..config.n {
        let t = i as f64 / config.n as f64;
        let v = (2.0 * std::f64::consts::PI * 3.0 * t).sin()
            + 0.5 * (2.0 * std::f64::consts::PI * 17.0 * t).cos();
        memory.set(&data.re, i, v);
        memory.set(&data.im, i, 0.0);
        memory.set(&data.sre, i, 0.0);
        memory.set(&data.sim, i, 0.0);
    }
    data
}

/// Fork-site ID of the second-half recursion speculation.
pub const SITE_SPLIT: u32 = 14;
/// Recursive FFT of `n` points starting at `off` of (`dre`,`dim`), using
/// (`sre`,`sim`) as scratch.  The result is left in (`dre`,`dim`).
#[allow(clippy::too_many_arguments)]
fn fft_rec<C: TlsContext>(
    ctx: &mut C,
    dre: GPtr<f64>,
    dim: GPtr<f64>,
    sre: GPtr<f64>,
    sim: GPtr<f64>,
    off: usize,
    n: usize,
    fork_threshold: usize,
) -> SpecResult<()> {
    if n == 1 {
        return Ok(());
    }
    let half = n / 2;
    // Split even/odd indexed elements into the two halves of the scratch.
    for i in 0..half {
        let er = ctx.load(&dre, off + 2 * i)?;
        let ei = ctx.load(&dim, off + 2 * i)?;
        let or_ = ctx.load(&dre, off + 2 * i + 1)?;
        let oi = ctx.load(&dim, off + 2 * i + 1)?;
        ctx.store(&sre, off + i, er)?;
        ctx.store(&sim, off + i, ei)?;
        ctx.store(&sre, off + half + i, or_)?;
        ctx.store(&sim, off + half + i, oi)?;
        ctx.work(4)?;
    }
    // Recurse on the halves with the buffers swapped (ping-pong): the
    // second half is speculated.
    if n > fork_threshold {
        let cont = task(move |ctx: &mut C| {
            fft_rec(ctx, sre, sim, dre, dim, off + half, half, fork_threshold)?;
            ctx.barrier()
        });
        let handle = ctx.fork(SITE_SPLIT, cont)?;
        fft_rec(ctx, sre, sim, dre, dim, off, half, fork_threshold)?;
        ctx.join(handle)?;
    } else {
        fft_rec(ctx, sre, sim, dre, dim, off, half, fork_threshold)?;
        fft_rec(ctx, sre, sim, dre, dim, off + half, half, fork_threshold)?;
    }
    // Combine: butterflies from scratch back into the destination.
    for i in 0..half {
        let angle = -2.0 * std::f64::consts::PI * i as f64 / n as f64;
        let (wr, wi) = (angle.cos(), angle.sin());
        let er = ctx.load(&sre, off + i)?;
        let ei = ctx.load(&sim, off + i)?;
        let or_ = ctx.load(&sre, off + half + i)?;
        let oi = ctx.load(&sim, off + half + i)?;
        let tr = wr * or_ - wi * oi;
        let ti = wr * oi + wi * or_;
        ctx.store(&dre, off + i, er + tr)?;
        ctx.store(&dim, off + i, ei + ti)?;
        ctx.store(&dre, off + half + i, er - tr)?;
        ctx.store(&dim, off + half + i, ei - ti)?;
        ctx.work(10)?;
    }
    Ok(())
}

/// The speculative region: the full FFT.
pub fn run<C: TlsContext>(ctx: &mut C, data: Data, config: Config) -> SpecResult<()> {
    fft_rec(
        ctx,
        data.re,
        data.im,
        data.sre,
        data.sim,
        0,
        config.n,
        config.fork_threshold,
    )
}

/// Result extractor: quantized spectral energy.
pub fn result(memory: &GlobalMemory, data: &Data, config: &Config) -> u64 {
    let mut acc = 0i64;
    for i in 0..config.n {
        let re = memory.get(&data.re, i);
        let im = memory.get(&data.im, i);
        acc = acc.wrapping_add(((re * re + im * im) * 1e6).round() as i64);
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutls_runtime::DirectContext;
    use std::sync::Arc;

    /// O(n²) reference DFT for validation.
    fn dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut out_re = vec![0.0; n];
        let mut out_im = vec![0.0; n];
        for (k, (or_, oi)) in out_re.iter_mut().zip(out_im.iter_mut()).enumerate() {
            for j in 0..n {
                let angle = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                *or_ += re[j] * angle.cos() - im[j] * angle.sin();
                *oi += re[j] * angle.sin() + im[j] * angle.cos();
            }
        }
        (out_re, out_im)
    }

    #[test]
    fn fft_matches_direct_dft() {
        let config = Config::tiny();
        let memory = Arc::new(GlobalMemory::new(1 << 20));
        let data = setup(&memory, &config);
        let input_re: Vec<f64> = (0..config.n).map(|i| memory.get(&data.re, i)).collect();
        let input_im: Vec<f64> = (0..config.n).map(|i| memory.get(&data.im, i)).collect();
        let mut ctx = DirectContext::new(Arc::clone(&memory));
        run(&mut ctx, data, config).unwrap();
        let (want_re, want_im) = dft(&input_re, &input_im);
        for i in 0..config.n {
            assert!(
                (memory.get(&data.re, i) - want_re[i]).abs() < 1e-6,
                "re[{i}] mismatch"
            );
            assert!(
                (memory.get(&data.im, i) - want_im[i]).abs() < 1e-6,
                "im[{i}] mismatch"
            );
        }
    }

    #[test]
    fn spectrum_has_peaks_at_injected_frequencies() {
        let config = Config {
            n: 128,
            fork_threshold: 16,
        };
        let memory = Arc::new(GlobalMemory::new(1 << 20));
        let data = setup(&memory, &config);
        run(&mut DirectContext::new(Arc::clone(&memory)), data, config).unwrap();
        let mag = |k: usize| {
            let re = memory.get(&data.re, k);
            let im = memory.get(&data.im, k);
            (re * re + im * im).sqrt()
        };
        // The input is sin(2π·3t) + 0.5·cos(2π·17t): peaks at bins 3 and 17.
        assert!(mag(3) > 10.0 * mag(5));
        assert!(mag(17) > 10.0 * mag(5));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let memory = GlobalMemory::new(1 << 16);
        let _ = setup(
            &memory,
            &Config {
                n: 100,
                fork_threshold: 8,
            },
        );
    }
}
