//! The mandelbrot benchmark — computation intensive, loop pattern.
//!
//! Generates a `width × height` escape-time image with up to `max_iter`
//! iterations per pixel.  Rows are grouped into chunks and the loop
//! continuation is speculated, as in the paper's loop speculation.

use mutls_membuf::{GPtr, GlobalMemory};
use mutls_runtime::{task, SpecResult, TlsContext};

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Maximum escape-time iterations per pixel.
    pub max_iter: u32,
    /// Number of row chunks (speculative tasks).
    pub chunks: usize,
}

impl Config {
    /// Paper-scale problem: 512×512 image, 80 000 iterations.
    pub fn paper() -> Self {
        Config {
            width: 512,
            height: 512,
            max_iter: 80_000,
            chunks: 64,
        }
    }

    /// Scaled-down problem for simulation and native testing.
    pub fn scaled() -> Self {
        Config {
            width: 64,
            height: 64,
            max_iter: 2_000,
            chunks: 64,
        }
    }

    /// Tiny problem for unit tests.
    pub fn tiny() -> Self {
        Config {
            width: 16,
            height: 16,
            max_iter: 100,
            chunks: 4,
        }
    }
}

/// Arena-resident data: the iteration-count image.
#[derive(Debug, Clone, Copy)]
pub struct Data {
    /// Row-major iteration counts.
    pub image: GPtr<u64>,
}

/// Allocate the benchmark's shared data.
pub fn setup(memory: &GlobalMemory, config: &Config) -> Data {
    Data {
        image: memory.alloc::<u64>(config.width * config.height),
    }
}

/// Escape-time iteration count for one pixel.
fn escape_time(cx: f64, cy: f64, max_iter: u32) -> u32 {
    let (mut x, mut y) = (0.0f64, 0.0f64);
    let mut i = 0;
    while i < max_iter && x * x + y * y <= 4.0 {
        let nx = x * x - y * y + cx;
        y = 2.0 * x * y + cy;
        x = nx;
        i += 1;
    }
    i
}

/// Rows of chunk `chunk`, assigned round-robin so that the expensive rows
/// (those crossing the set) are spread across chunks.
fn chunk_rows(config: &Config, chunk: usize) -> impl Iterator<Item = usize> {
    (chunk..config.height).step_by(config.chunks.max(1))
}

/// Render the rows of chunk `i`.
fn chunk_body<C: TlsContext>(ctx: &mut C, data: Data, config: Config, i: usize) -> SpecResult<()> {
    for row in chunk_rows(&config, i) {
        let cy = -1.5 + 3.0 * row as f64 / config.height as f64;
        for col in 0..config.width {
            let cx = -2.0 + 3.0 * col as f64 / config.width as f64;
            let iters = escape_time(cx, cy, config.max_iter);
            ctx.work(iters as u64 + 1)?;
            ctx.store(&data.image, row * config.width + col, iters as u64)?;
        }
    }
    Ok(())
}

/// Fork-site ID of the row-chunk continuation speculation.
pub const SITE_CHUNK: u32 = 11;

fn run_from<C: TlsContext>(ctx: &mut C, data: Data, config: Config, i: usize) -> SpecResult<()> {
    if i + 1 < config.chunks {
        let cont = task(move |ctx: &mut C| run_from(ctx, data, config, i + 1));
        let handle = ctx.fork(SITE_CHUNK, cont)?;
        chunk_body(ctx, data, config, i)?;
        ctx.join(handle)?;
    } else {
        chunk_body(ctx, data, config, i)?;
    }
    Ok(())
}

/// The speculative region: renders the whole image.
pub fn run<C: TlsContext>(ctx: &mut C, data: Data, config: Config) -> SpecResult<()> {
    run_from(ctx, data, config, 0)
}

/// Result extractor: sum of all iteration counts (image checksum).
pub fn result(memory: &GlobalMemory, data: &Data, config: &Config) -> u64 {
    (0..config.width * config.height)
        .map(|i| memory.get(&data.image, i))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutls_runtime::DirectContext;
    use std::sync::Arc;

    #[test]
    fn escape_time_basics() {
        // The origin never escapes; far-away points escape immediately.
        assert_eq!(escape_time(0.0, 0.0, 50), 50);
        assert_eq!(escape_time(2.0, 2.0, 50), 1);
    }

    #[test]
    fn chunk_rows_partition_the_image() {
        let config = Config {
            width: 8,
            height: 10,
            max_iter: 10,
            chunks: 4,
        };
        let mut covered: Vec<usize> = (0..config.chunks)
            .flat_map(|c| chunk_rows(&config, c).collect::<Vec<_>>())
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..config.height).collect::<Vec<_>>());
    }

    #[test]
    fn direct_run_fills_every_pixel() {
        let config = Config::tiny();
        let memory = Arc::new(GlobalMemory::new(1 << 20));
        let data = setup(&memory, &config);
        let mut ctx = DirectContext::new(Arc::clone(&memory));
        run(&mut ctx, data, config).unwrap();
        let sum = result(&memory, &data, &config);
        assert!(sum > 0);
        // Interior pixel (center of the set) must hit max_iter.
        let center = (config.height / 2) * config.width + config.width / 3;
        assert_eq!(memory.get(&data.image, center), config.max_iter as u64);
    }
}
