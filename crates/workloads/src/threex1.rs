//! The 3x+1 (Collatz) benchmark — computation intensive, loop pattern.
//!
//! Enumerates the integers `1..=n`, counts the Collatz steps of each, and
//! accumulates per-chunk partial step counts.  The speculative version
//! splits the range into `chunks` chunks and speculates on the loop
//! continuation (the paper's workload-distribution strategy splits the
//! computation into 64 loop iterations).

use mutls_membuf::{GPtr, GlobalMemory};
use mutls_runtime::{task, SpecResult, TlsContext};

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of integers to enumerate.
    pub n: u64,
    /// Number of loop chunks (speculative tasks).
    pub chunks: usize,
}

impl Config {
    /// Paper-scale problem: 40 M integers, 64 chunks.
    pub fn paper() -> Self {
        Config {
            n: 40_000_000,
            chunks: 64,
        }
    }

    /// Scaled-down problem for simulation and native testing.
    pub fn scaled() -> Self {
        Config {
            n: 60_000,
            chunks: 64,
        }
    }

    /// Tiny problem for unit tests.
    pub fn tiny() -> Self {
        Config { n: 500, chunks: 8 }
    }
}

/// Arena-resident data: one partial step count per chunk.
#[derive(Debug, Clone, Copy)]
pub struct Data {
    /// Per-chunk partial sums of Collatz step counts.
    pub partial: GPtr<u64>,
}

/// Allocate the benchmark's shared data.
pub fn setup(memory: &GlobalMemory, config: &Config) -> Data {
    Data {
        partial: memory.alloc::<u64>(config.chunks),
    }
}

/// Number of Collatz steps until `x` reaches 1.
fn collatz_steps(mut x: u64) -> u64 {
    let mut steps = 0;
    while x != 1 {
        x = if x.is_multiple_of(2) {
            x / 2
        } else {
            3 * x + 1
        };
        steps += 1;
    }
    steps
}

/// Process chunk `i`: count steps for its sub-range and store the partial
/// sum.
fn chunk_body<C: TlsContext>(ctx: &mut C, data: Data, config: Config, i: usize) -> SpecResult<()> {
    let per = config.n / config.chunks as u64;
    let lo = 1 + i as u64 * per;
    let hi = if i + 1 == config.chunks {
        config.n
    } else {
        lo + per - 1
    };
    let mut sum = 0u64;
    for x in lo..=hi {
        let steps = collatz_steps(x);
        ctx.work(steps)?;
        sum += steps;
    }
    ctx.store(&data.partial, i, sum)
}

/// Fork-site ID of the chunk-loop continuation speculation.
pub const SITE_CHUNK: u32 = 10;

/// Chain speculation over chunks: each task forks the continuation
/// (the remaining chunks) and then processes its own chunk.
fn run_from<C: TlsContext>(ctx: &mut C, data: Data, config: Config, i: usize) -> SpecResult<()> {
    if i + 1 < config.chunks {
        let cont = task(move |ctx: &mut C| run_from(ctx, data, config, i + 1));
        let handle = ctx.fork(SITE_CHUNK, cont)?;
        chunk_body(ctx, data, config, i)?;
        ctx.join(handle)?;
    } else {
        chunk_body(ctx, data, config, i)?;
    }
    Ok(())
}

/// The speculative region: processes all chunks.
pub fn run<C: TlsContext>(ctx: &mut C, data: Data, config: Config) -> SpecResult<()> {
    run_from(ctx, data, config, 0)
}

/// Result extractor: total step count across all chunks.
pub fn result(memory: &GlobalMemory, data: &Data, config: &Config) -> u64 {
    (0..config.chunks)
        .map(|i| memory.get(&data.partial, i))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutls_runtime::DirectContext;
    use std::sync::Arc;

    #[test]
    fn collatz_known_values() {
        assert_eq!(collatz_steps(1), 0);
        assert_eq!(collatz_steps(2), 1);
        assert_eq!(collatz_steps(6), 8);
        assert_eq!(collatz_steps(27), 111);
    }

    #[test]
    fn direct_run_matches_plain_computation() {
        let config = Config::tiny();
        let memory = Arc::new(GlobalMemory::new(1 << 16));
        let data = setup(&memory, &config);
        let mut ctx = DirectContext::new(Arc::clone(&memory));
        run(&mut ctx, data, config).unwrap();
        let expected: u64 = (1..=config.n).map(collatz_steps).sum();
        assert_eq!(result(&memory, &data, &config), expected);
        assert!(ctx.work_units() > 0);
    }

    #[test]
    fn chunk_ranges_cover_everything_exactly_once() {
        let config = Config { n: 103, chunks: 8 };
        let memory = Arc::new(GlobalMemory::new(1 << 16));
        let data = setup(&memory, &config);
        let mut ctx = DirectContext::new(Arc::clone(&memory));
        run(&mut ctx, data, config).unwrap();
        let expected: u64 = (1..=config.n).map(collatz_steps).sum();
        assert_eq!(result(&memory, &data, &config), expected);
    }
}
