//! Uniform access to the benchmark suite: kinds, scales, descriptors
//! (Table II) and dispatch helpers used by the experiment harness.

use std::str::FromStr;
use std::sync::Arc;

use mutls_membuf::GlobalMemory;
use mutls_runtime::{DirectContext, SpecResult, TlsContext};

use crate::{bh, conflict, fft, mandelbrot, matmult, md, nqueen, threex1, tsp};

/// The eight benchmarks of the paper's Table II, plus the
/// conflict-generating family this repo adds on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// 3x+1 problem in number theory.
    ThreeXPlusOne,
    /// Mandelbrot fractal generation.
    Mandelbrot,
    /// 3D molecular dynamics simulation.
    Md,
    /// Barnes-Hut N-body simulation.
    Bh,
    /// Recursive Fast Fourier Transform.
    Fft,
    /// Block-based matrix multiplication.
    Matmult,
    /// N-queen problem.
    Nqueen,
    /// Travelling salesperson problem.
    Tsp,
    /// Value chain with a tunable true-sharing rate (repo extension).
    ConflictChain,
    /// Shared histogram with a tunable true-sharing rate (repo extension).
    HistShared,
}

impl WorkloadKind {
    /// All benchmarks in the paper's presentation order.
    pub const ALL: [WorkloadKind; 8] = [
        WorkloadKind::ThreeXPlusOne,
        WorkloadKind::Mandelbrot,
        WorkloadKind::Md,
        WorkloadKind::Bh,
        WorkloadKind::Fft,
        WorkloadKind::Matmult,
        WorkloadKind::Nqueen,
        WorkloadKind::Tsp,
    ];

    /// The three computation-intensive benchmarks (figure 3).
    pub const COMPUTATION_INTENSIVE: [WorkloadKind; 3] = [
        WorkloadKind::ThreeXPlusOne,
        WorkloadKind::Mandelbrot,
        WorkloadKind::Md,
    ];

    /// The five memory-intensive benchmarks (figure 4).
    pub const MEMORY_INTENSIVE: [WorkloadKind; 5] = [
        WorkloadKind::Fft,
        WorkloadKind::Matmult,
        WorkloadKind::Nqueen,
        WorkloadKind::Tsp,
        WorkloadKind::Bh,
    ];

    /// The tree-form recursion benchmarks used in the forking-model
    /// comparison (figure 10).
    pub const TREE_RECURSION: [WorkloadKind; 4] = [
        WorkloadKind::Fft,
        WorkloadKind::Matmult,
        WorkloadKind::Nqueen,
        WorkloadKind::Tsp,
    ];

    /// The conflict-generating family (repo extension): workloads with a
    /// tunable true-sharing rate that produce *real* cross-thread
    /// dependence violations, used to validate the governor without
    /// injected rollbacks.
    pub const CONFLICT_FAMILY: [WorkloadKind; 2] =
        [WorkloadKind::ConflictChain, WorkloadKind::HistShared];

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::ThreeXPlusOne => "3x+1",
            WorkloadKind::Mandelbrot => "mandelbrot",
            WorkloadKind::Md => "md",
            WorkloadKind::Bh => "bh",
            WorkloadKind::Fft => "fft",
            WorkloadKind::Matmult => "matmult",
            WorkloadKind::Nqueen => "nqueen",
            WorkloadKind::Tsp => "tsp",
            WorkloadKind::ConflictChain => "conflict_chain",
            WorkloadKind::HistShared => "hist_shared",
        }
    }
}

impl FromStr for WorkloadKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "3x+1" | "3xp1" | "threex1" | "collatz" => Ok(WorkloadKind::ThreeXPlusOne),
            "mandelbrot" => Ok(WorkloadKind::Mandelbrot),
            "md" => Ok(WorkloadKind::Md),
            "bh" | "barnes-hut" => Ok(WorkloadKind::Bh),
            "fft" => Ok(WorkloadKind::Fft),
            "matmult" | "matmul" => Ok(WorkloadKind::Matmult),
            "nqueen" | "nqueens" => Ok(WorkloadKind::Nqueen),
            "tsp" => Ok(WorkloadKind::Tsp),
            "conflict_chain" | "conflict-chain" | "conflictchain" => {
                Ok(WorkloadKind::ConflictChain)
            }
            "hist_shared" | "hist-shared" | "histshared" => Ok(WorkloadKind::HistShared),
            other => Err(format!("unknown workload: {other}")),
        }
    }
}

/// Computation- vs. memory-intensive classification (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// High computation density (few memory accesses per unit of work).
    ComputationIntensive,
    /// High memory-access density.
    MemoryIntensive,
}

/// Table II row for one benchmark.
#[derive(Debug, Clone)]
pub struct WorkloadDescriptor {
    /// Benchmark name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Amount of data at paper scale.
    pub amount_of_data: &'static str,
    /// Parallelism pattern.
    pub pattern: &'static str,
    /// Source language(s) in the paper.
    pub language: &'static str,
    /// Computation- or memory-intensive.
    pub class: WorkloadClass,
}

/// The Table II descriptor of a benchmark.
pub fn descriptor(kind: WorkloadKind) -> WorkloadDescriptor {
    match kind {
        WorkloadKind::ThreeXPlusOne => WorkloadDescriptor {
            name: "3x+1",
            description: "3x+1 problem in number theory",
            amount_of_data: "40M integers (enumerate)",
            pattern: "loop",
            language: "C/Fortran",
            class: WorkloadClass::ComputationIntensive,
        },
        WorkloadKind::Mandelbrot => WorkloadDescriptor {
            name: "mandelbrot",
            description: "mandelbrot fractal generation",
            amount_of_data: "512x512 image, maximum 80000 iterations",
            pattern: "loop",
            language: "C/Fortran",
            class: WorkloadClass::ComputationIntensive,
        },
        WorkloadKind::Md => WorkloadDescriptor {
            name: "md",
            description: "3D molecular dynamics simulation",
            amount_of_data: "256 particles, 400 iteration steps",
            pattern: "loop",
            language: "C/Fortran",
            class: WorkloadClass::ComputationIntensive,
        },
        WorkloadKind::Bh => WorkloadDescriptor {
            name: "bh",
            description: "Barnes-Hut N-body simulation",
            amount_of_data: "12800 bodies",
            pattern: "loop",
            language: "C++",
            class: WorkloadClass::MemoryIntensive,
        },
        WorkloadKind::Fft => WorkloadDescriptor {
            name: "fft",
            description: "recursive Fast Fourier Transform",
            amount_of_data: "2^20 doubles",
            pattern: "divide and conquer",
            language: "C",
            class: WorkloadClass::MemoryIntensive,
        },
        WorkloadKind::Matmult => WorkloadDescriptor {
            name: "matmult",
            description: "block-based matrix multiplication",
            amount_of_data: "1024x1024 matrices",
            pattern: "divide and conquer",
            language: "C",
            class: WorkloadClass::MemoryIntensive,
        },
        WorkloadKind::Nqueen => WorkloadDescriptor {
            name: "nqueen",
            description: "N-queen problem",
            amount_of_data: "14 queens",
            pattern: "depth-first search",
            language: "C",
            class: WorkloadClass::MemoryIntensive,
        },
        WorkloadKind::Tsp => WorkloadDescriptor {
            name: "tsp",
            description: "travelling sales person (TSP) problem",
            amount_of_data: "12 cities",
            pattern: "depth-first search",
            language: "C",
            class: WorkloadClass::MemoryIntensive,
        },
        WorkloadKind::ConflictChain => WorkloadDescriptor {
            name: "conflict_chain",
            description: "value chain with tunable true sharing (repo extension)",
            amount_of_data: "64 links, 50% shared",
            pattern: "loop (loop-carried dependence)",
            language: "Rust",
            class: WorkloadClass::MemoryIntensive,
        },
        WorkloadKind::HistShared => WorkloadDescriptor {
            name: "hist_shared",
            description: "shared histogram with tunable true sharing (repo extension)",
            amount_of_data: "4096 items, 16 shared bins",
            pattern: "loop (read-modify-write races)",
            language: "Rust",
            class: WorkloadClass::MemoryIntensive,
        },
    }
}

/// Human-readable label of a workload fork-site ID (the `point` passed to
/// `TlsContext::fork`), for per-site governor profile tables.
pub fn site_label(site: u32) -> Option<&'static str> {
    match site {
        threex1::SITE_CHUNK => Some("3x+1/chunk"),
        mandelbrot::SITE_CHUNK => Some("mandelbrot/chunk"),
        md::SITE_FORCE_CHUNK => Some("md/force-chunk"),
        bh::SITE_FORCE_CHUNK => Some("bh/force-chunk"),
        fft::SITE_SPLIT => Some("fft/split"),
        matmult::SITE_QUADRANT => Some("matmult/quadrant"),
        matmult::SITE_PARTIAL => Some("matmult/partial"),
        nqueen::SITE_COLUMN => Some("nqueen/column"),
        tsp::SITE_SECOND_CITY => Some("tsp/second-city"),
        conflict::SITE_CHAIN => Some("conflict_chain/link"),
        conflict::SITE_HIST_CHUNK => Some("hist_shared/chunk"),
        _ => None,
    }
}

/// Problem-size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Minimal sizes for unit tests.
    Tiny,
    /// Sizes suitable for simulation sweeps and native runs on small
    /// machines (the default of the experiment harness).
    #[default]
    Scaled,
    /// The paper's original problem sizes.
    Paper,
}

/// Arena-resident data of a configured benchmark instance.
pub enum WorkloadData {
    /// 3x+1 data.
    ThreeXPlusOne(threex1::Data, threex1::Config),
    /// Mandelbrot data.
    Mandelbrot(mandelbrot::Data, mandelbrot::Config),
    /// Molecular-dynamics data.
    Md(md::Data, md::Config),
    /// Barnes-Hut data.
    Bh(bh::Data, bh::Config),
    /// FFT data.
    Fft(fft::Data, fft::Config),
    /// Matrix-multiplication data.
    Matmult(matmult::Data, matmult::Config),
    /// N-queens data.
    Nqueen(nqueen::Data, nqueen::Config),
    /// TSP data.
    Tsp(tsp::Data, tsp::Config),
    /// Conflict-chain data.
    ConflictChain(conflict::ChainData, conflict::ChainConfig),
    /// Shared-histogram data.
    HistShared(conflict::HistData, conflict::HistConfig),
}

/// Recommended arena size (bytes) for a benchmark at a scale.
pub fn arena_bytes(kind: WorkloadKind, scale: Scale) -> u64 {
    match (kind, scale) {
        (WorkloadKind::Fft, Scale::Paper) => 256 << 20,
        (WorkloadKind::Matmult, Scale::Paper) => 128 << 20,
        (WorkloadKind::Bh, Scale::Paper) => 64 << 20,
        (WorkloadKind::ConflictChain | WorkloadKind::HistShared, _) => conflict::ARENA_BYTES,
        (_, Scale::Paper) => 32 << 20,
        (_, Scale::Scaled) => 16 << 20,
        (_, Scale::Tiny) => 4 << 20,
    }
}

/// Allocate and initialize a benchmark instance in `memory`.
pub fn setup(kind: WorkloadKind, scale: Scale, memory: &GlobalMemory) -> WorkloadData {
    match kind {
        WorkloadKind::ThreeXPlusOne => {
            let config = match scale {
                Scale::Tiny => threex1::Config::tiny(),
                Scale::Scaled => threex1::Config::scaled(),
                Scale::Paper => threex1::Config::paper(),
            };
            WorkloadData::ThreeXPlusOne(threex1::setup(memory, &config), config)
        }
        WorkloadKind::Mandelbrot => {
            let config = match scale {
                Scale::Tiny => mandelbrot::Config::tiny(),
                Scale::Scaled => mandelbrot::Config::scaled(),
                Scale::Paper => mandelbrot::Config::paper(),
            };
            WorkloadData::Mandelbrot(mandelbrot::setup(memory, &config), config)
        }
        WorkloadKind::Md => {
            let config = match scale {
                Scale::Tiny => md::Config::tiny(),
                Scale::Scaled => md::Config::scaled(),
                Scale::Paper => md::Config::paper(),
            };
            WorkloadData::Md(md::setup(memory, &config), config)
        }
        WorkloadKind::Bh => {
            let config = match scale {
                Scale::Tiny => bh::Config::tiny(),
                Scale::Scaled => bh::Config::scaled(),
                Scale::Paper => bh::Config::paper(),
            };
            WorkloadData::Bh(bh::setup(memory, &config), config)
        }
        WorkloadKind::Fft => {
            let config = match scale {
                Scale::Tiny => fft::Config::tiny(),
                Scale::Scaled => fft::Config::scaled(),
                Scale::Paper => fft::Config::paper(),
            };
            WorkloadData::Fft(fft::setup(memory, &config), config)
        }
        WorkloadKind::Matmult => {
            let config = match scale {
                Scale::Tiny => matmult::Config::tiny(),
                Scale::Scaled => matmult::Config::scaled(),
                Scale::Paper => matmult::Config::paper(),
            };
            WorkloadData::Matmult(matmult::setup(memory, &config), config)
        }
        WorkloadKind::Nqueen => {
            let config = match scale {
                Scale::Tiny => nqueen::Config::tiny(),
                Scale::Scaled => nqueen::Config::scaled(),
                Scale::Paper => nqueen::Config::paper(),
            };
            WorkloadData::Nqueen(nqueen::setup(memory, &config), config)
        }
        WorkloadKind::Tsp => {
            let config = match scale {
                Scale::Tiny => tsp::Config::tiny(),
                Scale::Scaled => tsp::Config::scaled(),
                Scale::Paper => tsp::Config::paper(),
            };
            WorkloadData::Tsp(tsp::setup(memory, &config), config)
        }
        WorkloadKind::ConflictChain => {
            let config = conflict::ChainConfig::for_scale(scale);
            WorkloadData::ConflictChain(conflict::chain_setup(memory, &config), config)
        }
        WorkloadKind::HistShared => {
            let config = conflict::HistConfig::for_scale(scale);
            WorkloadData::HistShared(conflict::hist_setup(memory, &config), config)
        }
    }
}

/// Run the speculative version of a benchmark instance in `ctx`.
pub fn run_speculative<C: TlsContext>(ctx: &mut C, data: &WorkloadData) -> SpecResult<()> {
    match data {
        WorkloadData::ThreeXPlusOne(d, c) => threex1::run(ctx, *d, *c),
        WorkloadData::Mandelbrot(d, c) => mandelbrot::run(ctx, *d, *c),
        WorkloadData::Md(d, c) => md::run(ctx, *d, *c),
        WorkloadData::Bh(d, c) => bh::run(ctx, *d, *c),
        WorkloadData::Fft(d, c) => fft::run(ctx, *d, *c),
        WorkloadData::Matmult(d, c) => matmult::run(ctx, *d, *c),
        WorkloadData::Nqueen(d, c) => nqueen::run(ctx, *d, *c),
        WorkloadData::Tsp(d, c) => tsp::run(ctx, *d, *c),
        WorkloadData::ConflictChain(d, c) => conflict::chain_run(ctx, *d, *c),
        WorkloadData::HistShared(d, c) => conflict::hist_run(ctx, *d, *c),
    }
}

/// Extract the benchmark's result checksum from `memory`.
pub fn checksum(memory: &GlobalMemory, data: &WorkloadData) -> u64 {
    match data {
        WorkloadData::ThreeXPlusOne(d, c) => threex1::result(memory, d, c),
        WorkloadData::Mandelbrot(d, c) => mandelbrot::result(memory, d, c),
        WorkloadData::Md(d, c) => md::result(memory, d, c),
        WorkloadData::Bh(d, c) => bh::result(memory, d, c),
        WorkloadData::Fft(d, c) => fft::result(memory, d, c),
        WorkloadData::Matmult(d, c) => matmult::result(memory, d, c),
        WorkloadData::Nqueen(d, c) => nqueen::result(memory, d, c),
        WorkloadData::Tsp(d, c) => tsp::result(memory, d, c),
        WorkloadData::ConflictChain(d, c) => conflict::chain_result(memory, d, c),
        WorkloadData::HistShared(d, c) => conflict::hist_result(memory, d, c),
    }
}

/// Sequential baseline: run the benchmark through a [`DirectContext`]
/// (no speculation) in a fresh arena and return its result checksum.
pub fn reference_checksum(kind: WorkloadKind, scale: Scale) -> u64 {
    let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, scale)));
    let data = setup(kind, scale, &memory);
    let mut ctx = DirectContext::new(Arc::clone(&memory));
    run_speculative(&mut ctx, &data).expect("sequential baseline cannot abort");
    checksum(&memory, &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_back() {
        for kind in WorkloadKind::ALL
            .iter()
            .chain(&WorkloadKind::CONFLICT_FAMILY)
        {
            assert_eq!(kind.name().parse::<WorkloadKind>().unwrap(), *kind);
        }
        assert!("nope".parse::<WorkloadKind>().is_err());
    }

    #[test]
    fn conflict_family_is_registered_end_to_end() {
        for kind in WorkloadKind::CONFLICT_FAMILY {
            let a = reference_checksum(kind, Scale::Tiny);
            let b = reference_checksum(kind, Scale::Tiny);
            assert_eq!(a, b, "{} not deterministic", kind.name());
            assert_eq!(descriptor(kind).class, WorkloadClass::MemoryIntensive);
        }
        assert!(site_label(crate::conflict::SITE_CHAIN)
            .unwrap()
            .contains("conflict_chain"));
        assert!(site_label(crate::conflict::SITE_HIST_CHUNK)
            .unwrap()
            .contains("hist_shared"));
    }

    #[test]
    fn classification_matches_table_two() {
        for kind in WorkloadKind::COMPUTATION_INTENSIVE {
            assert_eq!(descriptor(kind).class, WorkloadClass::ComputationIntensive);
        }
        for kind in WorkloadKind::MEMORY_INTENSIVE {
            assert_eq!(descriptor(kind).class, WorkloadClass::MemoryIntensive);
        }
    }

    #[test]
    fn every_workload_runs_at_tiny_scale_and_is_deterministic() {
        for kind in WorkloadKind::ALL {
            let a = reference_checksum(kind, Scale::Tiny);
            let b = reference_checksum(kind, Scale::Tiny);
            assert_eq!(a, b, "{} not deterministic", kind.name());
        }
    }

    #[test]
    fn descriptors_have_paper_data_sizes() {
        assert!(descriptor(WorkloadKind::Fft)
            .amount_of_data
            .contains("2^20"));
        assert!(descriptor(WorkloadKind::Nqueen)
            .amount_of_data
            .contains("14"));
        assert_eq!(WorkloadKind::ALL.len(), 8);
    }
}
