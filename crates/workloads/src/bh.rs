//! The bh benchmark — Barnes-Hut N-body force calculation, memory
//! intensive, loop pattern.
//!
//! Bodies live in the shared arena.  Each step the quadtree is built by
//! the non-speculative thread (sequential, as in common parallel BH
//! codes), its nodes are stored in arena arrays, and the O(N log N) force
//! evaluation is split into body chunks whose loop continuation is
//! speculated.  The force phase traverses the tree through TLS loads,
//! which is what makes the benchmark memory intensive.

use mutls_membuf::{GPtr, GlobalMemory};
use mutls_runtime::{task, SpecResult, TlsContext};

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Number of bodies.
    pub bodies: usize,
    /// Number of force-evaluation steps.
    pub steps: usize,
    /// Number of body chunks per step (speculative tasks).
    pub chunks: usize,
    /// Barnes-Hut opening angle θ.
    pub theta: f64,
}

impl Config {
    /// Paper-scale problem: 12 800 bodies.
    pub fn paper() -> Self {
        Config {
            bodies: 12_800,
            steps: 4,
            chunks: 64,
            theta: 0.5,
        }
    }

    /// Scaled-down problem for simulation and native testing.
    pub fn scaled() -> Self {
        Config {
            bodies: 512,
            steps: 2,
            chunks: 32,
            theta: 0.5,
        }
    }

    /// Tiny problem for unit tests.
    pub fn tiny() -> Self {
        Config {
            bodies: 32,
            steps: 1,
            chunks: 4,
            theta: 0.5,
        }
    }
}

/// Maximum quadtree nodes allocated (4·bodies is ample for a quadtree with
/// one body per leaf).
fn max_nodes(bodies: usize) -> usize {
    8 * bodies.max(4)
}

/// Arena-resident data.
#[derive(Debug, Clone, Copy)]
pub struct Data {
    /// Body x positions.
    pub x: GPtr<f64>,
    /// Body y positions.
    pub y: GPtr<f64>,
    /// Body masses.
    pub mass: GPtr<f64>,
    /// Body x accelerations (output of the force phase).
    pub ax: GPtr<f64>,
    /// Body y accelerations.
    pub ay: GPtr<f64>,
    /// Quadtree node centre-of-mass x.
    pub node_x: GPtr<f64>,
    /// Quadtree node centre-of-mass y.
    pub node_y: GPtr<f64>,
    /// Quadtree node total mass.
    pub node_mass: GPtr<f64>,
    /// Quadtree node cell side length.
    pub node_size: GPtr<f64>,
    /// Quadtree children indices (4 per node; 0 = none, else index+1).
    pub node_child: GPtr<u64>,
    /// Body index + 1 when the node is a leaf holding a single body.
    pub node_body: GPtr<u64>,
    /// Number of quadtree nodes in use (cell 0).
    pub node_count: GPtr<u64>,
}

/// Allocate and deterministically initialize the bodies.
pub fn setup(memory: &GlobalMemory, config: &Config) -> Data {
    let n = config.bodies;
    let m = max_nodes(n);
    let data = Data {
        x: memory.alloc::<f64>(n),
        y: memory.alloc::<f64>(n),
        mass: memory.alloc::<f64>(n),
        ax: memory.alloc::<f64>(n),
        ay: memory.alloc::<f64>(n),
        node_x: memory.alloc::<f64>(m),
        node_y: memory.alloc::<f64>(m),
        node_mass: memory.alloc::<f64>(m),
        node_size: memory.alloc::<f64>(m),
        node_child: memory.alloc::<u64>(4 * m),
        node_body: memory.alloc::<u64>(m),
        node_count: memory.alloc::<u64>(1),
    };
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..n {
        memory.set(&data.x, i, next() * 1000.0);
        memory.set(&data.y, i, next() * 1000.0);
        memory.set(&data.mass, i, 1.0 + next());
    }
    data
}

/// Host-side quadtree node used during (sequential) tree construction.
#[derive(Debug, Clone, Copy)]
struct BuildNode {
    cx: f64,
    cy: f64,
    half: f64,
    com_x: f64,
    com_y: f64,
    mass: f64,
    child: [usize; 4],
    /// Single resident body `(index, x, y, mass)` while the node is a leaf.
    body: Option<(usize, f64, f64, f64)>,
}

impl BuildNode {
    fn new(cx: f64, cy: f64, half: f64) -> Self {
        BuildNode {
            cx,
            cy,
            half,
            com_x: 0.0,
            com_y: 0.0,
            mass: 0.0,
            child: [usize::MAX; 4],
            body: None,
        }
    }

    fn is_leaf(&self) -> bool {
        self.child.iter().all(|&c| c == usize::MAX)
    }
}

/// Build the quadtree from the current body positions and publish it into
/// the arena node arrays (performed by the non-speculative thread).
fn build_tree<C: TlsContext>(ctx: &mut C, data: Data, config: Config) -> SpecResult<()> {
    let n = config.bodies;
    let mut bodies = Vec::with_capacity(n);
    for i in 0..n {
        bodies.push((
            ctx.load(&data.x, i)?,
            ctx.load(&data.y, i)?,
            ctx.load(&data.mass, i)?,
        ));
    }
    let half = 600.0;
    let mut nodes = vec![BuildNode::new(500.0, 500.0, half)];
    for (i, &(bx, by, bm)) in bodies.iter().enumerate() {
        insert(&mut nodes, 0, (i, bx, by, bm), 0);
        ctx.work(4)?;
    }
    // Publish the tree into the arena (truncate if the node budget is hit).
    let limit = max_nodes(n);
    let count = nodes.len().min(limit);
    ctx.store(&data.node_count, 0, count as u64)?;
    for (idx, node) in nodes.iter().take(count).enumerate() {
        let (com_x, com_y) = if node.mass > 0.0 {
            (node.com_x / node.mass, node.com_y / node.mass)
        } else {
            (node.cx, node.cy)
        };
        ctx.store(&data.node_x, idx, com_x)?;
        ctx.store(&data.node_y, idx, com_y)?;
        ctx.store(&data.node_mass, idx, node.mass)?;
        ctx.store(&data.node_size, idx, node.half * 2.0)?;
        ctx.store(
            &data.node_body,
            idx,
            node.body.map(|(i, ..)| i as u64 + 1).unwrap_or(0),
        )?;
        for q in 0..4 {
            let c = node.child[q];
            let encoded = if c == usize::MAX || c >= limit {
                0
            } else {
                c as u64 + 1
            };
            ctx.store(&data.node_child, 4 * idx + q, encoded)?;
        }
    }
    Ok(())
}

fn quadrant_of(node: &BuildNode, x: f64, y: f64) -> usize {
    (usize::from(x >= node.cx)) | (usize::from(y >= node.cy) << 1)
}

/// Insert a body into the quadtree rooted at `idx`, accumulating its mass
/// into every node along the path.
fn insert(nodes: &mut Vec<BuildNode>, idx: usize, body: (usize, f64, f64, f64), depth: usize) {
    let (_, x, y, m) = body;
    nodes[idx].com_x += x * m;
    nodes[idx].com_y += y * m;
    nodes[idx].mass += m;
    if depth > 48 {
        // Degenerate (near-coincident) bodies: aggregate into this cell.
        return;
    }
    if nodes[idx].is_leaf() {
        match nodes[idx].body.take() {
            None => {
                nodes[idx].body = Some(body);
            }
            Some(resident) => {
                // Split the leaf: push the resident and the new body down.
                push_down(nodes, idx, resident, depth);
                push_down(nodes, idx, body, depth);
            }
        }
    } else {
        push_down(nodes, idx, body, depth);
    }
}

/// Route a body into the appropriate child cell, creating it if needed.
fn push_down(nodes: &mut Vec<BuildNode>, idx: usize, body: (usize, f64, f64, f64), depth: usize) {
    let (_, x, y, _) = body;
    let q = quadrant_of(&nodes[idx], x, y);
    if nodes[idx].child[q] == usize::MAX {
        let half = nodes[idx].half / 2.0;
        let cx = nodes[idx].cx + if q & 1 == 1 { half } else { -half };
        let cy = nodes[idx].cy + if q & 2 == 2 { half } else { -half };
        nodes.push(BuildNode::new(cx, cy, half));
        let child_idx = nodes.len() - 1;
        nodes[idx].child[q] = child_idx;
        insert(nodes, child_idx, body, depth + 1);
    } else {
        let child_idx = nodes[idx].child[q];
        insert(nodes, child_idx, body, depth + 1);
    }
}

/// Compute accelerations for the bodies of one chunk by traversing the
/// arena-resident quadtree.
fn force_chunk<C: TlsContext>(
    ctx: &mut C,
    data: Data,
    config: Config,
    chunk: usize,
) -> SpecResult<()> {
    let n = config.bodies;
    let per = n.div_ceil(config.chunks);
    let lo = chunk * per;
    let hi = ((chunk + 1) * per).min(n);
    for i in lo..hi {
        let bx = ctx.load(&data.x, i)?;
        let by = ctx.load(&data.y, i)?;
        let (mut ax, mut ay) = (0.0f64, 0.0f64);
        // Explicit traversal stack of node indices.
        let mut stack = vec![0usize];
        while let Some(node) = stack.pop() {
            let mass = ctx.load(&data.node_mass, node)?;
            if mass <= 0.0 {
                continue;
            }
            let nx = ctx.load(&data.node_x, node)?;
            let ny = ctx.load(&data.node_y, node)?;
            let size = ctx.load(&data.node_size, node)?;
            let dx = nx - bx;
            let dy = ny - by;
            let dist2 = dx * dx + dy * dy + 1e-3;
            let dist = dist2.sqrt();
            let body_tag = ctx.load(&data.node_body, node)?;
            let is_self = body_tag == i as u64 + 1;
            let leaf_or_far = body_tag != 0 || size / dist < config.theta;
            ctx.work(10)?;
            if leaf_or_far {
                if !is_self {
                    let f = mass / (dist2 * dist);
                    ax += f * dx;
                    ay += f * dy;
                }
            } else {
                for q in 0..4 {
                    let child = ctx.load(&data.node_child, 4 * node + q)?;
                    if child != 0 {
                        stack.push(child as usize - 1);
                    }
                }
            }
        }
        ctx.store(&data.ax, i, ax)?;
        ctx.store(&data.ay, i, ay)?;
    }
    Ok(())
}

/// Fork-site ID of the force-phase body-chunk continuation speculation.
pub const SITE_FORCE_CHUNK: u32 = 13;
fn force_phase_from<C: TlsContext>(
    ctx: &mut C,
    data: Data,
    config: Config,
    chunk: usize,
) -> SpecResult<()> {
    if chunk + 1 < config.chunks {
        let cont = task(move |ctx: &mut C| force_phase_from(ctx, data, config, chunk + 1));
        let handle = ctx.fork(SITE_FORCE_CHUNK, cont)?;
        force_chunk(ctx, data, config, chunk)?;
        ctx.join(handle)?;
    } else {
        force_chunk(ctx, data, config, chunk)?;
    }
    Ok(())
}

/// Advance body positions slightly using the computed accelerations
/// (non-speculative, between force phases).
fn advance<C: TlsContext>(ctx: &mut C, data: Data, config: Config) -> SpecResult<()> {
    let dt = 1e-2;
    for i in 0..config.bodies {
        let x = ctx.load(&data.x, i)? + dt * ctx.load(&data.ax, i)?;
        let y = ctx.load(&data.y, i)? + dt * ctx.load(&data.ay, i)?;
        ctx.store(&data.x, i, x)?;
        ctx.store(&data.y, i, y)?;
        ctx.work(2)?;
    }
    Ok(())
}

/// The speculative region: `steps` Barnes-Hut force phases.
pub fn run<C: TlsContext>(ctx: &mut C, data: Data, config: Config) -> SpecResult<()> {
    for step in 0..config.steps {
        build_tree(ctx, data, config)?;
        force_phase_from(ctx, data, config, 0)?;
        if step + 1 < config.steps {
            advance(ctx, data, config)?;
        }
    }
    Ok(())
}

/// Result extractor: quantized sum of accelerations.
pub fn result(memory: &GlobalMemory, data: &Data, config: &Config) -> u64 {
    let mut acc = 0i64;
    for i in 0..config.bodies {
        acc = acc.wrapping_add((memory.get(&data.ax, i) * 1e6).round() as i64);
        acc = acc.wrapping_add((memory.get(&data.ay, i) * 1e6).round() as i64);
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutls_runtime::DirectContext;
    use std::sync::Arc;

    #[test]
    fn tree_mass_is_conserved() {
        let config = Config::tiny();
        let memory = Arc::new(GlobalMemory::new(1 << 22));
        let data = setup(&memory, &config);
        let mut ctx = DirectContext::new(Arc::clone(&memory));
        build_tree(&mut ctx, data, config).unwrap();
        let total_mass: f64 = (0..config.bodies).map(|i| memory.get(&data.mass, i)).sum();
        let root_mass = memory.get(&data.node_mass, 0);
        assert!((total_mass - root_mass).abs() < 1e-9);
        assert!(memory.get(&data.node_count, 0) > 1);
    }

    #[test]
    fn forces_roughly_match_direct_summation() {
        let config = Config::tiny();
        let memory = Arc::new(GlobalMemory::new(1 << 22));
        let data = setup(&memory, &config);
        run(&mut DirectContext::new(Arc::clone(&memory)), data, config).unwrap();
        // Direct O(N²) reference on host copies.
        let n = config.bodies;
        let xs: Vec<f64> = (0..n).map(|i| memory.get(&data.x, i)).collect();
        let ys: Vec<f64> = (0..n).map(|i| memory.get(&data.y, i)).collect();
        let ms: Vec<f64> = (0..n).map(|i| memory.get(&data.mass, i)).collect();
        for i in (0..n).step_by(7) {
            let (mut ax, mut ay) = (0.0, 0.0);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let dx = xs[j] - xs[i];
                let dy = ys[j] - ys[i];
                let d2 = dx * dx + dy * dy + 1e-3;
                let f = ms[j] / (d2 * d2.sqrt());
                ax += f * dx;
                ay += f * dy;
            }
            let got_ax = memory.get(&data.ax, i);
            let got_ay = memory.get(&data.ay, i);
            let scale = (ax * ax + ay * ay).sqrt().max(1e-12);
            let err = ((got_ax - ax).powi(2) + (got_ay - ay).powi(2)).sqrt() / scale;
            assert!(err < 0.25, "body {i}: relative error {err}");
        }
    }

    #[test]
    fn result_is_deterministic() {
        let config = Config::tiny();
        let m1 = Arc::new(GlobalMemory::new(1 << 22));
        let d1 = setup(&m1, &config);
        run(&mut DirectContext::new(Arc::clone(&m1)), d1, config).unwrap();
        let m2 = Arc::new(GlobalMemory::new(1 << 22));
        let d2 = setup(&m2, &config);
        run(&mut DirectContext::new(Arc::clone(&m2)), d2, config).unwrap();
        assert_eq!(result(&m1, &d1, &config), result(&m2, &d2, &config));
    }
}
