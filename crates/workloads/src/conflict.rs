//! Conflict-generating workload family (repo extension, not in the
//! paper's Table II): kernels with a *tunable true-sharing rate* that
//! exercise the runtime's real cross-thread dependence validation — the
//! behaviour the paper's evaluation induced with injected rollbacks is
//! produced here by genuine read-after-future-write violations.
//!
//! * [`conflict_chain`](self) — a value chain: chunk `i` reads either the
//!   cell its logical predecessor writes (true sharing → guaranteed
//!   dependence) or a private pre-initialized cell, mixes it through a
//!   long arithmetic chain, and writes its own cell.  Under chain
//!   speculation the successor's read happens long before the
//!   predecessor's write commits, so every shared chunk is a genuine
//!   dependence violation.
//! * [`hist_shared`](self) — a shared histogram: each chunk folds its
//!   slice of items into bins; with probability `sharing` an item lands
//!   in a small globally shared bin range (read-modify-write races across
//!   chunks), otherwise in a chunk-private range (never conflicts).
//!
//! Both kernels read their cross-thread dependence *first* and write it
//! *last*, separated by the heavy mixing work — the widest possible
//! conflict window, mirroring how real loop-carried dependences behave.

use std::sync::Arc;

use mutls_membuf::{GPtr, GlobalMemory};
use mutls_runtime::{
    task, DirectContext, MetricsSeries, MetricsSnapshot, RunReport, Runtime, RuntimeConfig,
    SpecContext, SpecResult, TlsContext, TraceEvent,
};

/// A native run's metrics capture: the sampler-filled time series plus
/// the final end-of-run scrape (both empty-ish unless the runtime config
/// enabled the metrics plane).
pub type MetricsCapture = (MetricsSeries, MetricsSnapshot);

/// Fork-site ID of the chain-continuation speculation.
pub const SITE_CHAIN: u32 = 20;
/// Fork-site ID of the histogram chunk-continuation speculation.
pub const SITE_HIST_CHUNK: u32 = 21;

/// Arena size (bytes) ample for either kernel at any scale.
pub const ARENA_BYTES: u64 = 1 << 20;

/// SplitMix64 — the deterministic hash both kernels draw decisions from.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Data-dependent arithmetic chain of `rounds` LCG steps; the value feeds
/// the kernel's stores so the work cannot be optimized away.
fn mix_chain(seed: u64, rounds: u64) -> u64 {
    let mut y = seed | 1;
    for _ in 0..rounds {
        y = y
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    y
}

/// Check points inserted into one link's mixing chain.
const MIX_SLICES: u64 = 16;

/// [`mix_chain`] interleaved with runtime polls: the chain is cut into
/// [`MIX_SLICES`] slices with a `work`/`check_point` pair after each, the
/// way instrumented loop back-edges poll in a real TLS build.  This is
/// what lets *targeted dooming* pay off — a thread doomed mid-window
/// stops within one slice instead of finishing the whole chain.  The
/// arithmetic is identical to running [`mix_chain`] in one piece, so the
/// kernel's checksums don't depend on the slicing.
fn mix_chain_polled<C: TlsContext>(ctx: &mut C, seed: u64, rounds: u64) -> SpecResult<u64> {
    let mut y = seed | 1;
    let slice = (rounds / MIX_SLICES).max(1);
    let mut done = 0;
    while done < rounds {
        let n = slice.min(rounds - done);
        for _ in 0..n {
            y = y
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        done += n;
        ctx.work(n)?;
        ctx.check_point()?;
    }
    Ok(y)
}

// ---------------------------------------------------------------------
// conflict_chain
// ---------------------------------------------------------------------

/// Configuration of the `conflict_chain` kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainConfig {
    /// Number of chain links (speculative tasks).
    pub chunks: usize,
    /// Mixing rounds per link — the conflict window between a link's read
    /// and its predecessor's write.
    pub work_per_chunk: u64,
    /// True-sharing rate in permille (0 = fully private, 1000 = every
    /// link reads its predecessor's cell).
    pub sharing_permille: u32,
    /// Seed of the per-link sharing decision.
    pub seed: u64,
}

impl ChainConfig {
    /// Paper-style scale for native measurement runs.
    pub fn paper() -> Self {
        ChainConfig {
            chunks: 64,
            work_per_chunk: 2_000_000,
            sharing_permille: 500,
            seed: 0xC0AF_11C7,
        }
    }

    /// Scaled-down preset for sweeps.
    pub fn scaled() -> Self {
        ChainConfig {
            chunks: 64,
            work_per_chunk: 150_000,
            sharing_permille: 500,
            seed: 0xC0AF_11C7,
        }
    }

    /// Tiny preset for unit tests.  Sized so the governor still sees
    /// fork decisions after its warm-up samples even under the targeted
    /// recovery engine (which resolves conflicts with far less re-fork
    /// churn than the old cascade).
    pub fn tiny() -> Self {
        ChainConfig {
            chunks: 16,
            work_per_chunk: 150_000,
            sharing_permille: 500,
            seed: 0xC0AF_11C7,
        }
    }

    /// The preset for a problem-size scale — the single mapping shared by
    /// the registry and the harness sweeps.
    pub fn for_scale(scale: crate::registry::Scale) -> Self {
        match scale {
            crate::registry::Scale::Tiny => Self::tiny(),
            crate::registry::Scale::Scaled => Self::scaled(),
            crate::registry::Scale::Paper => Self::paper(),
        }
    }

    /// Override the true-sharing rate (builder style).
    ///
    /// # Panics
    /// Panics if `permille` exceeds 1000.
    pub fn sharing_permille(mut self, permille: u32) -> Self {
        assert!(permille <= 1000, "sharing rate is in permille (0..=1000)");
        self.sharing_permille = permille;
        self
    }
}

/// Arena-resident data of a `conflict_chain` instance.
#[derive(Debug, Clone, Copy)]
pub struct ChainData {
    /// The chain cells: link `i` writes `cells[i]`; a *sharing* link
    /// `i` reads `cells[i-1]` (its logical predecessor's output).
    pub cells: GPtr<u64>,
    /// Private per-link inputs read by non-sharing links.
    pub private: GPtr<u64>,
    /// Per-link result accumulators.
    pub partial: GPtr<u64>,
}

/// Allocate and initialize the chain's shared data.
pub fn chain_setup(memory: &GlobalMemory, config: &ChainConfig) -> ChainData {
    let cells = memory.alloc::<u64>(config.chunks);
    let private = memory.alloc::<u64>(config.chunks);
    let partial = memory.alloc::<u64>(config.chunks);
    for i in 0..config.chunks {
        memory.set(&cells, i, mix64(config.seed ^ (i as u64)));
        memory.set(&private, i, mix64(config.seed.rotate_left(17) ^ (i as u64)));
    }
    ChainData {
        cells,
        private,
        partial,
    }
}

/// Whether link `i` carries a true dependence on its predecessor.
fn chain_shared(config: &ChainConfig, i: usize) -> bool {
    i > 0 && mix64(config.seed ^ 0xD1CE ^ (i as u64)) % 1000 < config.sharing_permille as u64
}

/// Mixing rounds of link `i`: heterogeneous per link, drawn
/// deterministically from the seed in `[work/4, work*9/4)` (mean ≈
/// `work_per_chunk`).  Real loop iterations vary in cost; the variance
/// also matters mechanically — when a reader's window outlives its
/// predecessor's, there is real work left for targeted dooming to save,
/// whereas perfectly uniform windows always finish just as the doom
/// arrives.
fn chain_work(config: &ChainConfig, i: usize) -> u64 {
    let base = config.work_per_chunk;
    base / 4 + mix64(config.seed ^ 0xB10C ^ (i as u64)) % (base * 2).max(1)
}

/// One chain link: read the dependence, mix, publish.
fn chain_body<C: TlsContext>(
    ctx: &mut C,
    data: ChainData,
    config: ChainConfig,
    i: usize,
) -> SpecResult<()> {
    // Cross-thread read FIRST: the widest conflict window.
    let x = if chain_shared(&config, i) {
        ctx.load(&data.cells, i - 1)?
    } else {
        ctx.load(&data.private, i)?
    };
    // The mixing chain polls at slice boundaries, so a thread doomed by a
    // predecessor's commit stops mid-window instead of wasting it all;
    // links have heterogeneous depths (see `chain_work`).
    let y = mix_chain_polled(ctx, x, chain_work(&config, i))?;
    // Publish LAST: a speculative successor reading `cells[i]` before this
    // store commits has a genuine dependence violation.
    ctx.store(&data.cells, i, y)?;
    ctx.store(&data.partial, i, y ^ x)
}

/// Chain speculation over the links, as in the loop benchmarks: each link
/// forks the continuation (the remaining links) and then runs itself.
fn chain_from<C: TlsContext>(
    ctx: &mut C,
    data: ChainData,
    config: ChainConfig,
    i: usize,
) -> SpecResult<()> {
    if i + 1 < config.chunks {
        let cont = task(move |ctx: &mut C| chain_from(ctx, data, config, i + 1));
        let handle = ctx.fork(SITE_CHAIN, cont)?;
        chain_body(ctx, data, config, i)?;
        ctx.join(handle)?;
    } else {
        chain_body(ctx, data, config, i)?;
    }
    Ok(())
}

/// The speculative region of `conflict_chain`.
pub fn chain_run<C: TlsContext>(
    ctx: &mut C,
    data: ChainData,
    config: ChainConfig,
) -> SpecResult<()> {
    chain_from(ctx, data, config, 0)
}

/// Result checksum over the final memory state (cells and partials).
pub fn chain_result(memory: &GlobalMemory, data: &ChainData, config: &ChainConfig) -> u64 {
    let mut acc = 0u64;
    for i in 0..config.chunks {
        acc = acc
            .rotate_left(7)
            .wrapping_add(memory.get(&data.cells, i))
            .wrapping_add(memory.get(&data.partial, i));
    }
    acc
}

// ---------------------------------------------------------------------
// hist_shared
// ---------------------------------------------------------------------

/// Configuration of the `hist_shared` kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistConfig {
    /// Total items folded into the histogram.
    pub items: u64,
    /// Number of loop chunks (speculative tasks).
    pub chunks: usize,
    /// Bins in the globally shared range.
    pub shared_bins: usize,
    /// Bins in each chunk's private range.
    pub private_bins: usize,
    /// Probability (permille) that an item lands in the shared range.
    pub sharing_permille: u32,
    /// Mixing rounds per item.
    pub work_per_item: u64,
    /// Seed of the item → bin mapping.
    pub seed: u64,
}

impl HistConfig {
    /// Paper-style scale for native measurement runs.
    pub fn paper() -> Self {
        HistConfig {
            items: 4096,
            chunks: 64,
            shared_bins: 16,
            private_bins: 16,
            sharing_permille: 500,
            work_per_item: 100_000,
            seed: 0x415B_10C5,
        }
    }

    /// Scaled-down preset for sweeps.
    pub fn scaled() -> Self {
        HistConfig {
            items: 512,
            chunks: 32,
            shared_bins: 8,
            private_bins: 8,
            sharing_permille: 500,
            work_per_item: 20_000,
            seed: 0x415B_10C5,
        }
    }

    /// Tiny preset for unit tests (see `ChainConfig::tiny` on sizing).
    pub fn tiny() -> Self {
        HistConfig {
            items: 120,
            chunks: 12,
            shared_bins: 4,
            private_bins: 4,
            sharing_permille: 500,
            work_per_item: 20_000,
            seed: 0x415B_10C5,
        }
    }

    /// The preset for a problem-size scale — the single mapping shared by
    /// the registry and the harness sweeps.
    pub fn for_scale(scale: crate::registry::Scale) -> Self {
        match scale {
            crate::registry::Scale::Tiny => Self::tiny(),
            crate::registry::Scale::Scaled => Self::scaled(),
            crate::registry::Scale::Paper => Self::paper(),
        }
    }

    /// Override the true-sharing rate (builder style).
    ///
    /// # Panics
    /// Panics if `permille` exceeds 1000.
    pub fn sharing_permille(mut self, permille: u32) -> Self {
        assert!(permille <= 1000, "sharing rate is in permille (0..=1000)");
        self.sharing_permille = permille;
        self
    }

    /// Total bins allocated (shared range + every chunk's private range).
    pub fn total_bins(&self) -> usize {
        self.shared_bins + self.chunks * self.private_bins
    }
}

/// Arena-resident data of a `hist_shared` instance.
#[derive(Debug, Clone, Copy)]
pub struct HistData {
    /// The histogram: bins `[0, shared_bins)` are shared by every chunk,
    /// then `private_bins` bins per chunk.
    pub hist: GPtr<u64>,
}

/// Allocate the histogram (all bins start at zero).
pub fn hist_setup(memory: &GlobalMemory, config: &HistConfig) -> HistData {
    HistData {
        hist: memory.alloc::<u64>(config.total_bins()),
    }
}

/// Bin index of item `j` processed by chunk `chunk`.
fn hist_bin(config: &HistConfig, chunk: usize, j: u64) -> usize {
    let h = mix64(config.seed ^ j);
    if h % 1000 < config.sharing_permille as u64 {
        ((h >> 10) as usize) % config.shared_bins
    } else {
        config.shared_bins
            + chunk * config.private_bins
            + ((h >> 10) as usize) % config.private_bins
    }
}

/// Fold chunk `chunk`'s slice of items into the histogram.
fn hist_body<C: TlsContext>(
    ctx: &mut C,
    data: HistData,
    config: HistConfig,
    chunk: usize,
) -> SpecResult<()> {
    let per = config.items / config.chunks as u64;
    let lo = chunk as u64 * per;
    let hi = if chunk + 1 == config.chunks {
        config.items
    } else {
        lo + per
    };
    for j in lo..hi {
        let bin = hist_bin(&config, chunk, j);
        // Read-modify-write: the read opens the conflict window, the heavy
        // mixing keeps it open, the store closes it.
        let v = ctx.load(&data.hist, bin)?;
        let y = mix_chain(mix64(config.seed ^ j), config.work_per_item);
        ctx.work(config.work_per_item)?;
        ctx.store(&data.hist, bin, v.wrapping_add(1 + (y & 0xF)))?;
        ctx.check_point()?;
    }
    Ok(())
}

/// Chain speculation over the histogram chunks.
fn hist_from<C: TlsContext>(
    ctx: &mut C,
    data: HistData,
    config: HistConfig,
    chunk: usize,
) -> SpecResult<()> {
    if chunk + 1 < config.chunks {
        let cont = task(move |ctx: &mut C| hist_from(ctx, data, config, chunk + 1));
        let handle = ctx.fork(SITE_HIST_CHUNK, cont)?;
        hist_body(ctx, data, config, chunk)?;
        ctx.join(handle)?;
    } else {
        hist_body(ctx, data, config, chunk)?;
    }
    Ok(())
}

/// The speculative region of `hist_shared`.
pub fn hist_run<C: TlsContext>(ctx: &mut C, data: HistData, config: HistConfig) -> SpecResult<()> {
    hist_from(ctx, data, config, 0)
}

/// Result checksum over the final histogram.
pub fn hist_result(memory: &GlobalMemory, data: &HistData, config: &HistConfig) -> u64 {
    let mut acc = 0u64;
    for bin in 0..config.total_bins() {
        acc = acc.rotate_left(9).wrapping_add(memory.get(&data.hist, bin));
    }
    acc
}

// ---------------------------------------------------------------------
// native verification
// ---------------------------------------------------------------------

/// Run one kernel sequentially through a fresh arena and return its
/// result checksum — the correctness reference of every native run.
fn reference_of<Cfg: Copy, D: Copy>(
    config: Cfg,
    setup: fn(&GlobalMemory, &Cfg) -> D,
    run_seq: fn(&mut DirectContext, D, Cfg) -> SpecResult<()>,
    result: fn(&GlobalMemory, &D, &Cfg) -> u64,
) -> u64 {
    let memory = Arc::new(GlobalMemory::new(ARENA_BYTES));
    let data = setup(&memory, &config);
    let mut ctx = DirectContext::new(Arc::clone(&memory));
    run_seq(&mut ctx, data, config).expect("sequential run cannot abort");
    result(&memory, &data, &config)
}

/// Run one kernel on the native runtime and return its result checksum
/// plus the run report.
fn native_run_of<Cfg: Copy, D: Copy + Send + Sync + 'static>(
    config: Cfg,
    runtime_config: RuntimeConfig,
    setup: fn(&GlobalMemory, &Cfg) -> D,
    run_spec: fn(&mut SpecContext, D, Cfg) -> SpecResult<()>,
    result: fn(&GlobalMemory, &D, &Cfg) -> u64,
) -> (u64, RunReport) {
    let (sum, report, _) = native_traced_run_of(config, runtime_config, setup, run_spec, result);
    (sum, report)
}

/// Like [`native_run_of`] but also drains the runtime's flight recorder:
/// the third element is the run's (events, dropped-count) capture, empty
/// unless `runtime_config` enabled event tracing.
fn native_traced_run_of<Cfg: Copy, D: Copy + Send + Sync + 'static>(
    config: Cfg,
    runtime_config: RuntimeConfig,
    setup: fn(&GlobalMemory, &Cfg) -> D,
    run_spec: fn(&mut SpecContext, D, Cfg) -> SpecResult<()>,
    result: fn(&GlobalMemory, &D, &Cfg) -> u64,
) -> (u64, RunReport, (Vec<TraceEvent>, u64)) {
    let (sum, report, capture, _) =
        native_observed_run_of(config, runtime_config, setup, run_spec, result);
    (sum, report, capture)
}

/// Like [`native_traced_run_of`] but additionally returns the run's
/// metrics capture (time series + final scrape) — the observability
/// superset the harness sweeps record into their `--metrics` sink.
fn native_observed_run_of<Cfg: Copy, D: Copy + Send + Sync + 'static>(
    config: Cfg,
    runtime_config: RuntimeConfig,
    setup: fn(&GlobalMemory, &Cfg) -> D,
    run_spec: fn(&mut SpecContext, D, Cfg) -> SpecResult<()>,
    result: fn(&GlobalMemory, &D, &Cfg) -> u64,
) -> (u64, RunReport, (Vec<TraceEvent>, u64), MetricsCapture) {
    let runtime = Runtime::new(runtime_config.memory_bytes(ARENA_BYTES));
    let memory = runtime.memory();
    let data = setup(&memory, &config);
    let (_, report) = runtime.run(|ctx| run_spec(ctx, data, config));
    let capture = (runtime.drain_trace_events(), runtime.trace_dropped());
    let metrics = (runtime.metrics_series(), runtime.metrics_snapshot());
    (result(&memory, &data, &config), report, capture, metrics)
}

/// Sequential reference checksum of `conflict_chain` for `config`.
/// Compute it once per configuration when sweeping policies — the
/// reference does not depend on the runtime configuration.
pub fn chain_reference(config: ChainConfig) -> u64 {
    reference_of(
        config,
        chain_setup,
        chain_run::<DirectContext>,
        chain_result,
    )
}

/// Run `conflict_chain` on the native runtime, returning its checksum
/// (compare with [`chain_reference`]) and the run report.
pub fn chain_native(config: ChainConfig, runtime_config: RuntimeConfig) -> (u64, RunReport) {
    native_run_of(
        config,
        runtime_config,
        chain_setup,
        chain_run::<SpecContext>,
        chain_result,
    )
}

/// Like [`chain_native`] but also returns the run's drained flight-recorder
/// events and drop count (empty unless tracing was enabled).
pub fn chain_native_traced(
    config: ChainConfig,
    runtime_config: RuntimeConfig,
) -> (u64, RunReport, (Vec<TraceEvent>, u64)) {
    native_traced_run_of(
        config,
        runtime_config,
        chain_setup,
        chain_run::<SpecContext>,
        chain_result,
    )
}

/// Like [`chain_native_traced`] but also returns the run's metrics
/// capture (empty series / zeroed counters unless the config enabled the
/// metrics plane).
pub fn chain_native_observed(
    config: ChainConfig,
    runtime_config: RuntimeConfig,
) -> (u64, RunReport, (Vec<TraceEvent>, u64), MetricsCapture) {
    native_observed_run_of(
        config,
        runtime_config,
        chain_setup,
        chain_run::<SpecContext>,
        chain_result,
    )
}

/// Native verification of `conflict_chain`: `true` iff the native run's
/// final memory state equals the sequential reference.
pub fn chain_verify_native(
    config: ChainConfig,
    runtime_config: RuntimeConfig,
) -> (bool, RunReport) {
    let reference = chain_reference(config);
    let (got, report) = chain_native(config, runtime_config);
    (got == reference, report)
}

/// Sequential reference checksum of `hist_shared` for `config`.
pub fn hist_reference(config: HistConfig) -> u64 {
    reference_of(config, hist_setup, hist_run::<DirectContext>, hist_result)
}

/// Run `hist_shared` on the native runtime, returning its checksum
/// (compare with [`hist_reference`]) and the run report.
pub fn hist_native(config: HistConfig, runtime_config: RuntimeConfig) -> (u64, RunReport) {
    native_run_of(
        config,
        runtime_config,
        hist_setup,
        hist_run::<SpecContext>,
        hist_result,
    )
}

/// Like [`hist_native`] but also returns the run's drained flight-recorder
/// events and drop count (empty unless tracing was enabled).
pub fn hist_native_traced(
    config: HistConfig,
    runtime_config: RuntimeConfig,
) -> (u64, RunReport, (Vec<TraceEvent>, u64)) {
    native_traced_run_of(
        config,
        runtime_config,
        hist_setup,
        hist_run::<SpecContext>,
        hist_result,
    )
}

/// Like [`hist_native_traced`] but also returns the run's metrics
/// capture.
pub fn hist_native_observed(
    config: HistConfig,
    runtime_config: RuntimeConfig,
) -> (u64, RunReport, (Vec<TraceEvent>, u64), MetricsCapture) {
    native_observed_run_of(
        config,
        runtime_config,
        hist_setup,
        hist_run::<SpecContext>,
        hist_result,
    )
}

/// Native verification of `hist_shared`.
pub fn hist_verify_native(config: HistConfig, runtime_config: RuntimeConfig) -> (bool, RunReport) {
    let reference = hist_reference(config);
    let (got, report) = hist_native(config, runtime_config);
    (got == reference, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutls_runtime::DirectContext;
    use std::sync::Arc;

    fn chain_reference(config: &ChainConfig) -> u64 {
        let memory = Arc::new(GlobalMemory::new(1 << 16));
        let data = chain_setup(&memory, config);
        let mut ctx = DirectContext::new(Arc::clone(&memory));
        chain_run(&mut ctx, data, *config).unwrap();
        chain_result(&memory, &data, config)
    }

    fn hist_reference(config: &HistConfig) -> u64 {
        let memory = Arc::new(GlobalMemory::new(1 << 16));
        let data = hist_setup(&memory, config);
        let mut ctx = DirectContext::new(Arc::clone(&memory));
        hist_run(&mut ctx, data, *config).unwrap();
        hist_result(&memory, &data, config)
    }

    #[test]
    fn chain_is_deterministic_sequentially() {
        let fast = ChainConfig {
            work_per_chunk: 64,
            ..ChainConfig::tiny()
        };
        assert_eq!(chain_reference(&fast), chain_reference(&fast));
        // The sharing rate changes the dataflow, hence the result.
        let private = fast.sharing_permille(0);
        assert_ne!(chain_reference(&fast), chain_reference(&private));
    }

    #[test]
    fn chain_sharing_rate_extremes() {
        let all = ChainConfig::tiny().sharing_permille(1000);
        let none = ChainConfig::tiny().sharing_permille(0);
        assert!((1..all.chunks).all(|i| chain_shared(&all, i)));
        assert!(!chain_shared(&all, 0), "link 0 has no predecessor");
        assert!((0..none.chunks).all(|i| !chain_shared(&none, i)));
    }

    #[test]
    fn hist_is_deterministic_and_bins_stay_in_range() {
        let fast = HistConfig {
            work_per_item: 16,
            ..HistConfig::tiny()
        };
        assert_eq!(hist_reference(&fast), hist_reference(&fast));
        for chunk in 0..fast.chunks {
            for j in 0..fast.items {
                let bin = hist_bin(&fast, chunk, j);
                assert!(bin < fast.total_bins());
            }
        }
    }

    #[test]
    fn hist_private_bins_are_disjoint_across_chunks() {
        let cfg = HistConfig::tiny().sharing_permille(0);
        for chunk in 0..cfg.chunks {
            for j in 0..cfg.items {
                let bin = hist_bin(&cfg, chunk, j);
                let lo = cfg.shared_bins + chunk * cfg.private_bins;
                assert!((lo..lo + cfg.private_bins).contains(&bin));
            }
        }
    }

    #[test]
    #[should_panic(expected = "permille")]
    fn sharing_rate_is_validated() {
        let _ = ChainConfig::tiny().sharing_permille(1001);
    }
}
