//! # mutls-workloads — the benchmark suite of MUTLS Table II
//!
//! Eight benchmarks, each written once against
//! [`TlsContext`](mutls_runtime::TlsContext) so the same code drives:
//!
//! * the **sequential baseline** (through
//!   [`DirectContext`](mutls_runtime::DirectContext) — no speculation),
//! * the **native threaded runtime** (`mutls-runtime`), and
//! * the **multicore simulator** (`mutls-simcpu`) used to regenerate the
//!   paper's figures.
//!
//! | Benchmark | Pattern | Class |
//! |-----------|---------|-------|
//! | 3x+1        | loop               | computation intensive |
//! | mandelbrot  | loop               | computation intensive |
//! | md          | loop               | computation intensive |
//! | bh          | loop               | memory intensive      |
//! | fft         | divide and conquer | memory intensive      |
//! | matmult     | divide and conquer | memory intensive      |
//! | nqueen      | depth-first search | memory intensive      |
//! | tsp         | depth-first search | memory intensive      |
//!
//! The loop benchmarks speculate on the loop continuation (chunk chains);
//! the divide-and-conquer and DFS benchmarks speculate on the second
//! recursive call / the remaining choices — the tree-form recursion the
//! mixed forking model targets.
//!
//! Beyond Table II, the [`conflict`] module adds a *conflict-generating*
//! family (`conflict_chain`, `hist_shared`) with a tunable true-sharing
//! rate, used to exercise the runtime's real dependence validation instead
//! of injected rollbacks.

#![warn(missing_docs)]

pub mod bh;
pub mod conflict;
pub mod fft;
pub mod mandelbrot;
pub mod matmult;
pub mod md;
pub mod nqueen;
pub mod registry;
pub mod threex1;
pub mod tsp;

pub use registry::{
    arena_bytes, checksum, descriptor, reference_checksum, run_speculative, setup, site_label,
    Scale, WorkloadClass, WorkloadData, WorkloadDescriptor, WorkloadKind,
};
