//! The md benchmark — 3D molecular dynamics, computation intensive, loop
//! pattern.
//!
//! A velocity-Verlet style simulation of `particles` point masses with a
//! soft pairwise potential over `steps` time steps.  Within each step the
//! O(N²) force computation is split into particle chunks whose loop
//! continuation is speculated; the integration update is performed by the
//! non-speculative thread between steps (it is a tiny fraction of the
//! work, as in the original benchmark).

use mutls_membuf::{GPtr, GlobalMemory};
use mutls_runtime::{task, SpecResult, TlsContext};

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of particles.
    pub particles: usize,
    /// Number of simulation steps.
    pub steps: usize,
    /// Number of force chunks per step (speculative tasks).
    pub chunks: usize,
}

impl Config {
    /// Paper-scale problem: 256 particles, 400 steps.
    pub fn paper() -> Self {
        Config {
            particles: 256,
            steps: 400,
            chunks: 64,
        }
    }

    /// Scaled-down problem for simulation and native testing.
    pub fn scaled() -> Self {
        Config {
            particles: 128,
            steps: 6,
            chunks: 32,
        }
    }

    /// Tiny problem for unit tests.
    pub fn tiny() -> Self {
        Config {
            particles: 16,
            steps: 2,
            chunks: 4,
        }
    }
}

/// Arena-resident particle state (structure of arrays, 3 coordinates each).
#[derive(Debug, Clone, Copy)]
pub struct Data {
    /// Positions, laid out `[x0..xn, y0..yn, z0..zn]`.
    pub pos: GPtr<f64>,
    /// Velocities, same layout.
    pub vel: GPtr<f64>,
    /// Forces, same layout.
    pub force: GPtr<f64>,
}

/// Allocate and deterministically initialize the particle system.
pub fn setup(memory: &GlobalMemory, config: &Config) -> Data {
    let n = config.particles;
    let data = Data {
        pos: memory.alloc::<f64>(3 * n),
        vel: memory.alloc::<f64>(3 * n),
        force: memory.alloc::<f64>(3 * n),
    };
    // Deterministic pseudo-random initial positions in a unit box.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for d in 0..3 {
        for i in 0..n {
            memory.set(&data.pos, d * n + i, next());
            memory.set(&data.vel, d * n + i, 0.0);
            memory.set(&data.force, d * n + i, 0.0);
        }
    }
    data
}

/// Compute forces on the particles of chunk `chunk` from all particles.
fn force_chunk<C: TlsContext>(
    ctx: &mut C,
    data: Data,
    config: Config,
    chunk: usize,
) -> SpecResult<()> {
    let n = config.particles;
    let per = n.div_ceil(config.chunks);
    let lo = chunk * per;
    let hi = ((chunk + 1) * per).min(n);
    for i in lo..hi {
        let xi = ctx.load(&data.pos, i)?;
        let yi = ctx.load(&data.pos, n + i)?;
        let zi = ctx.load(&data.pos, 2 * n + i)?;
        let (mut fx, mut fy, mut fz) = (0.0f64, 0.0f64, 0.0f64);
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = ctx.load(&data.pos, j)? - xi;
            let dy = ctx.load(&data.pos, n + j)? - yi;
            let dz = ctx.load(&data.pos, 2 * n + j)? - zi;
            let r2 = dx * dx + dy * dy + dz * dz + 1e-6;
            // Soft attractive/repulsive potential.
            let inv = 1.0 / r2;
            let mag = inv * inv - 0.5 * inv;
            fx += mag * dx;
            fy += mag * dy;
            fz += mag * dz;
            ctx.work(40)?;
        }
        ctx.store(&data.force, i, fx)?;
        ctx.store(&data.force, n + i, fy)?;
        ctx.store(&data.force, 2 * n + i, fz)?;
    }
    Ok(())
}

/// Fork-site ID of the force-phase chunk continuation speculation.
pub const SITE_FORCE_CHUNK: u32 = 12;
/// Chain speculation over force chunks within one step.
fn force_phase_from<C: TlsContext>(
    ctx: &mut C,
    data: Data,
    config: Config,
    chunk: usize,
) -> SpecResult<()> {
    if chunk + 1 < config.chunks {
        let cont = task(move |ctx: &mut C| force_phase_from(ctx, data, config, chunk + 1));
        let handle = ctx.fork(SITE_FORCE_CHUNK, cont)?;
        force_chunk(ctx, data, config, chunk)?;
        ctx.join(handle)?;
    } else {
        force_chunk(ctx, data, config, chunk)?;
    }
    Ok(())
}

/// Integrate positions and velocities (non-speculative part of each step).
fn integrate<C: TlsContext>(ctx: &mut C, data: Data, config: Config) -> SpecResult<()> {
    let n = config.particles;
    let dt = 1e-3;
    for d in 0..3 {
        for i in 0..n {
            let f = ctx.load(&data.force, d * n + i)?;
            let v = ctx.load(&data.vel, d * n + i)? + dt * f;
            let p = ctx.load(&data.pos, d * n + i)? + dt * v;
            ctx.store(&data.vel, d * n + i, v)?;
            ctx.store(&data.pos, d * n + i, p)?;
            ctx.work(4)?;
        }
    }
    Ok(())
}

/// The speculative region: all simulation steps.
pub fn run<C: TlsContext>(ctx: &mut C, data: Data, config: Config) -> SpecResult<()> {
    for _ in 0..config.steps {
        force_phase_from(ctx, data, config, 0)?;
        integrate(ctx, data, config)?;
    }
    Ok(())
}

/// Result extractor: quantized sum of final positions.
pub fn result(memory: &GlobalMemory, data: &Data, config: &Config) -> u64 {
    let n = config.particles;
    let mut acc = 0i64;
    for i in 0..3 * n {
        acc = acc.wrapping_add((memory.get(&data.pos, i) * 1e9).round() as i64);
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutls_runtime::DirectContext;
    use std::sync::Arc;

    #[test]
    fn setup_is_deterministic() {
        let config = Config::tiny();
        let m1 = Arc::new(GlobalMemory::new(1 << 20));
        let m2 = Arc::new(GlobalMemory::new(1 << 20));
        let d1 = setup(&m1, &config);
        let d2 = setup(&m2, &config);
        for i in 0..3 * config.particles {
            assert_eq!(m1.get(&d1.pos, i), m2.get(&d2.pos, i));
        }
    }

    #[test]
    fn particles_move_under_forces() {
        let config = Config::tiny();
        let memory = Arc::new(GlobalMemory::new(1 << 20));
        let data = setup(&memory, &config);
        let before = result(&memory, &data, &config);
        let mut ctx = DirectContext::new(Arc::clone(&memory));
        run(&mut ctx, data, config).unwrap();
        let after = result(&memory, &data, &config);
        assert_ne!(before, after, "positions should change");
        // Positions stay finite.
        for i in 0..3 * config.particles {
            assert!(memory.get(&data.pos, i).is_finite());
        }
    }

    #[test]
    fn direct_run_is_reproducible() {
        let config = Config::tiny();
        let m1 = Arc::new(GlobalMemory::new(1 << 20));
        let d1 = setup(&m1, &config);
        run(&mut DirectContext::new(Arc::clone(&m1)), d1, config).unwrap();
        let m2 = Arc::new(GlobalMemory::new(1 << 20));
        let d2 = setup(&m2, &config);
        run(&mut DirectContext::new(Arc::clone(&m2)), d2, config).unwrap();
        assert_eq!(result(&m1, &d1, &config), result(&m2, &d2, &config));
    }
}
