//! The tsp benchmark — exact travelling-salesperson search, memory
//! intensive, depth-first-search pattern.
//!
//! A branch-and-bound DFS over tours starting at city 0.  The second-city
//! choices form the top level of the speculative DFS (each choice forks
//! the continuation exploring the remaining choices); every subtree keeps
//! its own best-tour length in a distinct arena cell so subtrees are
//! independent, as in the paper's embarrassingly parallel configuration.
//! The distance matrix lives in the arena and is read through the TLS
//! context, which is what makes the benchmark memory intensive.

use mutls_membuf::{GPtr, GlobalMemory};
use mutls_runtime::{task, SpecResult, TlsContext};

/// Problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of cities.
    pub cities: usize,
}

impl Config {
    /// Paper-scale problem: 12 cities.
    pub fn paper() -> Self {
        Config { cities: 12 }
    }

    /// Scaled-down problem for simulation and native testing.
    pub fn scaled() -> Self {
        Config { cities: 9 }
    }

    /// Tiny problem for unit tests.
    pub fn tiny() -> Self {
        Config { cities: 6 }
    }
}

/// Arena-resident data.
#[derive(Debug, Clone, Copy)]
pub struct Data {
    /// Row-major distance matrix (quantized to integers).
    pub dist: GPtr<u64>,
    /// Best tour length found in each second-city subtree.
    pub best: GPtr<u64>,
}

/// Allocate and deterministically initialize city coordinates / distances.
pub fn setup(memory: &GlobalMemory, config: &Config) -> Data {
    let n = config.cities;
    let data = Data {
        dist: memory.alloc::<u64>(n * n),
        best: memory.alloc::<u64>(n),
    };
    // Deterministic city layout on a noisy circle.
    let coords: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            let radius = 100.0 + 37.0 * ((i * 2654435761) % 97) as f64 / 97.0;
            (radius * angle.cos(), radius * angle.sin())
        })
        .collect();
    for i in 0..n {
        for j in 0..n {
            let dx = coords[i].0 - coords[j].0;
            let dy = coords[i].1 - coords[j].1;
            memory.set(&data.dist, i * n + j, (dx * dx + dy * dy).sqrt() as u64);
        }
    }
    for i in 0..n {
        memory.set(&data.best, i, u64::MAX);
    }
    data
}

/// Branch-and-bound DFS over the remaining cities.
#[allow(clippy::too_many_arguments)]
fn search<C: TlsContext>(
    ctx: &mut C,
    data: Data,
    n: usize,
    visited: u32,
    current: usize,
    length: u64,
    best: &mut u64,
) -> SpecResult<()> {
    ctx.work(2)?;
    if length >= *best {
        return Ok(()); // bound
    }
    if visited == (1u32 << n) - 1 {
        let back = ctx.load(&data.dist, current * n)?;
        let total = length + back;
        if total < *best {
            *best = total;
        }
        return Ok(());
    }
    for next in 1..n {
        if visited & (1 << next) != 0 {
            continue;
        }
        let step = ctx.load(&data.dist, current * n + next)?;
        search(
            ctx,
            data,
            n,
            visited | (1 << next),
            next,
            length + step,
            best,
        )?;
    }
    Ok(())
}

/// Explore the subtree whose second city is `second`.
fn subtree<C: TlsContext>(
    ctx: &mut C,
    data: Data,
    config: Config,
    second: usize,
) -> SpecResult<()> {
    let n = config.cities;
    let first_leg = ctx.load(&data.dist, second)?;
    let mut best = u64::MAX;
    search(
        ctx,
        data,
        n,
        1 | (1 << second),
        second,
        first_leg,
        &mut best,
    )?;
    ctx.store(&data.best, second, best)
}

/// Fork-site ID of the second-city continuation speculation.
pub const SITE_SECOND_CITY: u32 = 18;
/// DFS over second-city choices with speculated continuations.
fn explore_from<C: TlsContext>(
    ctx: &mut C,
    data: Data,
    config: Config,
    second: usize,
) -> SpecResult<()> {
    if second + 1 < config.cities {
        let cont = task(move |ctx: &mut C| explore_from(ctx, data, config, second + 1));
        let handle = ctx.fork(SITE_SECOND_CITY, cont)?;
        subtree(ctx, data, config, second)?;
        ctx.join(handle)?;
    } else {
        subtree(ctx, data, config, second)?;
    }
    Ok(())
}

/// The speculative region: the whole search (second cities 1..n).
pub fn run<C: TlsContext>(ctx: &mut C, data: Data, config: Config) -> SpecResult<()> {
    explore_from(ctx, data, config, 1)
}

/// Result extractor: the optimal tour length.
pub fn result(memory: &GlobalMemory, data: &Data, config: &Config) -> u64 {
    (1..config.cities)
        .map(|c| memory.get(&data.best, c))
        .min()
        .unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mutls_runtime::DirectContext;
    use std::sync::Arc;

    /// Brute-force optimum on host copies of the distance matrix.
    fn brute_force(memory: &GlobalMemory, data: &Data, n: usize) -> u64 {
        let dist: Vec<u64> = (0..n * n).map(|i| memory.get(&data.dist, i)).collect();
        let mut cities: Vec<usize> = (1..n).collect();
        let mut best = u64::MAX;
        permute(&mut cities, 0, &dist, n, &mut best);
        best
    }

    fn permute(cities: &mut Vec<usize>, k: usize, dist: &[u64], n: usize, best: &mut u64) {
        if k == cities.len() {
            let mut len = 0;
            let mut prev = 0;
            for &c in cities.iter() {
                len += dist[prev * n + c];
                prev = c;
            }
            len += dist[prev * n];
            *best = (*best).min(len);
            return;
        }
        for i in k..cities.len() {
            cities.swap(k, i);
            permute(cities, k + 1, dist, n, best);
            cities.swap(k, i);
        }
    }

    #[test]
    fn finds_the_optimal_tour() {
        let config = Config::tiny();
        let memory = Arc::new(GlobalMemory::new(1 << 16));
        let data = setup(&memory, &config);
        run(&mut DirectContext::new(Arc::clone(&memory)), data, config).unwrap();
        let got = result(&memory, &data, &config);
        let want = brute_force(&memory, &data, config.cities);
        assert_eq!(got, want);
    }

    #[test]
    fn distances_are_symmetric_with_zero_diagonal() {
        let config = Config::tiny();
        let memory = Arc::new(GlobalMemory::new(1 << 16));
        let data = setup(&memory, &config);
        let n = config.cities;
        for i in 0..n {
            assert_eq!(memory.get(&data.dist, i * n + i), 0);
            for j in 0..n {
                assert_eq!(
                    memory.get(&data.dist, i * n + j),
                    memory.get(&data.dist, j * n + i)
                );
            }
        }
    }
}
