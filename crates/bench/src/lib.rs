//! Benchmark-only crate: see `benches/paper_experiments.rs`, which
//! regenerates every table and figure of the MUTLS evaluation under
//! `cargo bench`.
