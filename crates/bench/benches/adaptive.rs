//! Adaptive-vs-static governor benchmarks.
//!
//! Two questions for the perf trajectory:
//!
//! 1. **Governor overhead** — how much slower is a clean (no-rollback)
//!    simulation when every fork consults the Throttle/ModelSelect policy
//!    instead of Static?
//! 2. **Wasted-work reduction** — on a rollback-heavy workload, how much
//!    discarded work does the throttle policy save?  The measured cycle
//!    numbers are printed once so `cargo bench` output records them.

use std::sync::Arc;
use std::sync::Once;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mutls_adaptive::{GovernorConfig, PolicyKind};
use mutls_membuf::GlobalMemory;
use mutls_simcpu::{record_region, simulate, Recording, SimConfig};
use mutls_workloads::{arena_bytes, run_speculative, setup, Scale, WorkloadKind};

const CPUS: usize = 16;
const HEAVY_ROLLBACK_P: f64 = 0.4;

fn record(kind: WorkloadKind, scale: Scale) -> Recording {
    let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, scale)));
    let data = setup(kind, scale, &memory);
    record_region(Arc::clone(&memory), |ctx| run_speculative(ctx, &data))
}

fn config(policy: PolicyKind, rollback_probability: f64) -> SimConfig {
    SimConfig {
        num_cpus: CPUS,
        fork_model: None,
        rollback_probability,
        seed: 0xAB5C155A,
        cost: Default::default(),
        governor: GovernorConfig::with_policy(policy),
        ..Default::default()
    }
}

static PRINT_SAVINGS: Once = Once::new();

/// Record the wasted-work reduction once per bench run.
fn print_savings_once() {
    PRINT_SAVINGS.call_once(|| {
        for kind in [WorkloadKind::Tsp, WorkloadKind::Bh, WorkloadKind::Md] {
            let recording = record(kind, Scale::Scaled);
            let stat = simulate(&recording, config(PolicyKind::Static, HEAVY_ROLLBACK_P));
            let thr = simulate(&recording, config(PolicyKind::Throttle, HEAVY_ROLLBACK_P));
            eprintln!(
                "adaptive: {} @ {CPUS} CPUs, {HEAVY_ROLLBACK_P} injected rollbacks: \
                 wasted work static={} throttle={} ({} rolled back -> {})",
                kind.name(),
                stat.report.wasted_work(),
                thr.report.wasted_work(),
                stat.report.rolled_back_threads,
                thr.report.rolled_back_threads,
            );
        }
    });
}

/// Overhead of consulting the governor on a clean workload.
fn bench_governor_overhead(c: &mut Criterion) {
    print_savings_once();
    let recording = record(WorkloadKind::Fft, Scale::Tiny);
    let mut group = c.benchmark_group("adaptive_governor_overhead");
    group.sample_size(10);
    for policy in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("simulate_clean", policy.label()),
            &recording,
            |b, rec| b.iter(|| simulate(rec, config(policy, 0.0)).speedup()),
        );
    }
    group.finish();
}

/// Static vs throttle on a rollback-heavy workload.
fn bench_rollback_heavy(c: &mut Criterion) {
    print_savings_once();
    let recording = record(WorkloadKind::Tsp, Scale::Tiny);
    let mut group = c.benchmark_group("adaptive_rollback_heavy");
    group.sample_size(10);
    for policy in PolicyKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("simulate_tsp", policy.label()),
            &recording,
            |b, rec| b.iter(|| simulate(rec, config(policy, HEAVY_ROLLBACK_P)).speedup()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_governor_overhead, bench_rollback_heavy);
criterion_main!(benches);
