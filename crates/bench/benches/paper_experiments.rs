//! Criterion benchmarks regenerating every table and figure of the MUTLS
//! evaluation (§V).  Each group corresponds to one paper artefact; the
//! generated tables are printed to stderr once per group so `cargo bench`
//! output doubles as the experiment record (see EXPERIMENTS.md).

use std::sync::Arc;
use std::sync::Once;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mutls_harness::{
    figure10, figure11, figure3, figure4, figure5, figure6, figure7, figure8, figure9, table2,
    ExperimentConfig,
};
use mutls_membuf::GlobalMemory;
use mutls_simcpu::{record_region, simulate, SimConfig};
use mutls_workloads::{arena_bytes, run_speculative, setup, Scale, WorkloadKind};

fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: Scale::Tiny,
        cpus: vec![1, 4, 16, 64],
        seed: 0xAB5C155A,
        ..ExperimentConfig::quick()
    }
}

static PRINT_TABLES: Once = Once::new();

/// Print every regenerated table once, so the bench run records the
/// measured figure data alongside the timing numbers.
fn print_tables_once() {
    PRINT_TABLES.call_once(|| {
        let config = bench_config();
        eprintln!("{}", table2(&config).1);
        eprintln!("{}", figure3(&config).1);
        eprintln!("{}", figure4(&config).1);
        eprintln!("{}", figure5(&config).1);
        eprintln!("{}", figure6(&config).1);
        eprintln!("{}", figure7(&config).1);
        eprintln!("{}", figure8(&config).1);
        eprintln!("{}", figure9(&config).1);
        eprintln!("{}", figure10(&config).1);
        eprintln!("{}", figure11(&config).1);
    });
}

/// Table II / figures 3-4 substrate: recording + simulating each workload.
fn bench_workload_simulation(c: &mut Criterion) {
    print_tables_once();
    let mut group = c.benchmark_group("table2_workloads");
    group.sample_size(10);
    for kind in WorkloadKind::ALL {
        let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, Scale::Tiny)));
        let data = setup(kind, Scale::Tiny, &memory);
        let recording = record_region(Arc::clone(&memory), |ctx| run_speculative(ctx, &data));
        group.bench_with_input(
            BenchmarkId::new("simulate_16cpu", kind.name()),
            &recording,
            |b, rec| b.iter(|| simulate(rec, SimConfig::with_cpus(16)).speedup()),
        );
    }
    group.finish();
}

/// Figure 3: speedup sweep of the computation-intensive applications.
fn bench_fig3_speedup_compute(c: &mut Criterion) {
    print_tables_once();
    let config = bench_config();
    let mut group = c.benchmark_group("fig3_speedup_compute");
    group.sample_size(10);
    group.bench_function("sweep", |b| b.iter(|| figure3(&config).0.len()));
    group.finish();
}

/// Figure 4: speedup sweep of the memory-intensive applications.
fn bench_fig4_speedup_memory(c: &mut Criterion) {
    print_tables_once();
    let config = bench_config();
    let mut group = c.benchmark_group("fig4_speedup_memory");
    group.sample_size(10);
    group.bench_function("sweep", |b| b.iter(|| figure4(&config).0.len()));
    group.finish();
}

/// Figures 5-7: efficiency metrics over all benchmarks.
fn bench_fig5to7_efficiencies(c: &mut Criterion) {
    print_tables_once();
    let config = bench_config();
    let mut group = c.benchmark_group("fig5_6_7_efficiencies");
    group.sample_size(10);
    group.bench_function("fig5_critical_path", |b| {
        b.iter(|| figure5(&config).0.len())
    });
    group.bench_function("fig6_speculative_path", |b| {
        b.iter(|| figure6(&config).0.len())
    });
    group.bench_function("fig7_power", |b| b.iter(|| figure7(&config).0.len()));
    group.finish();
}

/// Figures 8-9: per-phase breakdowns.
fn bench_fig8to9_breakdowns(c: &mut Criterion) {
    print_tables_once();
    let config = bench_config();
    let mut group = c.benchmark_group("fig8_9_breakdowns");
    group.sample_size(10);
    group.bench_function("fig8_critical_breakdown", |b| {
        b.iter(|| figure8(&config).0.len())
    });
    group.bench_function("fig9_speculative_breakdown", |b| {
        b.iter(|| figure9(&config).0.len())
    });
    group.finish();
}

/// Figure 10: forking-model comparison on the tree-recursion benchmarks.
fn bench_fig10_fork_models(c: &mut Criterion) {
    print_tables_once();
    let config = bench_config();
    let mut group = c.benchmark_group("fig10_fork_models");
    group.sample_size(10);
    group.bench_function("comparison", |b| b.iter(|| figure10(&config).0.len()));
    group.finish();
}

/// Figure 11: rollback sensitivity.
fn bench_fig11_rollback_sensitivity(c: &mut Criterion) {
    print_tables_once();
    let config = ExperimentConfig {
        cpus: vec![16],
        ..bench_config()
    };
    let mut group = c.benchmark_group("fig11_rollback_sensitivity");
    group.sample_size(10);
    group.bench_function("sensitivity", |b| b.iter(|| figure11(&config).0.len()));
    group.finish();
}

criterion_group!(
    benches,
    bench_workload_simulation,
    bench_fig3_speedup_compute,
    bench_fig4_speedup_memory,
    bench_fig5to7_efficiencies,
    bench_fig8to9_breakdowns,
    bench_fig10_fork_models,
    bench_fig11_rollback_sensitivity,
);
criterion_main!(benches);
