//! Live-metrics-plane overhead benchmarks.
//!
//! The metrics registry's contract is "free when off": with
//! `MetricsConfig` disabled every instrumentation site costs one branch,
//! no sampler thread is spawned, and nothing about speculation behaviour
//! or accounting may change.  That contract is asserted two ways before
//! the timing groups run:
//!
//! 1. **No regression vs. the committed trajectory** — the deterministic
//!    recovery replay with the registry disabled must reproduce the
//!    `BENCH_PR8.json` rows (committed before the metrics plane existed)
//!    counter-for-counter.
//! 2. **Virtual-time neutrality** — enabling the registry and the
//!    virtual-clock sampler must not move a single virtual cycle of the
//!    simulated timeline: snapshots are scraped off the clock, so the
//!    instrumented and dark replays of one recording agree exactly on
//!    runtime, commit-log traffic and wasted work.
//!
//! The Criterion groups then measure the real-world cost of both
//! registry states on the simulator and the native runtime, so
//! `cargo bench` output records the enabled-mode overhead alongside the
//! zero-cost disabled mode.

use std::sync::Arc;
use std::sync::Once;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mutls_harness::{recovery_replay, ExperimentConfig};
use mutls_membuf::{CommitLogConfig, GlobalMemory};
use mutls_metrics::MetricsConfig;
use mutls_runtime::RuntimeConfig;
use mutls_simcpu::{record_region, simulate, SimConfig};
use mutls_workloads::{arena_bytes, conflict, run_speculative, setup, Scale, WorkloadKind};
use serde::JsonValue;

const CPUS: usize = 16;

/// The committed PR 8 trajectory rows (generated with `--scale tiny`,
/// before the metrics plane existed).
const BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR8.json");

fn u64_of(row: &[(String, JsonValue)], key: &str) -> u64 {
    match serde::obj_get(row, key) {
        Ok(JsonValue::Num(n)) => *n as u64,
        other => panic!("{key}: expected number, got {other:?}"),
    }
}

fn str_of<'a>(row: &'a [(String, JsonValue)], key: &str) -> &'a str {
    match serde::obj_get(row, key) {
        Ok(JsonValue::Str(s)) => s,
        other => panic!("{key}: expected string, got {other:?}"),
    }
}

/// Replay config matching the run that produced `BENCH_PR8.json` — no
/// metrics sink attached, so the registry stays in its disabled state.
fn baseline_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: Scale::Tiny,
        ..ExperimentConfig::default()
    }
}

static ASSERT_NO_REGRESSION: Once = Once::new();

/// Assert the disabled-registry contract once per bench run (also
/// honoured under `cargo bench -- --test`).
fn assert_no_regression_once() {
    ASSERT_NO_REGRESSION.call_once(|| {
        // 1. Disabled registry reproduces the pre-metrics trajectory.
        let baseline = std::fs::read_to_string(BASELINE).expect("BENCH_PR8.json is committed");
        let doc = serde_json::parse(&baseline).expect("baseline parses");
        let rows = serde::obj_get(doc.as_object().expect("object"), "experiments")
            .and_then(|e| serde::obj_get(e.as_object().expect("object"), "recovery_replay"))
            .expect("baseline has recovery_replay rows");
        let JsonValue::Arr(rows) = rows else {
            panic!("recovery_replay must be an array");
        };
        let (fresh, _) = recovery_replay(&baseline_config());
        assert_eq!(fresh.len(), rows.len(), "replay row count drifted");
        for (row, expect) in fresh.iter().zip(rows) {
            let expect = expect.as_object().expect("row object");
            let point = format!(
                "{}/{} at grain {} / {:.0}% sharing",
                row.workload,
                row.recovery,
                row.grain_log2,
                row.sharing * 100.0
            );
            assert_eq!(row.workload, str_of(expect, "workload"), "{point}");
            assert_eq!(row.recovery, str_of(expect, "recovery"), "{point}");
            assert_eq!(
                u64::from(row.grain_log2),
                u64_of(expect, "grain_log2"),
                "{point}"
            );
            for (label, got, want) in [
                ("committed", row.committed, u64_of(expect, "committed")),
                ("retried", row.retried, u64_of(expect, "retried")),
                (
                    "rolled_back",
                    row.rolled_back,
                    u64_of(expect, "rolled_back"),
                ),
                (
                    "targeted_dooms",
                    row.targeted_dooms,
                    u64_of(expect, "targeted_dooms"),
                ),
                (
                    "precise_passes",
                    row.precise_passes,
                    u64_of(expect, "precise_passes"),
                ),
                (
                    "ring_overflows",
                    row.ring_overflows,
                    u64_of(expect, "ring_overflows"),
                ),
                (
                    "wasted_cycles",
                    row.wasted_cycles,
                    u64_of(expect, "wasted_cycles"),
                ),
            ] {
                assert_eq!(
                    got, want,
                    "{point}: {label} regressed vs BENCH_PR8.json with metrics off"
                );
            }
        }
        eprintln!(
            "metrics_overhead: disabled registry reproduces all {} BENCH_PR8.json replay rows",
            rows.len()
        );

        // 2. Turning the metrics plane on never moves the simulated
        //    timeline.
        let kind = WorkloadKind::ConflictChain;
        let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, Scale::Tiny)));
        let data = setup(kind, Scale::Tiny, &memory);
        let recording = record_region(Arc::clone(&memory), |ctx| run_speculative(ctx, &data));
        let config = |metrics| SimConfig {
            num_cpus: CPUS,
            metrics,
            ..SimConfig::default()
        };
        let off = simulate(&recording, config(MetricsConfig::default()));
        let on = simulate(&recording, config(MetricsConfig::enabled()));
        assert!(off.metrics.is_empty() && !on.metrics.is_empty());
        assert_eq!(
            off.report.runtime, on.report.runtime,
            "metrics sampling must not move the virtual clock"
        );
        assert_eq!(off.report.commit_log, on.report.commit_log);
        assert_eq!(off.report.wasted_work(), on.report.wasted_work());
        assert_eq!(off.report.latency, on.report.latency);
    });
}

/// Simulator wall-clock with the metrics plane off vs. on.
fn bench_simulate_metrics_states(c: &mut Criterion) {
    assert_no_regression_once();
    let kind = WorkloadKind::ConflictChain;
    let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, Scale::Tiny)));
    let data = setup(kind, Scale::Tiny, &memory);
    let recording = record_region(Arc::clone(&memory), |ctx| run_speculative(ctx, &data));
    let mut group = c.benchmark_group("metrics_overhead_simulate");
    group.sample_size(10);
    for (label, metrics) in [
        ("disabled", MetricsConfig::default()),
        ("enabled", MetricsConfig::enabled()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("conflict_chain", label),
            &recording,
            |b, rec| {
                b.iter(|| {
                    simulate(
                        rec,
                        SimConfig {
                            num_cpus: CPUS,
                            metrics,
                            ..SimConfig::default()
                        },
                    )
                    .report
                    .runtime
                })
            },
        );
    }
    group.finish();
}

/// Native runtime wall-clock with the metrics plane off vs. on (the
/// per-thread sharded cells and the sampler thread live only in the
/// enabled arm).
fn bench_native_metrics_states(c: &mut Criterion) {
    assert_no_regression_once();
    let chain = conflict::ChainConfig::for_scale(Scale::Tiny).sharing_permille(1000);
    let mut group = c.benchmark_group("metrics_overhead_native");
    group.sample_size(10);
    for (label, metrics) in [
        ("disabled", MetricsConfig::default()),
        ("enabled", MetricsConfig::enabled().sample_interval_ms(1)),
    ] {
        group.bench_function(BenchmarkId::new("conflict_chain", label), |b| {
            b.iter(|| {
                let (checksum, _, _, _) = conflict::chain_native_observed(
                    chain,
                    RuntimeConfig::with_cpus(4)
                        .commit_log(CommitLogConfig::word_grain())
                        .metrics(metrics),
                );
                checksum
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulate_metrics_states,
    bench_native_metrics_states,
);
criterion_main!(benches);
