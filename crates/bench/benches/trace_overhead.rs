//! Flight-recorder overhead benchmarks.
//!
//! The recorder's contract is "free when off": with `TraceConfig`
//! disabled the hot path costs one branch, and nothing about speculation
//! behaviour or accounting may change.  That contract is asserted two
//! ways before the timing groups run:
//!
//! 1. **No regression vs. the committed trajectory** — the deterministic
//!    graincontrol replay with the recorder disabled must reproduce the
//!    `BENCH_PR5.json` rows (committed before the recorder existed)
//!    counter-for-counter.
//! 2. **Virtual-time neutrality** — enabling the recorder must not move a
//!    single virtual cycle of the simulated timeline: events are recorded
//!    off the clock, so the traced and untraced replays of one recording
//!    agree exactly on runtime, stamps and wasted work.
//!
//! The Criterion groups then measure the real-world cost of both recorder
//! states on the simulator and the native runtime, so `cargo bench`
//! output records the enabled-mode overhead alongside the zero-cost
//! disabled mode.

use std::sync::Arc;
use std::sync::Once;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mutls_harness::{graincontrol_replay, ExperimentConfig};
use mutls_membuf::{CommitLogConfig, GlobalMemory};
use mutls_runtime::RuntimeConfig;
use mutls_simcpu::{record_region, simulate, SimConfig};
use mutls_trace::TraceConfig;
use mutls_workloads::{arena_bytes, conflict, run_speculative, setup, Scale, WorkloadKind};
use serde::JsonValue;

const CPUS: usize = 16;

/// The committed PR 5 trajectory rows (generated with `--scale tiny`,
/// before the flight recorder existed).
const BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR5.json");

fn u64_of(row: &[(String, JsonValue)], key: &str) -> u64 {
    match serde::obj_get(row, key) {
        Ok(JsonValue::Num(n)) => *n as u64,
        other => panic!("{key}: expected number, got {other:?}"),
    }
}

fn str_of<'a>(row: &'a [(String, JsonValue)], key: &str) -> &'a str {
    match serde::obj_get(row, key) {
        Ok(JsonValue::Str(s)) => s,
        other => panic!("{key}: expected string, got {other:?}"),
    }
}

/// Replay config matching the run that produced `BENCH_PR5.json`.
fn baseline_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: Scale::Tiny,
        ..ExperimentConfig::default()
    }
}

static ASSERT_NO_REGRESSION: Once = Once::new();

/// Assert the disabled-recorder contract once per bench run (also honoured
/// under `cargo bench -- --test`).
fn assert_no_regression_once() {
    ASSERT_NO_REGRESSION.call_once(|| {
        // 1. Disabled recorder reproduces the pre-recorder trajectory.
        let baseline = std::fs::read_to_string(BASELINE).expect("BENCH_PR5.json is committed");
        let doc = serde_json::parse(&baseline).expect("baseline parses");
        let rows = serde::obj_get(doc.as_object().expect("object"), "experiments")
            .and_then(|e| serde::obj_get(e.as_object().expect("object"), "graincontrol_replay"))
            .expect("baseline has graincontrol_replay rows");
        let JsonValue::Arr(rows) = rows else {
            panic!("graincontrol_replay must be an array");
        };
        // The replay has since grown an mvcc recovery dimension; the
        // single-version subset (the engine BENCH_PR5.json was generated
        // under, in the same point × mode order) must still reproduce the
        // committed trajectory counter-for-counter.
        let (fresh, _) = graincontrol_replay(&baseline_config());
        let fresh: Vec<_> = fresh
            .into_iter()
            .filter(|r| r.recovery == "targeted+retry")
            .collect();
        assert_eq!(fresh.len(), rows.len(), "replay row count drifted");
        for (row, expect) in fresh.iter().zip(rows) {
            let expect = expect.as_object().expect("row object");
            let point = format!(
                "{}/{} at {:.0}% sharing",
                row.workload,
                row.mode,
                row.sharing * 100.0
            );
            assert_eq!(row.workload, str_of(expect, "workload"), "{point}");
            assert_eq!(row.mode, str_of(expect, "mode"), "{point}");
            for (label, got, want) in [
                ("committed", row.committed, u64_of(expect, "committed")),
                ("retried", row.retried, u64_of(expect, "retried")),
                (
                    "rolled_back",
                    row.rolled_back,
                    u64_of(expect, "rolled_back"),
                ),
                (
                    "stamp_writes",
                    row.stamp_writes,
                    u64_of(expect, "stamp_writes"),
                ),
                ("regrains", row.regrains, u64_of(expect, "regrains")),
                (
                    "wasted_cycles",
                    row.wasted_cycles,
                    u64_of(expect, "wasted_cycles"),
                ),
            ] {
                assert_eq!(
                    got, want,
                    "{point}: {label} regressed vs BENCH_PR5.json with tracing off"
                );
            }
        }
        eprintln!(
            "trace_overhead: disabled recorder reproduces all {} BENCH_PR5.json replay rows",
            rows.len()
        );

        // 2. Turning the recorder on never moves the simulated timeline.
        let kind = WorkloadKind::ConflictChain;
        let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, Scale::Tiny)));
        let data = setup(kind, Scale::Tiny, &memory);
        let recording = record_region(Arc::clone(&memory), |ctx| run_speculative(ctx, &data));
        let config = |trace| SimConfig {
            num_cpus: CPUS,
            trace,
            ..SimConfig::default()
        };
        let off = simulate(&recording, config(false));
        let on = simulate(&recording, config(true));
        assert!(off.events.is_empty() && !on.events.is_empty());
        assert_eq!(
            off.report.runtime, on.report.runtime,
            "tracing must not move the virtual clock"
        );
        assert_eq!(off.report.commit_log, on.report.commit_log);
        assert_eq!(off.report.wasted_work(), on.report.wasted_work());
        assert_eq!(off.report.latency, on.report.latency);
    });
}

/// Simulator wall-clock with the recorder off vs. on.
fn bench_simulate_recorder_states(c: &mut Criterion) {
    assert_no_regression_once();
    let kind = WorkloadKind::ConflictChain;
    let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, Scale::Tiny)));
    let data = setup(kind, Scale::Tiny, &memory);
    let recording = record_region(Arc::clone(&memory), |ctx| run_speculative(ctx, &data));
    let mut group = c.benchmark_group("trace_overhead_simulate");
    group.sample_size(10);
    for (label, trace) in [("disabled", false), ("enabled", true)] {
        group.bench_with_input(
            BenchmarkId::new("conflict_chain", label),
            &recording,
            |b, rec| {
                b.iter(|| {
                    simulate(
                        rec,
                        SimConfig {
                            num_cpus: CPUS,
                            trace,
                            ..SimConfig::default()
                        },
                    )
                    .report
                    .runtime
                })
            },
        );
    }
    group.finish();
}

/// Native runtime wall-clock with the recorder off vs. on (per-thread
/// SPSC rings live only in the enabled arm).
fn bench_native_recorder_states(c: &mut Criterion) {
    assert_no_regression_once();
    let chain = conflict::ChainConfig::for_scale(Scale::Tiny).sharing_permille(1000);
    let mut group = c.benchmark_group("trace_overhead_native");
    group.sample_size(10);
    for (label, trace) in [
        ("disabled", TraceConfig::default()),
        ("enabled", TraceConfig::enabled()),
    ] {
        group.bench_function(BenchmarkId::new("conflict_chain", label), |b| {
            b.iter(|| {
                let (checksum, _, _) = conflict::chain_native_traced(
                    chain,
                    RuntimeConfig::with_cpus(4)
                        .commit_log(CommitLogConfig::word_grain())
                        .trace(trace),
                );
                checksum
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulate_recorder_states,
    bench_native_recorder_states,
);
criterion_main!(benches);
