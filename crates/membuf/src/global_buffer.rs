//! Read-set/write-set buffering of non-local memory accesses (paper §IV-G2).
//!
//! Every speculative thread owns one [`GlobalBuffer`].  Writes to the global
//! address space are redirected into the write-set; loads return the value
//! from the write-set if present, else from the read-set, else the value is
//! loaded from main memory and recorded in the read-set.
//!
//! Conflicts only occur when a speculative thread reads an address before a
//! logically earlier thread writes it, so validation simply re-reads every
//! read-set entry from main memory and compares; commit then publishes the
//! write-set (masked by the bytes actually written).

use crate::commit_log::{CommitLog, RingCheck};
use crate::error::BufferError;
use crate::memory::{Addr, MainMemory, WORD_BYTES};
use crate::wordmap::{byte_mask, WordMap};

/// Outcome of a commit-log validation pass (see
/// [`GlobalBuffer::validate_against_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Validation {
    /// No commit invalidated any read — the thread may commit.
    Valid,
    /// At least one read's range was committed after the read.
    Conflict {
        /// True when every conflicting word still holds its first-read
        /// value — the conflict is most likely false sharing introduced
        /// by a coarse tracking grain (or a value-identical ABA write).
        suspected_false_sharing: bool,
    },
}

impl Validation {
    /// True when validation passed.
    pub fn is_valid(&self) -> bool {
        matches!(self, Validation::Valid)
    }
}

/// Capacity configuration of a speculative thread's buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferConfig {
    /// Direct-mapped slots in the read-set.
    pub read_capacity_words: usize,
    /// Direct-mapped slots in the write-set.
    pub write_capacity_words: usize,
    /// Entries in each overflow area.
    pub overflow_capacity: usize,
}

impl Default for BufferConfig {
    fn default() -> Self {
        // Defaults sized for the paper's memory-intensive benchmarks
        // (2^20 doubles FFT working set split across recursive tasks).
        BufferConfig {
            read_capacity_words: 1 << 16,
            write_capacity_words: 1 << 16,
            overflow_capacity: 1 << 10,
        }
    }
}

impl BufferConfig {
    /// A deliberately tiny configuration useful in tests that exercise
    /// overflow and rollback paths.
    pub fn tiny() -> Self {
        BufferConfig {
            read_capacity_words: 16,
            write_capacity_words: 16,
            overflow_capacity: 4,
        }
    }
}

/// Counters describing buffer activity, consumed by the statistics layer
/// and the discrete-event simulator cost model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferStats {
    /// Speculative loads served (any source).
    pub loads: u64,
    /// Speculative stores buffered.
    pub stores: u64,
    /// Loads that had to touch main memory (read-set misses).
    pub memory_loads: u64,
    /// Words validated at join time.
    pub validated_words: u64,
    /// Words committed at join time.
    pub committed_words: u64,
    /// Hash conflicts that landed in the overflow area.
    pub overflow_events: u64,
    /// Reads whose range was committed after the read but whose *word*
    /// the version ring proved untouched ([`RingCheck::Precise`]) —
    /// false-sharing dooms MVCC validation survived.  Always 0 at ring
    /// depth 1.
    pub precise_passes: u64,
}

/// Per-thread buffering of global (static/heap/non-speculative-stack) data.
#[derive(Debug)]
pub struct GlobalBuffer {
    read_set: WordMap,
    write_set: WordMap,
    stats: BufferStats,
    /// Thread rank registered in the commit log's reader registry on every
    /// first-touch read (0 = anonymous: snapshot without registering).
    reader: usize,
}

impl GlobalBuffer {
    /// Create a buffer with the given capacities.
    pub fn new(config: BufferConfig) -> Self {
        GlobalBuffer {
            read_set: WordMap::new(config.read_capacity_words, config.overflow_capacity),
            write_set: WordMap::new(config.write_capacity_words, config.overflow_capacity),
            stats: BufferStats::default(),
            reader: 0,
        }
    }

    /// Create a buffer whose first-touch reads register thread `rank` in
    /// the commit log's reader registry (see `CommitLog::register_reader`),
    /// so committing writers can doom this thread surgically.
    pub fn for_reader(config: BufferConfig, rank: usize) -> Self {
        let mut buffer = Self::new(config);
        buffer.reader = rank;
        buffer
    }

    /// The rank this buffer registers as a reader (0 = anonymous).
    pub fn reader(&self) -> usize {
        self.reader
    }

    /// Activity counters accumulated since the last [`clear`](Self::clear).
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Number of words currently buffered in the read-set.
    pub fn read_set_len(&self) -> usize {
        self.read_set.len()
    }

    /// Whether the word at `addr` is in the read-set — i.e. the thread
    /// read it from shared state before (or without) writing it.  The
    /// runtime uses this to tell a *blind* store (write-only word: any
    /// registered reader is reading underneath this thread's overlay)
    /// from a read-modify-write (registered readers may be logical
    /// predecessors and must not be doomed at store time).
    pub fn has_read(&self, addr: Addr) -> bool {
        self.read_set.get(addr & !(WORD_BYTES - 1)).is_some()
    }

    /// Number of words currently buffered in the write-set.
    pub fn write_set_len(&self) -> usize {
        self.write_set.len()
    }

    /// True if either set had to spill into its overflow area; the runtime
    /// stalls the thread at its next check point in that case.
    pub fn overflow_pending(&self) -> bool {
        self.read_set.overflow_pending() || self.write_set.overflow_pending()
    }

    fn split(addr: Addr, size: u64) -> Result<(Addr, u64), BufferError> {
        if size == 0 || (size < WORD_BYTES && !WORD_BYTES.is_multiple_of(size)) {
            return Err(BufferError::UnsupportedSize);
        }
        if !addr.is_multiple_of(size.min(WORD_BYTES)) {
            return Err(BufferError::Misaligned);
        }
        let word_addr = addr & !(WORD_BYTES - 1);
        let offset = addr - word_addr;
        Ok((word_addr, offset))
    }

    /// Speculatively load `size` bytes (1, 2, 4 or 8) at `addr`.
    ///
    /// The value is returned in the low bits of the result.  Read-set
    /// entries are stamped with version 0; use
    /// [`load_logged`](Self::load_logged) when join-time validation goes
    /// through a [`CommitLog`].
    pub fn load(
        &mut self,
        mem: &dyn MainMemory,
        addr: Addr,
        size: u64,
    ) -> Result<u64, BufferError> {
        self.load_logged(mem, None, addr, size)
    }

    /// Speculatively load `size` bytes at `addr`, stamping any new
    /// read-set entry with the commit-log epoch observed *before* the
    /// memory read (see the ordering protocol in [`CommitLog`]).
    pub fn load_logged(
        &mut self,
        mem: &dyn MainMemory,
        log: Option<&CommitLog>,
        addr: Addr,
        size: u64,
    ) -> Result<u64, BufferError> {
        self.stats.loads += 1;
        let (word_addr, offset) = Self::split(addr, size)?;
        let mask = byte_mask(offset, size.min(WORD_BYTES))?;
        let word = self.load_word(mem, log, word_addr)?;
        // Overlay any bytes the thread itself has written.
        let word = match self.write_set.get(word_addr) {
            Some(w) => (word & !w.mask) | (w.data & w.mask),
            None => word,
        };
        Ok((word & mask) >> (offset * 8))
    }

    /// Load a full word, recording it in the read-set on first access.
    fn load_word(
        &mut self,
        mem: &dyn MainMemory,
        log: Option<&CommitLog>,
        word_addr: Addr,
    ) -> Result<u64, BufferError> {
        // A word fully covered by the thread's own writes carries no read
        // dependence; skip the read-set so no false conflict can arise.
        if let Some(w) = self.write_set.get(word_addr) {
            if w.mask == u64::MAX {
                return Ok(w.data);
            }
        }
        if let Some(r) = self.read_set.get(word_addr) {
            return Ok(r.data);
        }
        self.stats.memory_loads += 1;
        // Sample the owning shard's epoch BEFORE reading the word: a
        // commit racing in between then stamps a higher version and
        // validation flags the read (conservatively), never misses it.
        // With a reader identity, registration precedes the snapshot
        // (CommitLog's seqlock protocol), so a committer that misses the
        // registration is covered by the snapshot.
        let version = log
            .map(|l| {
                if self.reader != 0 {
                    l.register_reader(word_addr, self.reader)
                } else {
                    l.snapshot(word_addr)
                }
            })
            .unwrap_or(0);
        let value = mem.read_word(word_addr);
        match self
            .read_set
            .insert_word_versioned(word_addr, value, version)
        {
            Ok(()) => {}
            Err(BufferError::OverflowPending) => self.stats.overflow_events += 1,
            Err(e) => return Err(e),
        }
        Ok(value)
    }

    /// Speculatively store the low `size` bytes of `value` at `addr`.
    pub fn store(&mut self, addr: Addr, value: u64, size: u64) -> Result<(), BufferError> {
        self.stats.stores += 1;
        let (word_addr, offset) = Self::split(addr, size)?;
        let mask = byte_mask(offset, size.min(WORD_BYTES))?;
        match self.write_set.merge(word_addr, value << (offset * 8), mask) {
            Ok(()) => Ok(()),
            Err(BufferError::OverflowPending) => {
                self.stats.overflow_events += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Validate the read-set against main memory.
    ///
    /// Returns `true` when every read value still matches main memory —
    /// i.e. no logically earlier thread wrote any address this thread read.
    pub fn validate(&mut self, mem: &dyn MainMemory) -> bool {
        for entry in self.read_set.iter() {
            self.stats.validated_words += 1;
            if mem.read_word(entry.addr) != entry.data {
                return false;
            }
        }
        true
    }

    /// Commit the write-set to main memory.
    ///
    /// Only bytes actually written are published; a fully written word is
    /// committed with a single word store (the paper's "-1 mark" fast
    /// path).
    pub fn commit(&mut self, mem: &dyn MainMemory) {
        for entry in self.write_set.iter() {
            self.stats.committed_words += 1;
            if entry.mask == u64::MAX {
                mem.write_word(entry.addr, entry.data);
            } else {
                mem.write_word_masked(entry.addr, entry.data, entry.mask);
            }
        }
    }

    /// Discard all buffered state and reset the overflow flag
    /// (finalization after commit, or rollback).
    pub fn clear(&mut self) {
        self.read_set.clear();
        self.write_set.clear();
        self.stats = BufferStats::default();
    }

    /// Iterate over the addresses currently in the read-set (used by the
    /// discrete-event simulator for deterministic conflict detection).
    pub fn read_addresses(&self) -> impl Iterator<Item = Addr> + '_ {
        self.read_set.iter().map(|e| e.addr)
    }

    /// Iterate over the addresses currently in the write-set.
    pub fn write_addresses(&self) -> impl Iterator<Item = Addr> + '_ {
        self.write_set.iter().map(|e| e.addr)
    }

    /// Iterate over the read-set entries (address, first-read data, mask).
    pub fn read_entries(&self) -> impl Iterator<Item = crate::wordmap::WordEntry> + '_ {
        self.read_set.iter()
    }

    /// Iterate over the write-set entries (address, buffered data, mask).
    pub fn write_entries(&self) -> impl Iterator<Item = crate::wordmap::WordEntry> + '_ {
        self.write_set.iter()
    }

    /// Validate the read-set against the shared [`CommitLog`]: the thread
    /// is valid iff **no** commit wrote any *range* covering an address in
    /// its read-set after the read was taken (version comparison, not
    /// value comparison — so the ABA case where a predecessor writes back
    /// the same value is still flagged).
    ///
    /// This is the *real* dependence-violation check of paper §IV-F: the
    /// log records exactly the writes published by logically earlier work,
    /// so `version_of(addr) > read_version` means a logical predecessor
    /// committed a write this thread should have observed.  At grains
    /// coarser than a word the check is conservative: a commit to a
    /// *different* word of the same range also fails validation (false
    /// sharing), but a genuine conflict is never missed.
    ///
    /// With version rings
    /// ([`CommitLogConfig::ring_depth`](crate::commit_log::CommitLogConfig::ring_depth)
    /// `> 1`) the check
    /// goes through [`CommitLog::probe_written`] instead: a
    /// post-snapshot commit whose ring footprint provably missed the
    /// read *word* passes precisely
    /// ([`precise_passes`](BufferStats::precise_passes)) rather than
    /// dooming as false sharing; ring overflow falls back to the
    /// single-version answer.  Missed conflicts stay impossible at
    /// every depth.
    pub fn validate_against(&mut self, log: &CommitLog) -> bool {
        for entry in self.read_set.iter() {
            self.stats.validated_words += 1;
            match log.probe_written(entry.addr, entry.version) {
                RingCheck::Clean => {}
                RingCheck::Precise => self.stats.precise_passes += 1,
                RingCheck::Touched { .. } | RingCheck::Overflow => return false,
            }
        }
        true
    }

    /// Like [`validate_against`](Self::validate_against), additionally
    /// classifying a conflict as *suspected false sharing*: every
    /// conflicting read-set word still holds its first-read value in main
    /// memory, so the commits that advanced the range versions most
    /// likely wrote *neighbouring* words of the shared ranges.
    ///
    /// The classification is an estimate, not a proof — a predecessor
    /// that wrote the same value back (ABA) is indistinguishable from a
    /// neighbour write.  At *word* grain, where false sharing is
    /// structurally impossible, the estimate is suppressed entirely so a
    /// value-identical ABA conflict (a genuine dependence violation) is
    /// never soft-pedalled.  It feeds the per-reason statistics and lets
    /// the adaptive governor back off differently when a coarse grain,
    /// rather than genuine sharing, is causing rollbacks.
    pub fn validate_against_with(&mut self, log: &CommitLog, mem: &dyn MainMemory) -> Validation {
        let mut conflicted = false;
        let mut values_unchanged = true;
        for entry in self.read_set.iter() {
            self.stats.validated_words += 1;
            match log.probe_written(entry.addr, entry.version) {
                RingCheck::Clean => {}
                // The ring proved the post-snapshot commits missed this
                // word: the doom single-version validation would have
                // charged as false sharing never happens.
                RingCheck::Precise => self.stats.precise_passes += 1,
                RingCheck::Touched { .. } | RingCheck::Overflow => {
                    conflicted = true;
                    // Ranges of one word can only conflict on the word
                    // itself; the grain is a live per-region property now,
                    // so the exactness check is per entry, not per log.
                    let grain_can_false_share =
                        log.grain_of(entry.addr) > crate::commit_log::WORD_GRAIN_LOG2;
                    if !grain_can_false_share || mem.read_word(entry.addr) != entry.data {
                        // A changed value (or a word-grain range) proves
                        // true sharing; stop scanning.
                        values_unchanged = false;
                        break;
                    }
                }
            }
        }
        if !conflicted {
            Validation::Valid
        } else {
            Validation::Conflict {
                suspected_false_sharing: values_unchanged,
            }
        }
    }

    /// Value-predict retry, generalized to **time-travel retry**:
    /// re-validate every read whose *range* conflicts under `log` by
    /// comparing its first-read **value** against main memory right now,
    /// revalidating against the version chain actually observed rather
    /// than the current epoch.
    ///
    /// Returns `true` — and re-stamps the conflicting entries — when
    /// every conflicting word still holds its first-read value: the
    /// commits that advanced the range versions published the very
    /// values this thread read (or only touched neighbouring words of a
    /// coarse range), so the execution is equivalent to one that read
    /// *after* those commits and the thread may commit without
    /// re-executing.  This covers both grain-induced false sharing and
    /// the value-identical ABA case, which is serializable for the same
    /// reason (the seed runtime's value validation relied on exactly
    /// this).
    ///
    /// Per conflicting entry, the version-ring probe decides the repair:
    ///
    /// * [`RingCheck::Precise`] — the post-snapshot commits provably
    ///   missed the word: the entry needs no value check and no restamp
    ///   at all (it will keep probing precise).
    /// * [`RingCheck::Touched`] — the entry is restamped to the *newest
    ///   ring version that touched the word*, not the current epoch:
    ///   later unrelated commits to the range stay precisely probeable
    ///   instead of re-dooming the thread (this is the time travel, and
    ///   it is never less conservative than the legacy fresh-snapshot
    ///   restamp because the target is older).
    /// * [`RingCheck::Overflow`] (and any touch at ring depth 1) — the
    ///   legacy behavior: a fresh snapshot sampled *before* the value
    ///   re-read, so a commit racing the retry stamps a higher version
    ///   and a later validation pass flags the entry again.
    ///
    /// On success the thread's **whole read set is re-registered** in
    /// the per-range reader registry: the committer that doomed this
    /// thread consumed its registrations for every range it stamped —
    /// including ranges whose entries are clean here (read after that
    /// commit) — and without the repair a *second* conflicting commit
    /// would miss the thread and leave the doom to join-time validation
    /// only.  (`register_reader` is an idempotent `fetch_or`; this is
    /// the cold doom-repair path.)  On `false` (some value changed: a
    /// genuine dependence violation) nothing is re-stamped.
    pub fn revalidate_by_value(&mut self, log: &CommitLog, mem: &dyn MainMemory) -> bool {
        let mut refreshed: Vec<(Addr, u64)> = Vec::new();
        for entry in self.read_set.iter() {
            match log.probe_written(entry.addr, entry.version) {
                RingCheck::Clean => continue,
                RingCheck::Precise => {
                    self.stats.precise_passes += 1;
                    continue;
                }
                RingCheck::Touched { newest_touch } => {
                    self.stats.validated_words += 1;
                    if mem.read_word(entry.addr) != entry.data {
                        return false;
                    }
                    // Time travel: every ring-known touch of this word is
                    // at most `newest_touch` and the value survived them
                    // all; a racing commit lands above the version the
                    // probe saw and re-flags the entry later.
                    refreshed.push((entry.addr, newest_touch));
                }
                RingCheck::Overflow => {
                    self.stats.validated_words += 1;
                    // Snapshot first, then the value read (the standard
                    // ordering).
                    let fresh = log.snapshot(entry.addr);
                    if mem.read_word(entry.addr) != entry.data {
                        return false;
                    }
                    refreshed.push((entry.addr, fresh));
                }
            }
        }
        if self.reader != 0 {
            // Registry-driven re-read repair (see the doc comment): the
            // dooming committer's take_readers cleared this thread's
            // registrations; restore every one of them before declaring
            // the retry succeeded.
            for entry in self.read_set.iter() {
                log.register_reader(entry.addr, self.reader);
            }
        }
        for (addr, version) in refreshed {
            // Per-region retry telemetry: a conflict the current grain
            // made cheap — the grain controller's "keep this grain"
            // signal.
            log.note_retry(addr);
            self.read_set.refresh_version(addr, version);
        }
        true
    }

    /// Attribute this buffer's *currently conflicting* reads to their
    /// commit-log regions ([`CommitLog::note_conflict`]) — called on the
    /// rollback path so the grain controller sees which regions are
    /// squashing threads, and whether the conflicts look like false
    /// sharing (value unchanged at a coarser-than-word grain).
    pub fn attribute_conflicts(&self, log: &CommitLog, mem: &dyn MainMemory) {
        // Read-set iteration is in *insertion* (temporal) order, so a
        // thread whose reads interleave regions would double-count with
        // adjacent-only dedup; a real set keeps the attribution one per
        // region.  Rollback path only — the allocation is off the hot
        // path.
        let mut seen: std::collections::HashSet<crate::commit_log::RegionId> =
            std::collections::HashSet::new();
        for entry in self.read_set.iter() {
            if !log.written_after(entry.addr, entry.version) {
                continue;
            }
            if !seen.insert(log.region_of(entry.addr)) {
                continue;
            }
            let suspected = log.grain_of(entry.addr) > crate::commit_log::WORD_GRAIN_LOG2
                && mem.read_word(entry.addr) == entry.data;
            log.note_conflict(entry.addr, suspected);
        }
    }

    /// Validate the read-set against an arbitrary memory *view*.
    ///
    /// The view maps a word-aligned address to its current value; a
    /// speculative parent joining its own child uses "parent write-set
    /// overlaid on main memory" as the view, the non-speculative thread
    /// uses main memory directly.
    pub fn validate_view<F: Fn(Addr) -> u64>(&mut self, view: F) -> bool {
        for entry in self.read_set.iter() {
            self.stats.validated_words += 1;
            if view(entry.addr) != entry.data {
                return false;
            }
        }
        true
    }

    /// Absorb a (validated) child buffer into this one: the child's writes
    /// become this thread's writes and the child's read dependences become
    /// this thread's read dependences, so they are re-validated when this
    /// thread itself is eventually joined.
    ///
    /// Used when a *speculative* parent joins its own speculative child —
    /// nothing may reach main memory until the whole subtree is joined by
    /// the non-speculative thread.
    pub fn absorb(&mut self, child: &GlobalBuffer) -> Result<(), BufferError> {
        for entry in child.read_set.iter() {
            // A word this thread has already fully written carries no read
            // dependence for the subtree; and if we already recorded a read
            // for it, the earlier (first) read is the one to validate.
            let fully_written = self
                .write_set
                .get(entry.addr)
                .map(|w| w.mask == u64::MAX)
                .unwrap_or(false);
            if fully_written {
                continue;
            }
            if self.read_set.get(entry.addr).is_some() {
                // Both threads read this word: keep the OLDEST snapshot
                // version, since a commit between the two reads must still
                // flag the subtree when it is eventually validated.
                self.read_set.weaken_version(entry.addr, entry.version);
                continue;
            }
            // Preserve the child's snapshot version: when this (absorbing)
            // thread is itself validated later, the child's reads must be
            // checked against commits made after the *child* read them.
            match self
                .read_set
                .insert_word_versioned(entry.addr, entry.data, entry.version)
            {
                Ok(()) | Err(BufferError::OverflowPending) => {}
                Err(e) => return Err(e),
            }
        }
        for entry in child.write_set.iter() {
            self.stats.committed_words += 1;
            match self.write_set.merge(entry.addr, entry.data, entry.mask) {
                Ok(()) | Err(BufferError::OverflowPending) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commit_log::{CommitLog, CommitLogConfig};
    use crate::memory::GlobalMemory;

    fn setup() -> (GlobalMemory, GlobalBuffer) {
        let mem = GlobalMemory::new(4096);
        let buf = GlobalBuffer::new(BufferConfig::default());
        (mem, buf)
    }

    /// Word-granular log: adjacent words are distinct ranges, as the
    /// word-disjointness assertions below require.
    fn word_log() -> CommitLog {
        CommitLog::with_config(CommitLogConfig::word_grain(), 0)
    }

    #[test]
    fn load_reads_through_to_memory_once() {
        let (mem, mut buf) = setup();
        let p = mem.alloc::<u64>(4);
        mem.set(&p, 0, 77);
        let a = p.addr_of(0);
        assert_eq!(buf.load(&mem, a, 8).unwrap(), 77);
        // Memory changes after first read are not observed again (the
        // read-set caches the first value) — exactly what validation later
        // checks against.
        mem.set(&p, 0, 99);
        assert_eq!(buf.load(&mem, a, 8).unwrap(), 77);
        assert_eq!(buf.stats().memory_loads, 1);
        assert_eq!(buf.stats().loads, 2);
    }

    #[test]
    fn store_then_load_returns_buffered_value_without_touching_memory() {
        let (mem, mut buf) = setup();
        let p = mem.alloc::<u64>(1);
        mem.set(&p, 0, 5);
        let a = p.addr_of(0);
        buf.store(a, 123, 8).unwrap();
        assert_eq!(buf.load(&mem, a, 8).unwrap(), 123);
        // Main memory untouched until commit.
        assert_eq!(mem.get(&p, 0), 5);
        // Fully-written word produces no read-set entry → no false conflict.
        assert_eq!(buf.read_set_len(), 0);
    }

    #[test]
    fn partial_store_overlays_memory_bytes() {
        let (mem, mut buf) = setup();
        let p = mem.alloc::<u64>(1);
        mem.set(&p, 0, 0x1111_2222_3333_4444);
        let a = p.addr_of(0);
        buf.store(a, 0xAAAA, 2).unwrap();
        assert_eq!(buf.load(&mem, a, 8).unwrap(), 0x1111_2222_3333_AAAA);
        assert_eq!(buf.load(&mem, a + 4, 4).unwrap(), 0x1111_2222);
    }

    #[test]
    fn validate_detects_conflicting_write() {
        let (mem, mut buf) = setup();
        let p = mem.alloc::<u64>(2);
        mem.set(&p, 0, 10);
        let _ = buf.load(&mem, p.addr_of(0), 8).unwrap();
        assert!(buf.validate(&mem));
        // A logically earlier thread writes the address we read.
        mem.set(&p, 0, 11);
        assert!(!buf.validate(&mem));
    }

    #[test]
    fn validate_ignores_addresses_only_written() {
        let (mem, mut buf) = setup();
        let p = mem.alloc::<u64>(1);
        buf.store(p.addr_of(0), 3, 8).unwrap();
        mem.set(&p, 0, 100);
        // Write-after-write is not a conflict in this model.
        assert!(buf.validate(&mem));
    }

    #[test]
    fn commit_publishes_only_written_bytes() {
        let (mem, mut buf) = setup();
        let p = mem.alloc::<u64>(2);
        mem.set(&p, 0, 0xFFFF_FFFF_FFFF_FFFF);
        buf.store(p.addr_of(0), 0xAB, 1).unwrap();
        buf.store(p.addr_of(1), 0x1234_5678_9ABC_DEF0, 8).unwrap();
        buf.commit(&mem);
        assert_eq!(mem.get(&p, 0), 0xFFFF_FFFF_FFFF_FFAB);
        assert_eq!(mem.get(&p, 1), 0x1234_5678_9ABC_DEF0);
        assert_eq!(buf.stats().committed_words, 2);
    }

    #[test]
    fn clear_discards_buffered_writes() {
        let (mem, mut buf) = setup();
        let p = mem.alloc::<u64>(1);
        buf.store(p.addr_of(0), 42, 8).unwrap();
        buf.clear();
        buf.commit(&mem);
        assert_eq!(mem.get(&p, 0), 0);
        assert_eq!(buf.write_set_len(), 0);
        assert_eq!(buf.stats(), BufferStats::default());
    }

    #[test]
    fn misaligned_and_bad_sizes_are_rejected() {
        let (mem, mut buf) = setup();
        assert_eq!(buf.load(&mem, 9, 8).unwrap_err(), BufferError::Misaligned);
        assert_eq!(
            buf.load(&mem, 8, 3).unwrap_err(),
            BufferError::UnsupportedSize
        );
        assert_eq!(buf.store(10, 0, 4).unwrap_err(), BufferError::Misaligned);
    }

    #[test]
    fn overflow_is_reported_and_survivable() {
        let mem = GlobalMemory::new(1 << 14);
        let mut buf = GlobalBuffer::new(BufferConfig::tiny());
        let p = mem.alloc::<u64>(64);
        // 16 direct slots: indices 0..15 occupy every slot, 16 and 17 then
        // collide and must land in the overflow area without failing.
        for i in 0..18 {
            buf.store(p.addr_of(i), i as u64, 8).unwrap();
        }
        assert!(buf.overflow_pending());
        assert_eq!(buf.stats().overflow_events, 2);
        // The overflowed data is still readable and committable.
        assert_eq!(buf.load(&mem, p.addr_of(16), 8).unwrap(), 16);
        buf.commit(&mem);
        assert_eq!(mem.get(&p, 17), 17);
    }

    #[test]
    fn false_sharing_classification_follows_the_grain() {
        // At line grain, a value-unchanged conflict is suspected false
        // sharing; at word grain false sharing is structurally
        // impossible, so the same value-unchanged (ABA) conflict must be
        // classified as genuine — Throttle must not soft-pedal it.
        for (config, expect_false_sharing) in [
            (CommitLogConfig::line_grain(), true),
            (CommitLogConfig::word_grain(), false),
        ] {
            let mem = GlobalMemory::new(4096);
            let log = CommitLog::with_config(config, 0);
            let mut buf = GlobalBuffer::new(BufferConfig::default());
            let p = mem.alloc::<u64>(1);
            mem.set(&p, 0, 5);
            let _ = buf.load_logged(&mem, Some(&log), p.addr_of(0), 8).unwrap();
            // Value-identical commit to the very word that was read.
            log.record_word(p.addr_of(0));
            assert_eq!(
                buf.validate_against_with(&log, &mem),
                Validation::Conflict {
                    suspected_false_sharing: expect_false_sharing
                },
                "grain_log2 {}",
                config.grain_log2
            );
        }
        // A genuine neighbour-only write at line grain stays classified
        // as suspected false sharing, and value changes prove sharing.
        let mem = GlobalMemory::new(4096);
        let log = CommitLog::with_config(CommitLogConfig::line_grain(), 0);
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let p = mem.alloc::<u64>(2);
        let _ = buf.load_logged(&mem, Some(&log), p.addr_of(0), 8).unwrap();
        mem.set(&p, 0, 9);
        log.record_word(p.addr_of(1)); // same line, different word
        assert_eq!(
            buf.validate_against_with(&log, &mem),
            Validation::Conflict {
                suspected_false_sharing: false
            },
            "changed value proves true sharing even on a neighbour write"
        );
    }

    #[test]
    fn reader_identity_registers_on_first_touch_only() {
        let mem = GlobalMemory::new(4096);
        let log = word_log();
        let mut buf = GlobalBuffer::for_reader(BufferConfig::default(), 5);
        assert_eq!(buf.reader(), 5);
        let p = mem.alloc::<u64>(2);
        let _ = buf.load_logged(&mem, Some(&log), p.addr_of(0), 8).unwrap();
        assert!(log.registered_readers(p.addr_of(0)).contains(5));
        assert!(!log.registered_readers(p.addr_of(1)).contains(5));
        // A word the thread fully wrote itself carries no registration.
        buf.store(p.addr_of(1), 9, 8).unwrap();
        let _ = buf.load_logged(&mem, Some(&log), p.addr_of(1), 8).unwrap();
        assert!(!log.registered_readers(p.addr_of(1)).contains(5));
    }

    #[test]
    fn value_predict_retry_succeeds_on_unchanged_values_and_restamps() {
        let mem = GlobalMemory::new(4096);
        let log = word_log();
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let p = mem.alloc::<u64>(2);
        mem.set(&p, 0, 5);
        let _ = buf.load_logged(&mem, Some(&log), p.addr_of(0), 8).unwrap();
        // A value-identical (ABA) commit to the read word: version
        // validation flags it, value prediction validates it.
        mem.set(&p, 0, 5);
        log.record_word(p.addr_of(0));
        assert!(!buf.validate_against(&log));
        assert!(buf.revalidate_by_value(&log, &mem));
        // The entry was re-stamped: validation passes until a new commit.
        assert!(buf.validate_against(&log));
        log.record_word(p.addr_of(0));
        assert!(!buf.validate_against(&log), "retry is not a free pass");
    }

    #[test]
    fn value_predict_retry_fails_on_changed_values_without_restamping() {
        let mem = GlobalMemory::new(4096);
        let log = word_log();
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let p = mem.alloc::<u64>(1);
        mem.set(&p, 0, 5);
        let _ = buf.load_logged(&mem, Some(&log), p.addr_of(0), 8).unwrap();
        mem.set(&p, 0, 6);
        log.record_word(p.addr_of(0));
        assert!(!buf.revalidate_by_value(&log, &mem));
        // Nothing was re-stamped: the conflict is still visible.
        assert!(!buf.validate_against(&log));
    }

    #[test]
    fn validate_against_flags_commits_after_the_read() {
        let (mem, mut buf) = setup();
        let log = word_log();
        let p = mem.alloc::<u64>(2);
        mem.set(&p, 0, 10);
        let _ = buf.load_logged(&mem, Some(&log), p.addr_of(0), 8).unwrap();
        assert!(buf.validate_against(&log));
        // A disjoint commit does not conflict.
        log.record_word(p.addr_of(1));
        assert!(buf.validate_against(&log));
        // A commit covering the read address does — even when the value is
        // unchanged (the ABA case value comparison would miss).
        mem.set(&p, 0, 10);
        log.record_word(p.addr_of(0));
        assert!(!buf.validate_against(&log));
    }

    #[test]
    fn validate_against_ignores_commits_before_the_read() {
        let (mem, mut buf) = setup();
        let log = word_log();
        let p = mem.alloc::<u64>(1);
        mem.set(&p, 0, 5);
        log.record_word(p.addr_of(0));
        // Read AFTER the commit: the snapshot version covers it.
        let v = buf.load_logged(&mem, Some(&log), p.addr_of(0), 8).unwrap();
        assert_eq!(v, 5);
        assert!(buf.validate_against(&log));
    }

    #[test]
    fn absorb_preserves_child_read_versions() {
        let (mem, mut parent) = setup();
        let mut child = GlobalBuffer::new(BufferConfig::default());
        let log = word_log();
        let p = mem.alloc::<u64>(2);
        // Child reads before any commit; child also writes a second word.
        let _ = child
            .load_logged(&mem, Some(&log), p.addr_of(0), 8)
            .unwrap();
        child.store(p.addr_of(1), 99, 8).unwrap();
        parent.absorb(&child).unwrap();
        // The absorbed write is visible through the parent's write-set.
        assert_eq!(parent.load(&mem, p.addr_of(1), 8).unwrap(), 99);
        // A commit after the child's read must still flag the parent.
        log.record_word(p.addr_of(0));
        assert!(!parent.validate_against(&log));
    }

    #[test]
    fn absorb_weakens_to_the_childs_older_read_version() {
        // Parent reads X *after* a commit, child read it *before*: the
        // merged read-set must keep the child's older snapshot so that
        // commit still flags the subtree at final validation.
        let (mem, mut parent) = setup();
        let mut child = GlobalBuffer::new(BufferConfig::default());
        let log = word_log();
        let p = mem.alloc::<u64>(1);
        let _ = child
            .load_logged(&mem, Some(&log), p.addr_of(0), 8)
            .unwrap();
        log.record_word(p.addr_of(0));
        let _ = parent
            .load_logged(&mem, Some(&log), p.addr_of(0), 8)
            .unwrap();
        assert!(parent.validate_against(&log), "parent's own read is fresh");
        parent.absorb(&child).unwrap();
        assert!(
            !parent.validate_against(&log),
            "child's stale read must survive the merge"
        );
    }

    /// Line-granular mvcc log: one-version-per-bucket so ring entries
    /// stay per-commit precise (the bucketed default would merge
    /// footprints of nearby versions).
    fn mvcc_line_log() -> CommitLog {
        // Dense capacity covers the whole test arena: rings only back
        // dense slots (the sparse fallback stays single-version).
        CommitLog::with_config(
            CommitLogConfig::line_grain()
                .ring_depth(4)
                .ring_bucket_log2(0),
            4096,
        )
    }

    #[test]
    fn mvcc_validation_passes_precisely_on_neighbour_writes() {
        let mem = GlobalMemory::new(4096);
        let log = mvcc_line_log();
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let p = mem.alloc::<u64>(2);
        let _ = buf.load_logged(&mem, Some(&log), p.addr_of(0), 8).unwrap();
        // A neighbour-word commit advances the line's version; the ring
        // proves the read word was missed, so validation still passes.
        log.record_word(p.addr_of(1));
        assert!(log.written_after(p.addr_of(0), 0), "range version moved");
        assert!(buf.validate_against(&log));
        assert_eq!(buf.stats().precise_passes, 1);
        // Depth-1 (single-version) would have doomed the same snapshot.
        let legacy = CommitLog::with_config(CommitLogConfig::line_grain(), 0);
        let mut legacy_buf = GlobalBuffer::new(BufferConfig::default());
        let _ = legacy_buf
            .load_logged(&mem, Some(&legacy), p.addr_of(0), 8)
            .unwrap();
        legacy.record_word(p.addr_of(1));
        assert!(!legacy_buf.validate_against(&legacy));
        // A commit that does touch the read word still dooms precisely.
        log.record_word(p.addr_of(0));
        assert!(!buf.validate_against(&log));
    }

    #[test]
    fn time_travel_retry_restamps_to_the_observed_touch_version() {
        let mem = GlobalMemory::new(4096);
        let log = mvcc_line_log();
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let p = mem.alloc::<u64>(2);
        mem.set(&p, 0, 5);
        let _ = buf.load_logged(&mem, Some(&log), p.addr_of(0), 8).unwrap();
        // v1: value-identical (ABA) commit to the read word — flagged by
        // the ring, survived by the value check, restamped to v1 (the
        // version actually observed, not the then-current epoch).
        mem.set(&p, 0, 5);
        log.record_word(p.addr_of(0));
        assert!(!buf.validate_against(&log));
        assert!(buf.revalidate_by_value(&log, &mem));
        // v2: a neighbour-word commit after the restamp. Time travel put
        // the entry at v1, and the ring shows v2 missed the word —
        // validation passes precisely instead of re-dooming.
        log.record_word(p.addr_of(1));
        assert!(buf.validate_against(&log));
        // v3: touching the read word again still dooms.
        log.record_word(p.addr_of(0));
        assert!(!buf.validate_against(&log), "retry is not a free pass");
    }

    #[test]
    fn retry_re_registers_the_whole_read_set() {
        let mem = GlobalMemory::new(4096);
        let log = mvcc_line_log();
        let mut buf = GlobalBuffer::for_reader(BufferConfig::default(), 5);
        let p = mem.alloc::<u64>(64); // two distinct lines
        mem.set(&p, 0, 7);
        let _ = buf.load_logged(&mem, Some(&log), p.addr_of(0), 8).unwrap();
        let far = p.addr_of(63);
        let _ = buf.load_logged(&mem, Some(&log), far, 8).unwrap();
        // A committing writer dooms the thread and consumes its
        // registrations for every stamped range — model both ranges.
        let taken = log.take_readers([p.addr_of(0), far]);
        assert!(taken.contains(5));
        mem.set(&p, 0, 7);
        log.record_word(p.addr_of(0));
        assert!(!log.registered_readers(p.addr_of(0)).contains(5));
        assert!(!log.registered_readers(far).contains(5));
        // The in-flight retry must repair the registry for the entire
        // read set — including the far range, whose entry is clean.
        assert!(buf.revalidate_by_value(&log, &mem));
        assert!(log.registered_readers(p.addr_of(0)).contains(5));
        assert!(log.registered_readers(far).contains(5));
    }

    #[test]
    fn ring_overflow_falls_back_to_fresh_snapshot_retry() {
        let mem = GlobalMemory::new(4096);
        // Depth 2 with one version per bucket: three commits evict the
        // snapshot's window and force the conservative path.
        let log = CommitLog::with_config(
            CommitLogConfig::line_grain()
                .ring_depth(2)
                .ring_bucket_log2(0),
            4096,
        );
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let p = mem.alloc::<u64>(2);
        mem.set(&p, 0, 5);
        let _ = buf.load_logged(&mem, Some(&log), p.addr_of(0), 8).unwrap();
        // Three neighbour-only commits: individually precise-passable,
        // but the window has rolled past the snapshot.
        for _ in 0..3 {
            log.record_word(p.addr_of(1));
        }
        assert!(!buf.validate_against(&log), "overflow dooms conservatively");
        assert!(log.stats().ring_overflows > 0);
        // The value is untouched, so the legacy fresh-snapshot retry
        // still rescues the thread.
        assert!(buf.revalidate_by_value(&log, &mem));
        assert!(buf.validate_against(&log));
    }

    #[test]
    fn read_and_write_address_iterators() {
        let (mem, mut buf) = setup();
        let p = mem.alloc::<u64>(4);
        let _ = buf.load(&mem, p.addr_of(1), 8).unwrap();
        buf.store(p.addr_of(2), 9, 8).unwrap();
        let reads: Vec<_> = buf.read_addresses().collect();
        let writes: Vec<_> = buf.write_addresses().collect();
        assert_eq!(reads, vec![p.addr_of(1)]);
        assert_eq!(writes, vec![p.addr_of(2)]);
    }
}
