//! The static-memory, word-granular hash map of MUTLS (paper §IV-G2).
//!
//! The paper avoids dynamically growing hash maps (whose rehashing cost
//! would land on the speculative fast path) by using three statically sized
//! arrays:
//!
//! * `buffer`    — one data word per slot,
//! * `addresses` — the word-aligned address occupying a slot (0 = empty),
//! * `offsets`   — a stack of used slot indices so that validation, commit
//!   and finalization of threads touching little data stay proportional to
//!   the amount of data actually touched, not the capacity,
//!
//! plus a per-byte `mark` array recording which bytes of a buffered word
//! have actually been written (needed for sub-word stores), and a small
//! *temporary overflow buffer* used when two distinct addresses hash to the
//! same slot.  When the overflow buffer is used the thread should stop at
//! the next check point and wait to be joined; when it is full the thread
//! rolls back.

use crate::error::BufferError;
use crate::memory::{Addr, WORD_BYTES};

/// One buffered word: its address, data, per-byte write mask and the
/// commit-log version observed when the word was first buffered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordEntry {
    /// Word-aligned byte address in the global address space.
    pub addr: Addr,
    /// Buffered data for the whole word.
    pub data: u64,
    /// Byte mask: every byte equal to `0xFF` marks a byte actually written
    /// (for the write-set) or read (for the read-set).
    pub mask: u64,
    /// Commit-log snapshot sampled when the entry was first inserted (0
    /// when the access was not versioned): the epoch of the log *shard*
    /// owning the address's range (`CommitLog::snapshot`).  For read-set
    /// entries this is the version join-time dependence validation
    /// compares against the range's current stamp in the
    /// [`CommitLog`](crate::CommitLog).  Versions of the same word are
    /// always same-shard and therefore comparable — which is what lets
    /// [`weaken_version`](WordMap::weaken_version) keep the oldest
    /// snapshot when read sets merge.
    pub version: u64,
}

/// Result of probing the direct-mapped array for an address.
enum Probe {
    /// Slot index is empty.
    Empty(usize),
    /// Slot index holds this very address.
    Found(usize),
    /// Slot index holds a *different* address (hash conflict).
    Conflict,
}

/// Statically sized word-granular hash map with linear overflow area.
#[derive(Debug)]
pub struct WordMap {
    capacity: usize,
    slot_mask: u64,
    data: Vec<u64>,
    marks: Vec<u64>,
    addresses: Vec<Addr>,
    /// Commit-log version stamped at first insertion (read-set snapshot).
    versions: Vec<u64>,
    /// Stack of used slot indices ("offsets" in the paper).
    used: Vec<u32>,
    overflow: Vec<WordEntry>,
    overflow_capacity: usize,
    /// True once the overflow area has been used at least once since the
    /// last clear; the runtime uses this to stall the thread at its next
    /// check point.
    overflow_pending: bool,
}

impl WordMap {
    /// Create a map with `capacity_words` direct-mapped slots (rounded up
    /// to the next power of two) and `overflow_capacity` overflow entries.
    pub fn new(capacity_words: usize, overflow_capacity: usize) -> Self {
        let capacity = capacity_words.max(8).next_power_of_two();
        WordMap {
            capacity,
            slot_mask: (capacity as u64) - 1,
            data: vec![0; capacity],
            marks: vec![0; capacity],
            addresses: vec![0; capacity],
            versions: vec![0; capacity],
            used: Vec::with_capacity(capacity.min(1024)),
            overflow: Vec::with_capacity(overflow_capacity.min(64)),
            overflow_capacity,
            overflow_pending: false,
        }
    }

    /// Number of direct-mapped slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct words currently buffered (direct + overflow).
    pub fn len(&self) -> usize {
        self.used.len() + self.overflow.len()
    }

    /// True when no word is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once a hash conflict has pushed an entry into the overflow
    /// area since the last [`clear`](Self::clear).
    pub fn overflow_pending(&self) -> bool {
        self.overflow_pending
    }

    /// Number of entries currently sitting in the overflow area.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    fn slot_of(&self, addr: Addr) -> usize {
        ((addr / WORD_BYTES) & self.slot_mask) as usize
    }

    fn probe(&self, addr: Addr) -> Probe {
        let slot = self.slot_of(addr);
        let occupant = self.addresses[slot];
        if occupant == 0 {
            Probe::Empty(slot)
        } else if occupant == addr {
            Probe::Found(slot)
        } else {
            Probe::Conflict
        }
    }

    /// Look up the buffered word for `addr` (word aligned).
    pub fn get(&self, addr: Addr) -> Option<WordEntry> {
        debug_assert_eq!(addr % WORD_BYTES, 0);
        match self.probe(addr) {
            Probe::Found(slot) => Some(WordEntry {
                addr,
                data: self.data[slot],
                mask: self.marks[slot],
                version: self.versions[slot],
            }),
            Probe::Empty(_) => self.overflow.iter().find(|e| e.addr == addr).copied(),
            Probe::Conflict => self.overflow.iter().find(|e| e.addr == addr).copied(),
        }
    }

    /// Merge `value` under byte-mask `mask` into the word buffered for
    /// `addr`, inserting the word if it is not present.
    ///
    /// Returns [`BufferError::OverflowPending`] when the insert had to use
    /// the overflow area (the data *is* recorded) and
    /// [`BufferError::OverflowFull`] when it could not be recorded at all.
    pub fn merge(&mut self, addr: Addr, value: u64, mask: u64) -> Result<(), BufferError> {
        self.merge_versioned(addr, value, mask, 0)
    }

    /// Like [`merge`](Self::merge), stamping a freshly inserted word with
    /// `version` (the owning commit-log shard's epoch observed at access
    /// time).  Updating an existing entry keeps the *original* version:
    /// for the read-set, the first read's snapshot is the one dependence
    /// validation must check.
    pub fn merge_versioned(
        &mut self,
        addr: Addr,
        value: u64,
        mask: u64,
        version: u64,
    ) -> Result<(), BufferError> {
        debug_assert_eq!(addr % WORD_BYTES, 0, "unaligned word address {addr:#x}");
        match self.probe(addr) {
            Probe::Found(slot) => {
                self.data[slot] = (self.data[slot] & !mask) | (value & mask);
                self.marks[slot] |= mask;
                Ok(())
            }
            Probe::Empty(slot) => {
                self.addresses[slot] = addr;
                self.data[slot] = value & mask;
                self.marks[slot] = mask;
                self.versions[slot] = version;
                self.used.push(slot as u32);
                Ok(())
            }
            Probe::Conflict => {
                if let Some(e) = self.overflow.iter_mut().find(|e| e.addr == addr) {
                    e.data = (e.data & !mask) | (value & mask);
                    e.mask |= mask;
                    self.overflow_pending = true;
                    return Err(BufferError::OverflowPending);
                }
                if self.overflow.len() >= self.overflow_capacity {
                    return Err(BufferError::OverflowFull);
                }
                self.overflow.push(WordEntry {
                    addr,
                    data: value & mask,
                    mask,
                    version,
                });
                self.overflow_pending = true;
                Err(BufferError::OverflowPending)
            }
        }
    }

    /// Insert a whole word (mask = all bytes).  Convenience for the
    /// read-set, which always records complete words.
    pub fn insert_word(&mut self, addr: Addr, value: u64) -> Result<(), BufferError> {
        self.merge(addr, value, u64::MAX)
    }

    /// Insert a whole word stamped with a commit-log version.
    pub fn insert_word_versioned(
        &mut self,
        addr: Addr,
        value: u64,
        version: u64,
    ) -> Result<(), BufferError> {
        self.merge_versioned(addr, value, u64::MAX, version)
    }

    /// Lower the stored version of `addr` to `version` if the entry exists
    /// and currently carries a newer stamp.  Used when two threads' read
    /// sets are merged: the *oldest* snapshot is the one every later
    /// commit must be checked against.
    pub fn weaken_version(&mut self, addr: Addr, version: u64) {
        if let Probe::Found(slot) = self.probe(addr) {
            if self.versions[slot] > version {
                self.versions[slot] = version;
            }
            return;
        }
        if let Some(e) = self.overflow.iter_mut().find(|e| e.addr == addr) {
            if e.version > version {
                e.version = version;
            }
        }
    }

    /// Raise the stored version of `addr` to `version` if the entry
    /// exists and currently carries an older stamp.  Used by the
    /// value-predict retry path: a read whose conflicting range was
    /// re-validated by value is re-stamped with the snapshot observed at
    /// re-validation time, so only commits *after* the retry can flag it
    /// again.  (The dual of [`weaken_version`](Self::weaken_version).)
    pub fn refresh_version(&mut self, addr: Addr, version: u64) {
        if let Probe::Found(slot) = self.probe(addr) {
            if self.versions[slot] < version {
                self.versions[slot] = version;
            }
            return;
        }
        if let Some(e) = self.overflow.iter_mut().find(|e| e.addr == addr) {
            if e.version < version {
                e.version = version;
            }
        }
    }

    /// Iterate over every buffered word (direct-mapped entries in
    /// insertion order, then overflow entries).
    pub fn iter(&self) -> impl Iterator<Item = WordEntry> + '_ {
        self.used
            .iter()
            .map(move |&slot| WordEntry {
                addr: self.addresses[slot as usize],
                data: self.data[slot as usize],
                mask: self.marks[slot as usize],
                version: self.versions[slot as usize],
            })
            .chain(self.overflow.iter().copied())
    }

    /// Remove every entry, touching only the slots that were used
    /// (finalization cost is proportional to the data accessed).
    pub fn clear(&mut self) {
        for &slot in &self.used {
            self.addresses[slot as usize] = 0;
            self.data[slot as usize] = 0;
            self.marks[slot as usize] = 0;
            self.versions[slot as usize] = 0;
        }
        self.used.clear();
        self.overflow.clear();
        self.overflow_pending = false;
    }
}

/// Build a byte mask covering `size` bytes starting at byte offset
/// `offset_in_word` of a word, e.g. `byte_mask(2, 4) == 0x0000_FFFF_FFFF_0000`
/// on a little-endian layout.
///
/// `size` must be 1, 2, 4 or 8 and the access must not straddle the word.
pub fn byte_mask(offset_in_word: u64, size: u64) -> Result<u64, BufferError> {
    if !matches!(size, 1 | 2 | 4 | 8) {
        return Err(BufferError::UnsupportedSize);
    }
    if !offset_in_word.is_multiple_of(size) || offset_in_word + size > WORD_BYTES {
        return Err(BufferError::Misaligned);
    }
    let base: u64 = if size == 8 {
        u64::MAX
    } else {
        (1u64 << (size * 8)) - 1
    };
    Ok(base << (offset_in_word * 8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_roundtrip() {
        let mut m = WordMap::new(64, 8);
        assert!(m.is_empty());
        m.insert_word(0x100, 42).unwrap();
        m.insert_word(0x108, 7).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(0x100).unwrap().data, 42);
        assert_eq!(m.get(0x108).unwrap().data, 7);
        assert!(m.get(0x110).is_none());
    }

    #[test]
    fn merge_partial_bytes_accumulates_mask() {
        let mut m = WordMap::new(16, 4);
        let lo = byte_mask(0, 4).unwrap();
        let hi = byte_mask(4, 4).unwrap();
        m.merge(0x200, 0x0000_0000_1111_2222, lo).unwrap();
        m.merge(0x200, 0x3333_4444_0000_0000, hi).unwrap();
        let e = m.get(0x200).unwrap();
        assert_eq!(e.data, 0x3333_4444_1111_2222);
        assert_eq!(e.mask, u64::MAX);
    }

    #[test]
    fn hash_conflict_goes_to_overflow() {
        let mut m = WordMap::new(8, 2);
        // capacity rounds to 8 slots; addresses 8 words apart collide.
        let a = 0x80;
        let b = a + 8 * WORD_BYTES;
        m.insert_word(a, 1).unwrap();
        let err = m.insert_word(b, 2).unwrap_err();
        assert_eq!(err, BufferError::OverflowPending);
        assert!(m.overflow_pending());
        assert_eq!(m.get(b).unwrap().data, 2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn overflow_exhaustion_reports_full() {
        let mut m = WordMap::new(8, 1);
        let a = 0x80;
        m.insert_word(a, 1).unwrap();
        assert_eq!(
            m.insert_word(a + 8 * WORD_BYTES, 2).unwrap_err(),
            BufferError::OverflowPending
        );
        assert_eq!(
            m.insert_word(a + 16 * WORD_BYTES, 3).unwrap_err(),
            BufferError::OverflowFull
        );
    }

    #[test]
    fn overflow_entry_can_be_updated_in_place() {
        let mut m = WordMap::new(8, 2);
        let a = 0x80;
        let b = a + 8 * WORD_BYTES;
        m.insert_word(a, 1).unwrap();
        assert_eq!(
            m.insert_word(b, 2).unwrap_err(),
            BufferError::OverflowPending
        );
        assert_eq!(
            m.insert_word(b, 9).unwrap_err(),
            BufferError::OverflowPending
        );
        assert_eq!(m.get(b).unwrap().data, 9);
        assert_eq!(m.overflow_len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = WordMap::new(8, 2);
        m.insert_word(0x80, 1).unwrap();
        let _ = m.insert_word(0x80 + 8 * WORD_BYTES, 2);
        m.clear();
        assert!(m.is_empty());
        assert!(!m.overflow_pending());
        assert!(m.get(0x80).is_none());
        // slot is reusable afterwards
        m.insert_word(0x80, 5).unwrap();
        assert_eq!(m.get(0x80).unwrap().data, 5);
    }

    #[test]
    fn iter_visits_direct_then_overflow() {
        let mut m = WordMap::new(8, 2);
        let a = 0x80;
        let b = a + 8 * WORD_BYTES;
        m.insert_word(a, 1).unwrap();
        let _ = m.insert_word(b, 2);
        let collected: Vec<_> = m.iter().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].addr, a);
        assert_eq!(collected[1].addr, b);
    }

    #[test]
    fn byte_mask_validation() {
        assert_eq!(byte_mask(0, 8).unwrap(), u64::MAX);
        assert_eq!(byte_mask(0, 1).unwrap(), 0xFF);
        assert_eq!(byte_mask(6, 2).unwrap(), 0xFFFF_0000_0000_0000);
        assert_eq!(byte_mask(3, 2).unwrap_err(), BufferError::Misaligned);
        assert_eq!(byte_mask(0, 3).unwrap_err(), BufferError::UnsupportedSize);
        assert_eq!(byte_mask(6, 4).unwrap_err(), BufferError::Misaligned);
    }

    #[test]
    fn first_insertion_version_is_sticky() {
        let mut m = WordMap::new(8, 2);
        m.insert_word_versioned(0x100, 1, 7).unwrap();
        // Later merges to the same word keep the first snapshot version.
        m.merge_versioned(0x100, 2, u64::MAX, 9).unwrap();
        assert_eq!(m.get(0x100).unwrap().version, 7);
        assert_eq!(m.get(0x100).unwrap().data, 2);
        // Unversioned inserts stamp 0.
        m.insert_word(0x108, 3).unwrap();
        assert_eq!(m.get(0x108).unwrap().version, 0);
        // Overflow entries carry versions too.
        let conflicting = 0x100 + 8 * WORD_BYTES;
        let _ = m.insert_word_versioned(conflicting, 4, 11);
        assert_eq!(m.get(conflicting).unwrap().version, 11);
    }

    #[test]
    fn weaken_version_keeps_the_oldest_snapshot() {
        let mut m = WordMap::new(8, 2);
        m.insert_word_versioned(0x100, 1, 9).unwrap();
        m.weaken_version(0x100, 4);
        assert_eq!(m.get(0x100).unwrap().version, 4);
        // Weakening never raises a version.
        m.weaken_version(0x100, 7);
        assert_eq!(m.get(0x100).unwrap().version, 4);
        // Missing entries are a no-op; overflow entries are reachable.
        m.weaken_version(0x900, 1);
        let conflicting = 0x100 + 8 * WORD_BYTES;
        let _ = m.insert_word_versioned(conflicting, 2, 9);
        m.weaken_version(conflicting, 3);
        assert_eq!(m.get(conflicting).unwrap().version, 3);
    }

    #[test]
    fn refresh_version_only_raises() {
        let mut m = WordMap::new(8, 2);
        m.insert_word_versioned(0x100, 1, 4).unwrap();
        m.refresh_version(0x100, 9);
        assert_eq!(m.get(0x100).unwrap().version, 9);
        // Refreshing never lowers a version.
        m.refresh_version(0x100, 2);
        assert_eq!(m.get(0x100).unwrap().version, 9);
        // Missing entries are a no-op; overflow entries are reachable.
        m.refresh_version(0x900, 11);
        let conflicting = 0x100 + 8 * WORD_BYTES;
        let _ = m.insert_word_versioned(conflicting, 2, 3);
        m.refresh_version(conflicting, 6);
        assert_eq!(m.get(conflicting).unwrap().version, 6);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let m = WordMap::new(100, 4);
        assert_eq!(m.capacity(), 128);
        let m2 = WordMap::new(1, 4);
        assert_eq!(m2.capacity(), 8);
    }
}
