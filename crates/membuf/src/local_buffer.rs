//! Local (register and stack) variable buffering (paper §IV-G3).
//!
//! Registers cannot be used to transfer data between threads, so MUTLS
//! assigns every live local variable an *offset* at compile time and copies
//! values through the [`LocalBuffer`] at speculation and synchronization
//! points:
//!
//! * [`RegisterBuffer`] — a statically sized array of tagged word slots;
//!   `MUTLS_set_regvar_*` / `MUTLS_get_regvar_*` read and write it by
//!   offset.  If the assigned offset exceeds the array size, speculation
//!   fails ([`crate::BufferError::LocalBufferFull`]).
//! * Stack buffering — per-frame records of stack variables (offset,
//!   address, data) copied at fork/join.
//! * Frame tracking for **stack frame reconstruction** (paper §IV-H):
//!   `MUTLS_enter_point` pushes a frame as the speculative thread descends
//!   into a call, `MUTLS_return_point` pops it, and at join the parent
//!   replays the recorded call chain, restoring frame data as it descends.
//! * The **pointer mapping** mechanism: stack pointers committed from a
//!   speculative thread are remapped to the corresponding non-speculative
//!   addresses; values that are neither global nor mappable barrier the
//!   thread (see `MUTLS_ptr_int_cast` handling in the runtime).

use crate::error::BufferError;
use crate::memory::Addr;

/// Tagged value held in a register slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegisterValue {
    /// Any integer (or boolean) register value.
    Int(u64),
    /// A floating point register value.
    Float(f64),
    /// A pointer into the global or speculative stack address space.
    Ptr(Addr),
}

impl RegisterValue {
    /// Raw word representation, regardless of tag.
    pub fn raw(&self) -> u64 {
        match *self {
            RegisterValue::Int(v) => v,
            RegisterValue::Float(f) => f.to_bits(),
            RegisterValue::Ptr(a) => a,
        }
    }
}

/// Configuration of a thread's local buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalBufferConfig {
    /// Register slots per frame ("static array" size in the paper).
    pub register_slots: usize,
    /// Maximum stack-variable records per frame.
    pub stack_slots: usize,
    /// Maximum call-chain depth a speculative thread may descend into.
    pub max_frames: usize,
}

impl Default for LocalBufferConfig {
    fn default() -> Self {
        LocalBufferConfig {
            register_slots: 64,
            stack_slots: 64,
            max_frames: 128,
        }
    }
}

/// A stack-variable record: the variable's assigned offset, its address in
/// the owning thread's stack space and its copied data.
#[derive(Debug, Clone, PartialEq)]
pub struct StackVarRecord {
    /// Offset assigned by the speculator pass.
    pub offset: usize,
    /// Address of the variable in the owning thread's stack space.
    pub addr: Addr,
    /// Copied contents, one word per element.
    pub data: Vec<u64>,
}

/// Register slots of one frame.
#[derive(Debug, Clone)]
pub struct RegisterBuffer {
    slots: Vec<Option<RegisterValue>>,
}

impl RegisterBuffer {
    fn new(slots: usize) -> Self {
        RegisterBuffer {
            slots: vec![None; slots],
        }
    }

    /// Store `value` at `offset`.
    pub fn set(&mut self, offset: usize, value: RegisterValue) -> Result<(), BufferError> {
        match self.slots.get_mut(offset) {
            Some(s) => {
                *s = Some(value);
                Ok(())
            }
            None => Err(BufferError::LocalBufferFull),
        }
    }

    /// Fetch the value stored at `offset`, if any.
    pub fn get(&self, offset: usize) -> Option<RegisterValue> {
        self.slots.get(offset).copied().flatten()
    }

    /// Number of occupied slots.
    pub fn occupied(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterate over the occupied slots as `(offset, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, RegisterValue)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|v| (i, v)))
    }
}

/// One stack frame recorded by the speculative thread as it descends into
/// nested calls.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Identifier of the function this frame belongs to.
    pub function: u32,
    /// Synchronization counter of the call site, used by the parent to jump
    /// to the correct block when reconstructing the frame.
    pub sync_counter: u32,
    /// Register slots of this frame.
    pub registers: RegisterBuffer,
    /// Stack variables copied for this frame.
    pub stack_vars: Vec<StackVarRecord>,
}

/// Per-thread local buffer: frame stack, pointer map and stack address
/// range.
#[derive(Debug)]
pub struct LocalBuffer {
    config: LocalBufferConfig,
    frames: Vec<Frame>,
    /// Mapping from speculative-stack addresses to the corresponding
    /// non-speculative addresses, built during `set/get_stackvar` calls.
    ptr_map: Vec<(Addr, Addr, u64)>,
    /// Registered stack address range of the owning thread.
    stack_range: Option<(Addr, Addr)>,
}

impl LocalBuffer {
    /// Create an empty local buffer with one bottom frame.
    pub fn new(config: LocalBufferConfig) -> Self {
        let mut lb = LocalBuffer {
            config,
            frames: Vec::new(),
            ptr_map: Vec::new(),
            stack_range: None,
        };
        lb.frames.push(Frame {
            function: 0,
            sync_counter: 0,
            registers: RegisterBuffer::new(config.register_slots),
            stack_vars: Vec::new(),
        });
        lb
    }

    /// Register the owning thread's stack address range (between its base
    /// and current stack pointers).
    pub fn register_stack_space(&mut self, base: Addr, top: Addr) {
        self.stack_range = Some((base.min(top), base.max(top)));
    }

    /// True if `addr` falls inside the registered stack range.
    pub fn in_stack_space(&self, addr: Addr) -> bool {
        match self.stack_range {
            Some((lo, hi)) => addr >= lo && addr < hi,
            None => false,
        }
    }

    /// Current call-chain depth (≥ 1; the bottom frame is always present).
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Enter a nested function call: push a frame (paper: `MUTLS_enter_point`).
    pub fn push_frame(&mut self, function: u32, sync_counter: u32) -> Result<(), BufferError> {
        if self.frames.len() >= self.config.max_frames {
            return Err(BufferError::LocalBufferFull);
        }
        self.frames.push(Frame {
            function,
            sync_counter,
            registers: RegisterBuffer::new(self.config.register_slots),
            stack_vars: Vec::new(),
        });
        Ok(())
    }

    /// Return from a nested call: pop a frame (paper: `MUTLS_return_point`).
    ///
    /// Returns `false` when the thread is at its entry frame, in which case
    /// the runtime must terminate speculation instead of returning.
    pub fn pop_frame(&mut self) -> bool {
        if self.frames.len() > 1 {
            self.frames.pop();
            true
        } else {
            false
        }
    }

    /// Access the current (innermost) frame.
    pub fn current_frame(&self) -> &Frame {
        self.frames.last().expect("bottom frame always present")
    }

    fn current_frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("bottom frame always present")
    }

    /// Access the recorded frame chain from outermost to innermost
    /// (used by stack-frame reconstruction at join time).
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Store a register variable of the current frame (`MUTLS_set_regvar_*`).
    pub fn set_regvar(&mut self, offset: usize, value: RegisterValue) -> Result<(), BufferError> {
        self.current_frame_mut().registers.set(offset, value)
    }

    /// Fetch a register variable of the current frame (`MUTLS_get_regvar_*`).
    pub fn get_regvar(&self, offset: usize) -> Option<RegisterValue> {
        self.current_frame().registers.get(offset)
    }

    /// Copy a stack variable into the buffer (`MUTLS_set_stackvar_*`),
    /// recording its address so pointers into it can later be mapped.
    pub fn set_stackvar(
        &mut self,
        offset: usize,
        addr: Addr,
        data: Vec<u64>,
    ) -> Result<(), BufferError> {
        let limit = self.config.stack_slots;
        let frame = self.current_frame_mut();
        if let Some(existing) = frame.stack_vars.iter_mut().find(|r| r.offset == offset) {
            existing.addr = addr;
            existing.data = data;
        } else {
            if frame.stack_vars.len() >= limit {
                return Err(BufferError::LocalBufferFull);
            }
            frame.stack_vars.push(StackVarRecord { offset, addr, data });
        }
        Ok(())
    }

    /// Fetch a stack variable of the current frame (`MUTLS_get_stackvar_*`).
    pub fn get_stackvar(&self, offset: usize) -> Option<&StackVarRecord> {
        self.current_frame()
            .stack_vars
            .iter()
            .find(|r| r.offset == offset)
    }

    /// Record that the speculative-stack variable at `spec_addr` (spanning
    /// `len` bytes) corresponds to the non-speculative variable at
    /// `nonspec_addr`; used to translate committed stack pointers.
    pub fn record_ptr_mapping(&mut self, spec_addr: Addr, nonspec_addr: Addr, len: u64) {
        self.ptr_map.push((spec_addr, nonspec_addr, len));
    }

    /// Translate a pointer value produced by the speculative thread.
    ///
    /// * Pointers outside the speculative stack range are returned
    ///   unchanged (they refer to shared global data).
    /// * Pointers inside the speculative stack range are mapped to the
    ///   corresponding non-speculative variable when a mapping exists.
    /// * Unmappable speculative-stack pointers return `None`; the runtime
    ///   must roll the thread back (the pointer would dangle after commit).
    pub fn map_pointer(&self, ptr: Addr) -> Option<Addr> {
        if !self.in_stack_space(ptr) {
            return Some(ptr);
        }
        for &(spec, nonspec, len) in &self.ptr_map {
            if ptr >= spec && ptr < spec + len {
                return Some(nonspec + (ptr - spec));
            }
        }
        None
    }

    /// Drop all frames except a fresh bottom frame and clear mappings.
    pub fn clear(&mut self) {
        let slots = self.config.register_slots;
        self.frames.clear();
        self.frames.push(Frame {
            function: 0,
            sync_counter: 0,
            registers: RegisterBuffer::new(slots),
            stack_vars: Vec::new(),
        });
        self.ptr_map.clear();
        self.stack_range = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lb() -> LocalBuffer {
        LocalBuffer::new(LocalBufferConfig {
            register_slots: 4,
            stack_slots: 2,
            max_frames: 3,
        })
    }

    #[test]
    fn regvar_roundtrip_and_overflow() {
        let mut b = lb();
        b.set_regvar(0, RegisterValue::Int(7)).unwrap();
        b.set_regvar(3, RegisterValue::Float(2.5)).unwrap();
        assert_eq!(b.get_regvar(0), Some(RegisterValue::Int(7)));
        assert_eq!(b.get_regvar(3), Some(RegisterValue::Float(2.5)));
        assert_eq!(b.get_regvar(1), None);
        assert_eq!(
            b.set_regvar(4, RegisterValue::Int(1)).unwrap_err(),
            BufferError::LocalBufferFull
        );
    }

    #[test]
    fn frames_isolate_registers() {
        let mut b = lb();
        b.set_regvar(0, RegisterValue::Int(1)).unwrap();
        b.push_frame(9, 2).unwrap();
        assert_eq!(b.get_regvar(0), None);
        b.set_regvar(0, RegisterValue::Int(2)).unwrap();
        assert!(b.pop_frame());
        assert_eq!(b.get_regvar(0), Some(RegisterValue::Int(1)));
    }

    #[test]
    fn bottom_frame_cannot_be_popped() {
        let mut b = lb();
        assert!(!b.pop_frame());
        assert_eq!(b.frame_count(), 1);
    }

    #[test]
    fn frame_depth_is_bounded() {
        let mut b = lb();
        b.push_frame(1, 1).unwrap();
        b.push_frame(2, 2).unwrap();
        assert_eq!(
            b.push_frame(3, 3).unwrap_err(),
            BufferError::LocalBufferFull
        );
        assert_eq!(b.frame_count(), 3);
    }

    #[test]
    fn frame_chain_records_call_sites() {
        let mut b = lb();
        b.push_frame(7, 4).unwrap();
        let frames = b.frames();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].function, 7);
        assert_eq!(frames[1].sync_counter, 4);
    }

    #[test]
    fn stackvar_roundtrip_update_and_overflow() {
        let mut b = lb();
        b.set_stackvar(0, 0x100, vec![1, 2]).unwrap();
        b.set_stackvar(1, 0x200, vec![3]).unwrap();
        assert_eq!(b.get_stackvar(0).unwrap().data, vec![1, 2]);
        // Updating an existing offset does not consume a new slot.
        b.set_stackvar(0, 0x100, vec![9]).unwrap();
        assert_eq!(b.get_stackvar(0).unwrap().data, vec![9]);
        assert_eq!(
            b.set_stackvar(2, 0x300, vec![5]).unwrap_err(),
            BufferError::LocalBufferFull
        );
    }

    #[test]
    fn pointer_mapping_translates_speculative_stack_pointers() {
        let mut b = lb();
        b.register_stack_space(0x8000, 0x9000);
        b.record_ptr_mapping(0x8100, 0x4100, 0x40);
        // Global pointer: unchanged.
        assert_eq!(b.map_pointer(0x1234), Some(0x1234));
        // Mapped speculative-stack pointer: translated with offset.
        assert_eq!(b.map_pointer(0x8110), Some(0x4110));
        // Unmapped speculative-stack pointer: rollback required.
        assert_eq!(b.map_pointer(0x8F00), None);
    }

    #[test]
    fn stack_space_membership() {
        let mut b = lb();
        assert!(!b.in_stack_space(0x8000));
        b.register_stack_space(0x9000, 0x8000); // order-insensitive
        assert!(b.in_stack_space(0x8000));
        assert!(b.in_stack_space(0x8FFF));
        assert!(!b.in_stack_space(0x9000));
    }

    #[test]
    fn clear_resets_to_single_frame() {
        let mut b = lb();
        b.push_frame(1, 1).unwrap();
        b.set_regvar(0, RegisterValue::Int(5)).unwrap();
        b.register_stack_space(0, 100);
        b.clear();
        assert_eq!(b.frame_count(), 1);
        assert_eq!(b.get_regvar(0), None);
        assert!(!b.in_stack_space(10));
    }

    #[test]
    fn register_value_raw_encoding() {
        assert_eq!(RegisterValue::Int(5).raw(), 5);
        assert_eq!(RegisterValue::Ptr(0x10).raw(), 0x10);
        assert_eq!(RegisterValue::Float(1.5).raw(), 1.5f64.to_bits());
    }
}
