//! The shared commit log: the versioned view of main memory that makes
//! cross-thread conflict detection *real* instead of injected.
//!
//! Every write that reaches main memory — a direct store by the
//! non-speculative thread or a committed speculative write-set — is
//! recorded here as one *commit batch*.  A speculative read stamps its
//! read-set entry with the version snapshot observed at read time;
//! join-time validation then asks, per read entry, whether any logically
//! earlier work committed a write covering that address *after* the read
//! ([`CommitLog::written_after`]).  This detects exactly the
//! read-before-predecessor-write dependences MUTLS read-set validation is
//! specified to catch (paper §IV-F), including the value-ABA case a pure
//! value comparison would miss.
//!
//! ## Range granularity
//!
//! Versions are stamped per *range* of [`CommitLogConfig::grain_log2`]
//! bytes (default: one 64-byte cache line, tunable down to a word or up
//! to a page), not per word.  Coarsening the grain bounds log growth on
//! long regions — a commit batch stamps one version per *range* touched,
//! not one per word — at the cost of **false sharing**: a commit to any
//! word of a range dooms a reader of any other word of the same range.
//!
//! The guarantee is one-sided by design:
//!
//! * **False sharing is allowed.**  A range-grain conflict may be
//!   spurious (different words, same range).  The reader rolls back and
//!   re-executes; the result is still correct, merely slower.
//! * **Missed conflicts are impossible.**  Every word maps into exactly
//!   one range, and a write to the word always advances that range's
//!   version past every snapshot taken before the commit.  A genuine
//!   dependence violation is therefore always flagged, at every grain.
//!
//! ## Sharding
//!
//! The version table is split across [`CommitLogConfig::shards`]
//! independent shards, each with its own epoch counter, commit lock,
//! dense version array and sparse fallback map.  A range maps to shard
//! `range_id & (shards - 1)` — consecutive ranges interleave across
//! shards, so concurrent committers touching different ranges rarely
//! contend on the same commit lock, which is what bounds commit
//! throughput on >64-CPU hosts (the single global lock of the previous
//! design serialized *all* committers).
//!
//! Per-range versions live in a per-shard *dense* array covering the
//! main-memory arena (one version word per range, lock-free stamping and
//! lookup), sized via [`CommitLog::with_dense_bytes`]; the capacity is
//! rounded **up** to whole ranges so a trailing partial word or range is
//! still dense.  Ranges beyond the dense window fall back to a per-shard
//! map, so the log also works standalone with arbitrary addresses.
//!
//! ## Memory-ordering protocol (per shard)
//!
//! Soundness under concurrency relies on the order of operations, applied
//! independently per shard:
//!
//! * **Committer** (always executing logically earlier work): write the
//!   data words to main memory *first*, then call [`CommitLog::record`],
//!   which — under the shard's commit lock — stamps every range of the
//!   batch that maps to the shard with the shard's next version and only
//!   *then* publishes the new shard epoch (release).
//! * **Reader** (a speculative thread): sample
//!   [`CommitLog::snapshot`]`(addr)` — the epoch of the shard owning the
//!   address's range — with acquire *before* loading the word from main
//!   memory.
//!
//! If the reader's sampled shard epoch is at least the committer's
//! version, the acquire/release pair guarantees both the committed data
//! *and its version stamps* were visible to the read — no conflict and no
//! stale `version_of`.  If it is smaller, the read raced the commit and
//! validation flags it; at worst this is a conservative false positive
//! (the thread re-executes), never a missed conflict.  (Stamping before
//! the epoch publish matters: were the epoch bumped first, a reader could
//! stamp the *new* epoch while `version_of` still returned the old
//! version, letting a stale read validate.)
//!
//! Shard epochs advance independently, so versions are only comparable
//! *within* a shard.  That is safe because an address always maps to the
//! same range and hence the same shard: a read snapshot and the commits
//! that could invalidate it live on the same counter.  The global
//! [`CommitLog::epoch`] (the max over shards) is a monotone diagnostic
//! bound — it must **not** be used as a read snapshot, because a shard
//! lagging the max would make its next commit version look old.
//! Buffer-merge paths (`WordMap::weaken_version`, `GlobalBuffer::absorb`)
//! compare two snapshots *of the same word*, which is always same-shard
//! and therefore well-defined.
//!
//! ## Reader registry
//!
//! Alongside each range's version the log keeps a *reader registry*: a
//! bitmask of the thread ids (ranks `1..=`[`MAX_TRACKED_READERS`]) whose
//! read sets currently cover the range.  A committing writer can
//! [`take_readers`](CommitLog::take_readers) of the ranges it just
//! stamped and doom exactly those threads (*targeted dooming*) instead of
//! squashing every logical successor.  Ranks beyond the tracked window
//! collapse into a sticky overflow marker, which forces the caller back
//! to the conservative cascade.
//!
//! Registration stays **off the commit lock**: a reader ORs its bit into
//! the range's mask with a single atomic RMW and then (re-)reads the
//! shard epoch — a seqlock-style double-checked read, since a snapshot
//! sampled *before* the registration could let a racing committer both
//! miss the bit and stay below the snapshot.  With the registration
//! sequenced first (all four operations `SeqCst`), a committer whose
//! [`take_readers`](CommitLog::take_readers) misses the bit must have
//! published its epoch before the reader's snapshot, so the reader's
//! snapshot covers the commit and no conflict existed.  Hence:
//!
//! * **Missed reader ⇒ impossible** *to go uncorrected*: either the
//!   committer enumerates the reader (eager doom), or the reader's
//!   snapshot already covers the commit (no conflict) — and join-time
//!   version validation remains the oracle regardless, so eager dooming
//!   is purely an accelerator and can never mask a genuine conflict.
//! * **Stale reader ⇒ spurious doom only**: a bit left behind by a
//!   thread that already finished dooms whatever now runs on that rank;
//!   the doomed thread rolls back and re-executes — slower, never wrong.
//!   Staleness is bounded by clearing masks on enumeration and by the
//!   runtime unregistering a thread's reads when it is joined.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

use crate::memory::Addr;

/// Monotone version assigned to a commit batch within a shard
/// (0 = "never written").
pub type CommitVersion = u64;

/// Identifier of one version-tracking range: `addr >> grain_log2`.
pub type RangeId = u64;

/// `grain_log2` of word-granular tracking (8-byte ranges): the exact,
/// false-sharing-free grain of the original design.
pub const WORD_GRAIN_LOG2: u32 = 3;

/// `grain_log2` of cache-line-granular tracking (64-byte ranges), the
/// default.
pub const LINE_GRAIN_LOG2: u32 = 6;

/// `grain_log2` of page-granular tracking (4096-byte ranges) — the
/// BOP-style coarse end of the spectrum.
pub const PAGE_GRAIN_LOG2: u32 = 12;

/// Log2 of the commit-lock timing sample rate: one batch in
/// `2^LOCK_SAMPLE_LOG2` is wall-clock timed and its lock-hold duration
/// scaled up into [`CommitLogStats::lock_ns`].
pub const LOCK_SAMPLE_LOG2: u32 = 3;

/// Highest thread rank the reader registry tracks individually; ranks
/// beyond it collapse into the sticky overflow marker of a [`ReaderSet`]
/// (the caller must then fall back to the conservative squash cascade).
pub const MAX_TRACKED_READERS: usize = 63;

/// Registry bit marking "a reader beyond [`MAX_TRACKED_READERS`] touched
/// this range": its identity is unknown, so enumeration is incomplete.
const READER_OVERFLOW_BIT: u64 = 1 << 63;

/// Registry bit of thread rank `rank` (0 = the non-speculative thread,
/// which never registers: it reads coherent main memory directly).
fn reader_bit(rank: usize) -> u64 {
    match rank {
        0 => 0,
        r if r <= MAX_TRACKED_READERS => 1 << (r - 1),
        _ => READER_OVERFLOW_BIT,
    }
}

/// The set of reader ranks enumerated from the registry for a batch of
/// ranges (see [`CommitLog::take_readers`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReaderSet {
    bits: u64,
}

impl ReaderSet {
    /// True when an untracked (rank > [`MAX_TRACKED_READERS`]) reader
    /// touched one of the ranges: the enumeration is incomplete and the
    /// caller must fall back to the cascade.
    pub fn overflowed(&self) -> bool {
        self.bits & READER_OVERFLOW_BIT != 0
    }

    /// True when no reader (tracked or untracked) is registered.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Number of individually tracked reader ranks in the set.
    pub fn len(&self) -> usize {
        (self.bits & !READER_OVERFLOW_BIT).count_ones() as usize
    }

    /// Whether `rank` is in the set.
    pub fn contains(&self, rank: usize) -> bool {
        let bit = reader_bit(rank);
        bit != READER_OVERFLOW_BIT && bit != 0 && self.bits & bit != 0
    }

    /// The tracked reader ranks, ascending.
    pub fn ranks(&self) -> impl Iterator<Item = usize> + '_ {
        let mut bits = self.bits & !READER_OVERFLOW_BIT;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let tz = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(tz + 1)
        })
    }
}

/// Granularity and sharding of the commit log's version table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitLogConfig {
    /// Log2 of the range size in bytes; clamped to at least
    /// [`WORD_GRAIN_LOG2`] (a range can never be smaller than a word).
    pub grain_log2: u32,
    /// Number of independent shards; rounded up to a power of two, at
    /// least 1.
    pub shards: usize,
}

impl Default for CommitLogConfig {
    fn default() -> Self {
        CommitLogConfig {
            grain_log2: LINE_GRAIN_LOG2,
            shards: 8,
        }
    }
}

impl CommitLogConfig {
    /// Word-granular tracking (no false sharing) with the default shard
    /// count.
    pub fn word_grain() -> Self {
        CommitLogConfig {
            grain_log2: WORD_GRAIN_LOG2,
            ..Default::default()
        }
    }

    /// Cache-line-granular tracking (the default).
    pub fn line_grain() -> Self {
        Self::default()
    }

    /// Page-granular tracking.
    pub fn page_grain() -> Self {
        CommitLogConfig {
            grain_log2: PAGE_GRAIN_LOG2,
            ..Default::default()
        }
    }

    /// Set the range size as a log2 of bytes (builder style).
    pub fn grain_log2(mut self, grain_log2: u32) -> Self {
        self.grain_log2 = grain_log2;
        self
    }

    /// Set the shard count (builder style).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Range size in bytes.
    pub fn grain_bytes(&self) -> u64 {
        1u64 << self.grain_log2.max(WORD_GRAIN_LOG2)
    }

    /// The config with degenerate values clamped: grain at least a word,
    /// shard count a nonzero power of two.  [`CommitLog::with_config`]
    /// applies this automatically; other consumers of the raw pub fields
    /// (e.g. the simulator) should apply it too so one set of rules
    /// governs every layer.
    pub fn normalized(self) -> Self {
        CommitLogConfig {
            grain_log2: self.grain_log2.max(WORD_GRAIN_LOG2),
            shards: self.shards.max(1).next_power_of_two(),
        }
    }
}

/// Aggregate commit-log activity counters, for throughput reporting
/// (see the harness `grain` sweep).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct CommitLogStats {
    /// Commit batches recorded (non-empty `record` calls).
    pub commits: u64,
    /// Range stamps *written* across all batches, cumulatively — the
    /// actual log traffic; coarser grains stamp fewer ranges per batch.
    /// (Distinct from [`CommitLog::stamped_ranges`], which counts ranges
    /// *currently* carrying a stamp.)
    pub stamp_writes: u64,
    /// Estimated wall-clock nanoseconds of commit serialization —
    /// *waiting for plus holding* shard commit locks (sampled: one batch
    /// in `2^LOCK_SAMPLE_LOG2` is timed, scaled up).  Queueing is
    /// included deliberately: lock contention is exactly what sharding
    /// relieves, so the 1-vs-N-shard comparison needs it.  On
    /// coarse-resolution clocks short sections may register as zero.
    pub lock_ns: u64,
    /// Configured range size (log2 bytes), echoed for reports.
    pub grain_log2: u32,
    /// Configured shard count, echoed for reports.
    pub shards: usize,
}

/// One independent slice of the version table.
#[derive(Debug)]
struct Shard {
    /// Version of this shard's most recent *published* commit batch.
    epoch: AtomicU64,
    /// Serializes committers touching this shard, so stamps always
    /// precede the epoch publish.
    commit_lock: Mutex<()>,
    /// Dense per-range versions for this shard's slice of the arena:
    /// range `r` (with `r & mask == shard index`) lives at local index
    /// `r >> shard_bits`.
    dense: Vec<AtomicU64>,
    /// Sparse fallback for ranges beyond the dense window.
    sparse: RwLock<HashMap<RangeId, CommitVersion>>,
    /// Dense per-range reader bitmasks (same indexing as `dense`);
    /// registration/enumeration are lock-free atomic RMWs.
    readers_dense: Vec<AtomicU64>,
    /// Sparse reader-bitmask fallback for ranges beyond the dense window.
    readers_sparse: RwLock<HashMap<RangeId, u64>>,
}

impl Shard {
    fn new(dense_ranges: usize) -> Self {
        let mut dense = Vec::with_capacity(dense_ranges);
        dense.resize_with(dense_ranges, || AtomicU64::new(0));
        let mut readers_dense = Vec::with_capacity(dense_ranges);
        readers_dense.resize_with(dense_ranges, || AtomicU64::new(0));
        Shard {
            epoch: AtomicU64::new(0),
            commit_lock: Mutex::new(()),
            dense,
            sparse: RwLock::new(HashMap::new()),
            readers_dense,
            readers_sparse: RwLock::new(HashMap::new()),
        }
    }
}

/// Append-only versioned record of every write published to main memory,
/// range-granular and sharded (see the module docs for the protocol).
#[derive(Debug)]
pub struct CommitLog {
    config: CommitLogConfig,
    /// `shards.len() - 1`; shard of a range is `range & shard_mask`.
    shard_mask: u64,
    /// `log2(shards.len())`; local dense index is `range >> shard_bits`.
    shard_bits: u32,
    shards: Vec<Shard>,
    /// Commit batches recorded (monotone; survives shard distribution).
    commits: AtomicU64,
    /// Range stamps written across all batches.
    stamped: AtomicU64,
    /// Estimated nanoseconds of commit serialization (lock wait + hold):
    /// every `2^LOCK_SAMPLE_LOG2`-th batch is timed (two clock reads)
    /// and its duration scaled up, so the commit-throughput reporting
    /// the `grain` sweep is built on costs the hot publish path almost
    /// nothing; all counters use relaxed atomics.
    lock_ns: AtomicU64,
    /// Monotone batch counter driving the lock-time sampling.
    lock_samples: AtomicU64,
}

impl Default for CommitLog {
    fn default() -> Self {
        Self::new()
    }
}

impl CommitLog {
    /// Create an empty log with the default config and no dense window
    /// (every range goes through the sharded sparse maps — fine for tests
    /// and small address sets).
    pub fn new() -> Self {
        Self::with_config(CommitLogConfig::default(), 0)
    }

    /// Create a log with the default grain/shard config whose dense fast
    /// path covers addresses `[0, capacity_bytes)`.
    pub fn with_dense_bytes(capacity_bytes: u64) -> Self {
        Self::with_config(CommitLogConfig::default(), capacity_bytes)
    }

    /// Create a log with an explicit grain/shard config whose dense fast
    /// path covers `[0, capacity_bytes)` — size it to the main-memory
    /// arena so the whole program's traffic stamps lock-free with bounded
    /// memory (one version word per range).  The capacity is rounded *up*
    /// to whole ranges, so a trailing partial word or range is still
    /// dense.
    pub fn with_config(config: CommitLogConfig, capacity_bytes: u64) -> Self {
        let config = config.normalized();
        let shard_count = config.shards;
        let dense_ranges = capacity_bytes.div_ceil(config.grain_bytes());
        // Every shard covers ranges up to the next multiple of the shard
        // count, so the last partial stripe is dense everywhere.
        let per_shard = dense_ranges.div_ceil(shard_count as u64) as usize;
        let shards = (0..shard_count)
            .map(|_| Shard::new(if dense_ranges == 0 { 0 } else { per_shard }))
            .collect();
        CommitLog {
            config,
            shard_mask: (shard_count as u64) - 1,
            shard_bits: shard_count.trailing_zeros(),
            shards,
            commits: AtomicU64::new(0),
            stamped: AtomicU64::new(0),
            lock_ns: AtomicU64::new(0),
            lock_samples: AtomicU64::new(0),
        }
    }

    /// The grain/shard configuration this log runs with.
    pub fn config(&self) -> CommitLogConfig {
        self.config
    }

    /// The range covering `addr`.
    pub fn range_of(&self, addr: Addr) -> RangeId {
        addr >> self.config.grain_log2
    }

    fn shard_index(&self, range: RangeId) -> usize {
        (range & self.shard_mask) as usize
    }

    fn local_index(&self, range: RangeId) -> usize {
        (range >> self.shard_bits) as usize
    }

    /// Whether `addr` is covered by the dense (lock-free) version window.
    pub fn dense_covers(&self, addr: Addr) -> bool {
        let range = self.range_of(addr);
        self.local_index(range) < self.shards[self.shard_index(range)].dense.len()
    }

    fn stamp(&self, shard_idx: usize, range: RangeId, version: CommitVersion) {
        let shard = &self.shards[shard_idx];
        let local = self.local_index(range);
        if local < shard.dense.len() {
            shard.dense[local].store(version, Ordering::Relaxed);
        } else {
            shard
                .sparse
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .insert(range, version);
        }
    }

    fn version_of_range(&self, range: RangeId) -> CommitVersion {
        let shard = &self.shards[self.shard_index(range)];
        let local = self.local_index(range);
        if local < shard.dense.len() {
            shard.dense[local].load(Ordering::Acquire)
        } else {
            shard
                .sparse
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .get(&range)
                .copied()
                .unwrap_or(0)
        }
    }

    /// The read snapshot for `addr`: the current epoch of the shard
    /// owning the address's range (acquire).
    ///
    /// Speculative readers sample this *before* loading the word from
    /// main memory and stamp the read-set entry with it; join-time
    /// validation compares it against [`version_of`](Self::version_of) on
    /// the same shard counter.
    pub fn snapshot(&self, addr: Addr) -> CommitVersion {
        self.shards[self.shard_index(self.range_of(addr))]
            .epoch
            .load(Ordering::Acquire)
    }

    /// Register thread `rank` as a reader of `addr`'s range and return the
    /// read snapshot to stamp the read-set entry with.
    ///
    /// This is the seqlock-style protocol of the module docs: the bit is
    /// ORed in first (one `SeqCst` RMW, off the commit lock) and the shard
    /// epoch is (re-)read *after* the registration is globally visible.  A
    /// committer whose [`take_readers`](Self::take_readers) misses the bit
    /// must therefore have published its epoch before this snapshot, so
    /// the snapshot covers the commit and the read is not stale.  Rank 0
    /// (the non-speculative thread) registers nothing; ranks beyond
    /// [`MAX_TRACKED_READERS`] set the sticky overflow marker.
    pub fn register_reader(&self, addr: Addr, rank: usize) -> CommitVersion {
        let range = self.range_of(addr);
        let shard = &self.shards[self.shard_index(range)];
        let bit = reader_bit(rank);
        if bit != 0 {
            let local = self.local_index(range);
            if local < shard.readers_dense.len() {
                shard.readers_dense[local].fetch_or(bit, Ordering::SeqCst);
            } else {
                *shard
                    .readers_sparse
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(range)
                    .or_insert(0) |= bit;
            }
        }
        shard.epoch.load(Ordering::SeqCst)
    }

    /// Remove thread `rank` from the reader registry of every range
    /// covering `addrs` (a joined thread's read set — committed or
    /// squashed, its registrations are dead and would only cause spurious
    /// dooms).  Untracked ranks (the overflow marker) cannot be removed
    /// individually; the marker stays sticky until the next enumeration.
    pub fn unregister_reader<I: IntoIterator<Item = Addr>>(&self, addrs: I, rank: usize) {
        let bit = reader_bit(rank);
        if bit == 0 || bit == READER_OVERFLOW_BIT {
            return;
        }
        let mut last_range = None;
        for addr in addrs {
            let range = self.range_of(addr);
            if last_range == Some(range) {
                continue;
            }
            last_range = Some(range);
            let shard = &self.shards[self.shard_index(range)];
            let local = self.local_index(range);
            if local < shard.readers_dense.len() {
                shard.readers_dense[local].fetch_and(!bit, Ordering::SeqCst);
            } else {
                let mut sparse = shard
                    .readers_sparse
                    .write()
                    .unwrap_or_else(|e| e.into_inner());
                if let Some(bits) = sparse.get_mut(&range) {
                    *bits &= !bit;
                    if *bits == 0 {
                        sparse.remove(&range);
                    }
                }
            }
        }
    }

    /// Move the registrations for `addrs` from thread `from` to thread
    /// `to` — a speculative parent absorbing its child's read set inherits
    /// the child's dependences, so future commits to those ranges must
    /// doom the *parent* now.
    pub fn transfer_reader<I: IntoIterator<Item = Addr>>(&self, addrs: I, from: usize, to: usize) {
        let from_bit = reader_bit(from);
        let to_bit = reader_bit(to);
        let mut last_range = None;
        for addr in addrs {
            let range = self.range_of(addr);
            if last_range == Some(range) {
                continue;
            }
            last_range = Some(range);
            let shard = &self.shards[self.shard_index(range)];
            let local = self.local_index(range);
            if local < shard.readers_dense.len() {
                if to_bit != 0 {
                    shard.readers_dense[local].fetch_or(to_bit, Ordering::SeqCst);
                }
                if from_bit != 0 && from_bit != READER_OVERFLOW_BIT {
                    shard.readers_dense[local].fetch_and(!from_bit, Ordering::SeqCst);
                }
            } else {
                let mut sparse = shard
                    .readers_sparse
                    .write()
                    .unwrap_or_else(|e| e.into_inner());
                let bits = sparse.entry(range).or_insert(0);
                *bits |= to_bit;
                if from_bit != READER_OVERFLOW_BIT {
                    *bits &= !from_bit;
                }
                if *bits == 0 {
                    sparse.remove(&range);
                }
            }
        }
    }

    /// Enumerate *and clear* the registered readers of every range
    /// covering `addrs` — called by a committing writer immediately after
    /// [`record`](Self::record), so the returned set is exactly the
    /// threads whose read sets overlap the just-stamped ranges (plus the
    /// overflow marker when an untracked rank is among them).  Clearing on
    /// enumeration bounds registry staleness: the returned readers are
    /// about to be doomed and will re-register when they re-execute.
    pub fn take_readers<I: IntoIterator<Item = Addr>>(&self, addrs: I) -> ReaderSet {
        let mut bits = 0u64;
        let mut last_range = None;
        for addr in addrs {
            let range = self.range_of(addr);
            if last_range == Some(range) {
                continue;
            }
            last_range = Some(range);
            let shard = &self.shards[self.shard_index(range)];
            let local = self.local_index(range);
            if local < shard.readers_dense.len() {
                // Fast path: an unread range stays a single load — but it
                // must be SeqCst, not relaxed, or it could miss a
                // registration that precedes this enumeration in the SC
                // order and break the missed-reader argument of the
                // module docs (a relaxed load participates in no SC
                // total order).
                if shard.readers_dense[local].load(Ordering::SeqCst) != 0 {
                    bits |= shard.readers_dense[local].swap(0, Ordering::SeqCst);
                }
            } else {
                let occupied = !shard
                    .readers_sparse
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty();
                if occupied {
                    if let Some(found) = shard
                        .readers_sparse
                        .write()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(&range)
                    {
                        bits |= found;
                    }
                }
            }
        }
        ReaderSet { bits }
    }

    /// Enumerate-and-clear the readers of a single word's range (the
    /// non-speculative direct-store fast path).
    pub fn take_readers_of_word(&self, addr: Addr) -> ReaderSet {
        self.take_readers([addr])
    }

    /// The raw registered-reader bitmask of `addr`'s range (tests and
    /// diagnostics; does not clear).
    pub fn registered_readers(&self, addr: Addr) -> ReaderSet {
        let range = self.range_of(addr);
        let shard = &self.shards[self.shard_index(range)];
        let local = self.local_index(range);
        let bits = if local < shard.readers_dense.len() {
            shard.readers_dense[local].load(Ordering::SeqCst)
        } else {
            shard
                .readers_sparse
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .get(&range)
                .copied()
                .unwrap_or(0)
        };
        ReaderSet { bits }
    }

    /// The maximum shard epoch (acquire per shard) — a monotone bound for
    /// diagnostics.  **Not** a valid read snapshot: shard counters
    /// advance independently, so use [`snapshot`](Self::snapshot) when
    /// stamping reads.
    pub fn epoch(&self) -> CommitVersion {
        self.shards
            .iter()
            .map(|s| s.epoch.load(Ordering::Acquire))
            .max()
            .unwrap_or(0)
    }

    /// Record one commit batch covering `addrs` and return the largest
    /// shard version the batch published (the current [`epoch`](Self::epoch)
    /// for an empty batch, which records nothing).
    ///
    /// The caller must have already written the data words to main memory
    /// (see the module-level ordering protocol).  The batch's addresses
    /// are coarsened to ranges, deduplicated and grouped by shard; each
    /// involved shard is then locked *one at a time* (never nested, so
    /// committers cannot deadlock), its ranges stamped with its next
    /// version, and the new shard epoch published (release).
    pub fn record<I: IntoIterator<Item = Addr>>(&self, addrs: I) -> CommitVersion {
        let mut iter = addrs.into_iter().map(|a| self.range_of(a));
        let Some(first) = iter.next() else {
            return self.epoch();
        };
        let mut ranges: Vec<RangeId> = iter.collect();
        if ranges.is_empty() {
            // Single-address batch: the non-speculative direct-store fast
            // path — one shard, no grouping allocation.
            return self.record_single(first);
        }
        ranges.push(first);
        // Sorting by (shard, range) groups each shard's ranges into one
        // contiguous run, so the lock loop below walks slices of this
        // single Vec — no per-shard bucket allocation on the commit path.
        ranges.sort_unstable_by_key(|r| (r & self.shard_mask, *r));
        ranges.dedup();
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.stamped
            .fetch_add(ranges.len() as u64, Ordering::Relaxed);
        let sample = self.lock_time_sampled();
        let mut max_version = 0;
        let mut start = 0;
        while start < ranges.len() {
            let shard_idx = self.shard_index(ranges[start]);
            let mut end = start + 1;
            while end < ranges.len() && self.shard_index(ranges[end]) == shard_idx {
                end += 1;
            }
            let shard = &self.shards[shard_idx];
            let started = sample.then(Instant::now);
            let _guard = shard.commit_lock.lock().unwrap_or_else(|e| e.into_inner());
            let version = shard.epoch.load(Ordering::Relaxed) + 1;
            for &range in &ranges[start..end] {
                self.stamp(shard_idx, range, version);
            }
            // SeqCst (a release store plus SC ordering): the reader
            // registry's missed-reader argument needs the epoch publish
            // and the subsequent `take_readers` swap to be totally
            // ordered against registration (see the module docs).
            shard.epoch.store(version, Ordering::SeqCst);
            if let Some(started) = started {
                self.lock_ns.fetch_add(
                    (started.elapsed().as_nanos() as u64) << LOCK_SAMPLE_LOG2,
                    Ordering::Relaxed,
                );
            }
            max_version = max_version.max(version);
            start = end;
        }
        max_version
    }

    /// Whether this batch's lock-hold time should be measured: every
    /// `2^LOCK_SAMPLE_LOG2`-th batch is timed and its duration scaled up,
    /// so the hot publish path (every non-speculative store goes through
    /// [`record_word`](Self::record_word)) pays the two clock reads only
    /// on a small fraction of commits.
    fn lock_time_sampled(&self) -> bool {
        self.lock_samples.fetch_add(1, Ordering::Relaxed) & ((1 << LOCK_SAMPLE_LOG2) - 1) == 0
    }

    fn record_single(&self, range: RangeId) -> CommitVersion {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.stamped.fetch_add(1, Ordering::Relaxed);
        let sample = self.lock_time_sampled();
        let shard_idx = self.shard_index(range);
        let shard = &self.shards[shard_idx];
        let started = sample.then(Instant::now);
        let _guard = shard.commit_lock.lock().unwrap_or_else(|e| e.into_inner());
        let version = shard.epoch.load(Ordering::Relaxed) + 1;
        self.stamp(shard_idx, range, version);
        // SeqCst for the reader-registry ordering (see `record`).
        shard.epoch.store(version, Ordering::SeqCst);
        if let Some(started) = started {
            self.lock_ns.fetch_add(
                (started.elapsed().as_nanos() as u64) << LOCK_SAMPLE_LOG2,
                Ordering::Relaxed,
            );
        }
        version
    }

    /// Record a single-word commit (the non-speculative direct-store path).
    pub fn record_word(&self, addr: Addr) -> CommitVersion {
        self.record_single(self.range_of(addr))
    }

    /// Version of the last commit that wrote any word of `addr`'s range
    /// (0 = never written through the log).
    pub fn version_of(&self, addr: Addr) -> CommitVersion {
        self.version_of_range(self.range_of(addr))
    }

    /// True when a commit wrote `addr`'s *range* after a read of `addr`
    /// stamped with `read_version` — the (range-conservative) dependence
    /// violation condition.  May flag false sharing (a different word of
    /// the same range); never misses a genuine conflict.
    pub fn written_after(&self, addr: Addr, read_version: CommitVersion) -> bool {
        self.version_of(addr) > read_version
    }

    /// Number of commit batches recorded so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Number of distinct ranges currently carrying a stamp.
    pub fn stamped_ranges(&self) -> usize {
        let dense: usize = self
            .shards
            .iter()
            .flat_map(|s| s.dense.iter())
            .filter(|v| v.load(Ordering::Relaxed) != 0)
            .count();
        let sparse: usize = self
            .shards
            .iter()
            .map(|s| s.sparse.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum();
        dense + sparse
    }

    /// Aggregate activity counters since construction or the last
    /// [`clear`](Self::clear).
    pub fn stats(&self) -> CommitLogStats {
        CommitLogStats {
            commits: self.commits.load(Ordering::Relaxed),
            stamp_writes: self.stamped.load(Ordering::Relaxed),
            lock_ns: self.lock_ns.load(Ordering::Relaxed),
            grain_log2: self.config.grain_log2,
            shards: self.config.shards,
        }
    }

    /// Forget everything (start of a new speculative region run).
    pub fn clear(&self) {
        for shard in &self.shards {
            let _guard = shard.commit_lock.lock().unwrap_or_else(|e| e.into_inner());
            for v in &shard.dense {
                v.store(0, Ordering::Relaxed);
            }
            shard
                .sparse
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .clear();
            for r in &shard.readers_dense {
                r.store(0, Ordering::Relaxed);
            }
            shard
                .readers_sparse
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .clear();
            shard.epoch.store(0, Ordering::Release);
        }
        self.commits.store(0, Ordering::Relaxed);
        self.stamped.store(0, Ordering::Relaxed);
        self.lock_ns.store(0, Ordering::Relaxed);
        self.lock_samples.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A word-granular, single-shard log behaves exactly like the old
    /// design for these unit tests.
    fn word_log() -> CommitLog {
        CommitLog::with_config(CommitLogConfig::word_grain().shards(1), 0)
    }

    #[test]
    fn versions_are_monotone_per_batch() {
        let log = word_log();
        assert_eq!(log.epoch(), 0);
        let v1 = log.record([8, 16]);
        let v2 = log.record([24]);
        assert!(v2 > v1);
        assert_eq!(log.version_of(8), v1);
        assert_eq!(log.version_of(16), v1);
        assert_eq!(log.version_of(24), v2);
        assert_eq!(log.version_of(32), 0);
        assert_eq!(log.commits(), 2);
        assert_eq!(log.stamped_ranges(), 3);
    }

    #[test]
    fn written_after_flags_only_later_commits() {
        let log = word_log();
        let before = log.snapshot(64);
        log.record_word(64);
        // A read stamped before the commit conflicts…
        assert!(log.written_after(64, before));
        // …a read stamped at (or after) the commit does not.
        assert!(!log.written_after(64, log.snapshot(64)));
        // Untouched addresses never conflict.
        assert!(!log.written_after(72, before));
    }

    #[test]
    fn rewrite_bumps_the_version() {
        let log = word_log();
        let v1 = log.record_word(8);
        let v2 = log.record_word(8);
        assert!(v2 > v1);
        assert!(log.written_after(8, v1));
    }

    #[test]
    fn dense_range_and_sparse_fallback_agree() {
        // Dense window covers the first 512 bytes (64 words at word
        // grain); everything beyond falls back to the sparse maps
        // transparently.
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 512);
        assert!(log.dense_covers(504));
        assert!(!log.dense_covers(1 << 20));
        log.record([8, 504, 512, 4096]);
        for addr in [8, 504, 512, 4096] {
            assert!(log.version_of(addr) > 0, "addr {addr}");
            assert!(log.written_after(addr, 0));
        }
        assert_eq!(log.stamped_ranges(), 4);
        log.clear();
        for addr in [8, 504, 512, 4096] {
            assert_eq!(log.version_of(addr), 0, "addr {addr}");
        }
        assert_eq!(log.stamped_ranges(), 0);
    }

    #[test]
    fn dense_capacity_rounds_up_to_whole_ranges() {
        // Regression: a capacity that is not word- (or range-) aligned
        // must still cover the trailing partial word densely — rounding
        // down would push the hottest tail of the arena onto the sparse
        // fallback.
        let log = CommitLog::with_config(CommitLogConfig::word_grain().shards(1), 509);
        // 509 bytes = 63 full words + 5 bytes: word 63 (bytes 504..512)
        // is partial but must be dense.
        assert!(log.dense_covers(504));
        let log = CommitLog::with_config(CommitLogConfig::default(), 65);
        // 65 bytes = one full line + 1 byte: line 1 must be dense.
        assert!(log.dense_covers(64));
    }

    #[test]
    fn range_grain_coarsens_conservatively() {
        // At line grain, two words of the same 64-byte range share a
        // version (false sharing allowed)…
        let log = CommitLog::with_config(CommitLogConfig::line_grain(), 0);
        let before = log.snapshot(8);
        log.record_word(8);
        assert!(log.written_after(8, before), "the written word conflicts");
        assert!(
            log.written_after(56, before),
            "a neighbour in the same line conflicts too (false sharing)"
        );
        // …but a word in the next range does not (no missed conflicts is
        // about ranges *covering* the write, not about spill-over).
        assert!(!log.written_after(64, log.snapshot(64)));
        assert_eq!(log.stamped_ranges(), 1, "one line, one stamp");
    }

    #[test]
    fn shard_epochs_advance_independently() {
        // Ranges 0 and 1 map to different shards with 2+ shards; each
        // shard versions its own commits from 1.
        let config = CommitLogConfig::word_grain().shards(2);
        let log = CommitLog::with_config(config, 0);
        let v_a = log.record_word(0); // range 0 → shard 0
        let v_b = log.record_word(8); // range 1 → shard 1
        assert_eq!(v_a, 1);
        assert_eq!(v_b, 1, "second shard starts its own epoch");
        assert_eq!(log.epoch(), 1, "global epoch is the max over shards");
        let v_a2 = log.record_word(0);
        assert_eq!(v_a2, 2);
        assert_eq!(log.epoch(), 2);
        assert_eq!(log.commits(), 3);
    }

    #[test]
    fn multi_shard_batch_stamps_every_shard() {
        let config = CommitLogConfig::word_grain().shards(4);
        let log = CommitLog::with_config(config, 1 << 10);
        let before: Vec<_> = [0u64, 8, 16, 24].iter().map(|&a| log.snapshot(a)).collect();
        // One batch spanning all four shards.
        log.record([0, 8, 16, 24]);
        for (addr, before) in [0u64, 8, 16, 24].into_iter().zip(before) {
            assert!(log.written_after(addr, before), "addr {addr}");
        }
        assert_eq!(log.commits(), 1);
        assert_eq!(log.stamped_ranges(), 4);
        assert_eq!(log.stats().stamp_writes, 4);
    }

    #[test]
    fn stamps_are_visible_before_the_epoch_publishes() {
        // A reader that samples a post-commit shard epoch must never see
        // a pre-commit version for a stamped address (the stale-version
        // race validate_against relies on being impossible) — now checked
        // across a sharded, line-granular log.
        let log = std::sync::Arc::new(CommitLog::with_dense_bytes(1 << 12));
        let stop = std::sync::Arc::new(AtomicU64::new(0));
        let writer = {
            let log = std::sync::Arc::clone(&log);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    log.record([8, 256, 1024]);
                }
                stop.store(1, Ordering::Release);
            })
        };
        while stop.load(Ordering::Acquire) == 0 {
            for addr in [8u64, 256, 1024] {
                let snapshot = log.snapshot(addr);
                // Every batch stamps this address's range before
                // publishing its shard epoch, so an observed epoch
                // implies at-least-that stamp.
                assert!(
                    log.version_of(addr) >= snapshot,
                    "stamp lagged the published shard epoch"
                );
            }
        }
        writer.join().unwrap();
        assert_eq!(log.commits(), 20_000);
    }

    #[test]
    fn clear_resets_epochs_and_maps() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain().shards(4), 0);
        log.record([8, 16, 24]);
        log.clear();
        assert_eq!(log.epoch(), 0);
        assert_eq!(log.version_of(8), 0);
        assert_eq!(log.stamped_ranges(), 0);
        assert_eq!(log.commits(), 0);
        assert_eq!(
            log.stats(),
            CommitLogStats {
                grain_log2: WORD_GRAIN_LOG2,
                shards: 4,
                ..Default::default()
            }
        );
    }

    #[test]
    fn concurrent_commits_and_lookups_are_safe() {
        let log = std::sync::Arc::new(CommitLog::with_dense_bytes(256));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let addr = ((t * 500 + i) % 64) * 8 + 8;
                    log.record_word(addr);
                    let _ = log.version_of(addr);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.commits(), 2000);
    }

    #[test]
    fn identical_batches_stamp_strictly_fewer_ranges_at_coarser_grain() {
        // The deterministic form of the grain sweep's headline claim:
        // one 64-word batch costs 64 stamps at word grain, 8 at line
        // grain and 1 at page grain.  (The native sweep can't assert
        // this strictly — its batch structure depends on scheduling.)
        let batch: Vec<Addr> = (0..64u64).map(|i| i * 8).collect();
        let stamps_at = |grain_log2: u32| {
            let log =
                CommitLog::with_config(CommitLogConfig::default().grain_log2(grain_log2), 1 << 12);
            log.record(batch.iter().copied());
            log.stats().stamp_writes
        };
        assert_eq!(stamps_at(WORD_GRAIN_LOG2), 64);
        assert_eq!(stamps_at(LINE_GRAIN_LOG2), 8);
        assert_eq!(stamps_at(PAGE_GRAIN_LOG2), 1);
    }

    #[test]
    fn lock_time_is_sampled_but_counters_are_exact() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 0);
        for i in 0..32u64 {
            log.record_word(i * 8);
        }
        // The counters are exact regardless of sampling.  (lock_ns is
        // not asserted non-zero: on coarse-resolution clocks a sampled
        // tens-of-ns critical section can legitimately register as 0.)
        assert_eq!(log.stats().commits, 32);
        assert_eq!(log.stats().stamp_writes, 32);
    }

    #[test]
    fn reader_registry_roundtrip_register_take_unregister() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain().shards(2), 256);
        // Registration returns a snapshot usable exactly like snapshot().
        let v = log.register_reader(8, 3);
        assert_eq!(v, log.snapshot(8));
        log.register_reader(8, 5);
        log.register_reader(16, 7); // different range, untouched below
        let set = log.registered_readers(8);
        assert!(set.contains(3) && set.contains(5) && !set.contains(7));
        assert_eq!(set.len(), 2);
        // Enumeration returns exactly the overlapping readers and clears.
        let taken = log.take_readers([8]);
        assert_eq!(taken.ranks().collect::<Vec<_>>(), vec![3, 5]);
        assert!(!taken.overflowed());
        assert!(log.registered_readers(8).is_empty());
        assert!(
            log.registered_readers(16).contains(7),
            "disjoint range kept"
        );
        // Unregister removes a single rank without touching others.
        log.register_reader(16, 9);
        log.unregister_reader([16], 7);
        let set = log.registered_readers(16);
        assert!(!set.contains(7) && set.contains(9));
        // Rank 0 (non-speculative) never registers.
        log.register_reader(24, 0);
        assert!(log.registered_readers(24).is_empty());
    }

    #[test]
    fn reader_registry_tracks_ranges_not_words() {
        // At line grain two words of the same line share one reader mask,
        // and a commit to either word enumerates the reader.
        let log = CommitLog::with_config(CommitLogConfig::line_grain(), 0);
        log.register_reader(8, 2);
        assert!(log.registered_readers(56).contains(2), "same line");
        assert!(!log.registered_readers(64).contains(2), "next line");
        let taken = log.take_readers_of_word(48);
        assert!(taken.contains(2));
    }

    #[test]
    fn reader_registry_overflows_past_the_tracked_window() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 0);
        log.register_reader(8, MAX_TRACKED_READERS);
        log.register_reader(8, MAX_TRACKED_READERS + 1);
        let set = log.take_readers([8]);
        assert!(set.contains(MAX_TRACKED_READERS));
        assert!(
            set.overflowed(),
            "untracked rank must force the cascade fallback"
        );
        assert_eq!(set.len(), 1, "overflow marker is not a rank");
    }

    #[test]
    fn reader_transfer_moves_the_dependence_to_the_parent() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 512);
        log.register_reader(8, 4);
        log.register_reader(1 << 20, 4); // sparse range
        log.transfer_reader([8, 1 << 20], 4, 2);
        for addr in [8u64, 1 << 20] {
            let set = log.registered_readers(addr);
            assert!(set.contains(2), "parent registered at {addr}");
            assert!(!set.contains(4), "child unregistered at {addr}");
        }
    }

    #[test]
    fn clear_resets_the_reader_registry() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 64);
        log.register_reader(8, 1);
        log.register_reader(1 << 16, 2); // sparse
        log.clear();
        assert!(log.registered_readers(8).is_empty());
        assert!(log.registered_readers(1 << 16).is_empty());
    }

    #[test]
    fn registered_reader_with_stale_snapshot_is_always_enumerated() {
        // The deterministic half of the seqlock argument: a reader whose
        // registration precedes a commit is enumerated by that commit's
        // take_readers — the "doom exactly the stale readers" contract.
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 64);
        let snapshot = log.register_reader(8, 7);
        let version = log.record_word(8);
        assert!(version > snapshot, "the read is stale");
        let taken = log.take_readers_of_word(8);
        assert!(taken.contains(7), "stale reader missed by enumeration");
        // A second enumeration finds nothing (cleared on take).
        assert!(log.take_readers_of_word(8).is_empty());
    }

    #[test]
    fn concurrent_registration_and_enumeration_never_strands_a_stale_reader() {
        // Concurrent hammer of the protocol: after a commit, a reader is
        // either enumerated by some take_readers or its snapshot covers
        // the commit (no conflict) — a reader can never be both stale and
        // permanently invisible.  The reader thread checks its own half.
        let log = std::sync::Arc::new(CommitLog::with_dense_bytes(64));
        let stop = std::sync::Arc::new(AtomicU64::new(0));
        let enumerated = std::sync::Arc::new(AtomicU64::new(0));
        let committer = {
            let log = std::sync::Arc::clone(&log);
            let stop = std::sync::Arc::clone(&stop);
            let enumerated = std::sync::Arc::clone(&enumerated);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    log.record_word(8);
                    if log.take_readers_of_word(8).contains(7) {
                        enumerated.fetch_add(1, Ordering::Relaxed);
                    }
                }
                stop.store(1, Ordering::Release);
            })
        };
        let mut covered = 0u64;
        while stop.load(Ordering::Acquire) == 0 {
            let snapshot = log.register_reader(8, 7);
            if log.version_of(8) <= snapshot {
                // Snapshot covers every commit so far: a take_readers
                // that missed this registration missed nothing stale.
                covered += 1;
            }
        }
        committer.join().unwrap();
        assert!(
            covered > 0 || enumerated.load(Ordering::Relaxed) > 0,
            "reader neither covered nor ever enumerated"
        );
    }

    #[test]
    fn config_normalizes_degenerate_values() {
        let log = CommitLog::with_config(
            CommitLogConfig {
                grain_log2: 0,
                shards: 0,
            },
            128,
        );
        assert_eq!(log.config().grain_log2, WORD_GRAIN_LOG2);
        assert_eq!(log.config().shards, 1);
        let log = CommitLog::with_config(
            CommitLogConfig {
                grain_log2: 6,
                shards: 3,
            },
            0,
        );
        assert_eq!(log.config().shards, 4, "shards round up to a power of two");
        assert_eq!(CommitLogConfig::page_grain().grain_bytes(), 4096);
    }
}
