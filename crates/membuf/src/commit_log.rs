//! The shared commit log: the versioned view of main memory that makes
//! cross-thread conflict detection *real* instead of injected.
//!
//! Every write that reaches main memory — a direct store by the
//! non-speculative thread or a committed speculative write-set — is
//! recorded here as one *commit batch* with a fresh, monotonically
//! increasing version (the *epoch*).  A speculative read stamps its
//! read-set entry with the epoch observed at read time; join-time
//! validation then asks, per read entry, whether any logically earlier
//! work committed a write to that address *after* the read
//! ([`CommitLog::written_after`]).  This detects exactly the
//! read-before-predecessor-write dependences MUTLS read-set validation is
//! specified to catch (paper §IV-F), including the value-ABA case a pure
//! value comparison would miss.
//!
//! Per-address versions live in a *dense* array covering the main-memory
//! arena (one version word per data word, lock-free stamping and lookup),
//! sized via [`CommitLog::with_dense_bytes`]; addresses beyond the dense
//! range fall back to a sharded map, so the log also works standalone
//! with arbitrary addresses.
//!
//! ## Memory-ordering protocol
//!
//! Soundness under concurrency relies on the order of operations:
//!
//! * **Committer** (always executing logically earlier work): write the
//!   data words to main memory *first*, then call [`CommitLog::record`],
//!   which — under a lock serializing committers — stamps every address
//!   with the next version and only *then* publishes the new epoch
//!   (release).
//! * **Reader** (a speculative thread): sample [`CommitLog::epoch`]
//!   (acquire) *before* loading the word from main memory.
//!
//! If the reader's sampled epoch is at least the committer's version, the
//! acquire/release pair guarantees both the committed data *and its
//! version stamps* were visible to the read — no conflict and no stale
//! `version_of`.  If it is smaller, the read raced the commit and
//! validation flags it; at worst this is a conservative false positive
//! (the thread re-executes), never a missed conflict.  (Stamping before
//! the epoch publish matters: were the epoch bumped first, a reader could
//! stamp the *new* epoch while `version_of` still returned the old
//! version, letting a stale read validate.)

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use crate::memory::{Addr, WORD_BYTES};

/// Number of lock stripes in the sparse address → version map.
const SHARD_COUNT: usize = 16;

/// Monotone version assigned to a commit batch (0 = "never written").
pub type CommitVersion = u64;

/// Append-only versioned record of every write published to main memory.
#[derive(Debug, Default)]
pub struct CommitLog {
    /// Version of the most recent *published* commit batch.
    epoch: AtomicU64,
    /// Serializes committers so stamps always precede the epoch publish.
    commit_lock: Mutex<()>,
    /// Dense per-word versions for addresses below
    /// `dense.len() * WORD_BYTES` — the arena fast path: one atomic store
    /// per stamped word, one atomic load per lookup, no allocation.
    dense: Vec<AtomicU64>,
    /// Sparse fallback for addresses beyond the dense range.
    shards: [RwLock<HashMap<Addr, CommitVersion>>; SHARD_COUNT],
}

/// Fibonacci-hash a word address into a shard index.
fn shard_of(addr: Addr) -> usize {
    let h = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 60) as usize & (SHARD_COUNT - 1)
}

impl CommitLog {
    /// Create an empty log with no dense range (every address goes through
    /// the sharded map — fine for tests and small address sets).
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a log whose dense fast path covers addresses
    /// `[0, capacity_bytes)` — size it to the main-memory arena so the
    /// whole program's traffic stamps lock-free with bounded memory (one
    /// version word per arena word).
    pub fn with_dense_bytes(capacity_bytes: u64) -> Self {
        let words = capacity_bytes.div_ceil(WORD_BYTES) as usize;
        let mut dense = Vec::with_capacity(words);
        dense.resize_with(words, || AtomicU64::new(0));
        CommitLog {
            dense,
            ..Self::default()
        }
    }

    fn dense_index(&self, addr: Addr) -> Option<usize> {
        let idx = (addr / WORD_BYTES) as usize;
        (idx < self.dense.len()).then_some(idx)
    }

    fn stamp(&self, addr: Addr, version: CommitVersion) {
        match self.dense_index(addr) {
            Some(idx) => self.dense[idx].store(version, Ordering::Relaxed),
            None => {
                let mut shard = self.shards[shard_of(addr)]
                    .write()
                    .unwrap_or_else(|e| e.into_inner());
                shard.insert(addr, version);
            }
        }
    }

    /// The version of the most recent commit batch.
    ///
    /// Speculative readers sample this (acquire) *before* loading a word
    /// from main memory and stamp the read-set entry with it.
    pub fn epoch(&self) -> CommitVersion {
        self.epoch.load(Ordering::Acquire)
    }

    /// Record one commit batch covering `addrs` and return its version.
    ///
    /// The caller must have already written the data words to main memory
    /// (see the module-level ordering protocol).  Committers are
    /// serialized; every address is stamped before the new epoch becomes
    /// visible.  An empty batch still bumps the epoch, which is harmless.
    pub fn record<I: IntoIterator<Item = Addr>>(&self, addrs: I) -> CommitVersion {
        let _guard = self.commit_lock.lock().unwrap_or_else(|e| e.into_inner());
        let version = self.epoch.load(Ordering::Relaxed) + 1;
        for addr in addrs {
            self.stamp(addr, version);
        }
        self.epoch.store(version, Ordering::Release);
        version
    }

    /// Record a single-word commit (the non-speculative direct-store path).
    pub fn record_word(&self, addr: Addr) -> CommitVersion {
        self.record(std::iter::once(addr))
    }

    /// Version of the last commit that wrote `addr` (0 = never written
    /// through the log).
    pub fn version_of(&self, addr: Addr) -> CommitVersion {
        match self.dense_index(addr) {
            Some(idx) => self.dense[idx].load(Ordering::Acquire),
            None => self.shards[shard_of(addr)]
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .get(&addr)
                .copied()
                .unwrap_or(0),
        }
    }

    /// True when a commit wrote `addr` *after* a read stamped with
    /// `read_version` — the dependence-violation condition.
    pub fn written_after(&self, addr: Addr, read_version: CommitVersion) -> bool {
        self.version_of(addr) > read_version
    }

    /// Number of commit batches recorded so far.
    pub fn commits(&self) -> u64 {
        self.epoch()
    }

    /// Number of distinct word addresses currently carrying a stamp.
    pub fn stamped_words(&self) -> usize {
        let dense = self
            .dense
            .iter()
            .filter(|v| v.load(Ordering::Relaxed) != 0)
            .count();
        let sparse: usize = self
            .shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum();
        dense + sparse
    }

    /// Forget everything (start of a new speculative region run).
    pub fn clear(&self) {
        let _guard = self.commit_lock.lock().unwrap_or_else(|e| e.into_inner());
        for v in &self.dense {
            v.store(0, Ordering::Relaxed);
        }
        for shard in &self.shards {
            shard.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.epoch.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotone_per_batch() {
        let log = CommitLog::new();
        assert_eq!(log.epoch(), 0);
        let v1 = log.record([8, 16]);
        let v2 = log.record([24]);
        assert!(v2 > v1);
        assert_eq!(log.version_of(8), v1);
        assert_eq!(log.version_of(16), v1);
        assert_eq!(log.version_of(24), v2);
        assert_eq!(log.version_of(32), 0);
        assert_eq!(log.commits(), 2);
        assert_eq!(log.stamped_words(), 3);
    }

    #[test]
    fn written_after_flags_only_later_commits() {
        let log = CommitLog::new();
        let before = log.epoch();
        log.record_word(64);
        // A read stamped before the commit conflicts…
        assert!(log.written_after(64, before));
        // …a read stamped at (or after) the commit does not.
        assert!(!log.written_after(64, log.epoch()));
        // Untouched addresses never conflict.
        assert!(!log.written_after(72, before));
    }

    #[test]
    fn rewrite_bumps_the_version() {
        let log = CommitLog::new();
        let v1 = log.record_word(8);
        let v2 = log.record_word(8);
        assert!(v2 > v1);
        assert!(log.written_after(8, v1));
    }

    #[test]
    fn dense_range_and_sparse_fallback_agree() {
        // Dense range covers the first 512 bytes (64 words); everything
        // beyond falls back to the sharded map transparently.
        let log = CommitLog::with_dense_bytes(512);
        let v = log.record([8, 504, 512, 4096]);
        for addr in [8, 504, 512, 4096] {
            assert_eq!(log.version_of(addr), v, "addr {addr}");
            assert!(log.written_after(addr, 0));
        }
        assert_eq!(log.stamped_words(), 4);
        log.clear();
        for addr in [8, 504, 512, 4096] {
            assert_eq!(log.version_of(addr), 0, "addr {addr}");
        }
        assert_eq!(log.stamped_words(), 0);
    }

    #[test]
    fn stamps_are_visible_before_the_epoch_publishes() {
        // A reader that samples the post-commit epoch must never see a
        // pre-commit version for a stamped address (the stale-version race
        // validate_against relies on being impossible).
        let log = std::sync::Arc::new(CommitLog::with_dense_bytes(1 << 12));
        let stop = std::sync::Arc::new(AtomicU64::new(0));
        let writer = {
            let log = std::sync::Arc::clone(&log);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    log.record([8, 16, 24]);
                }
                stop.store(1, Ordering::Release);
            })
        };
        while stop.load(Ordering::Acquire) == 0 {
            let epoch = log.epoch();
            for addr in [8, 16, 24] {
                // Every batch stamps these addresses before publishing its
                // epoch, so an observed epoch implies at-least-that stamp.
                assert!(
                    log.version_of(addr) >= epoch,
                    "stamp lagged the published epoch"
                );
            }
        }
        writer.join().unwrap();
        assert_eq!(log.epoch(), 20_000);
    }

    #[test]
    fn clear_resets_epoch_and_map() {
        let log = CommitLog::new();
        log.record([8, 16, 24]);
        log.clear();
        assert_eq!(log.epoch(), 0);
        assert_eq!(log.version_of(8), 0);
        assert_eq!(log.stamped_words(), 0);
    }

    #[test]
    fn concurrent_commits_and_lookups_are_safe() {
        let log = std::sync::Arc::new(CommitLog::with_dense_bytes(256));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let addr = ((t * 500 + i) % 64) * 8 + 8;
                    log.record_word(addr);
                    let _ = log.version_of(addr);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.commits(), 2000);
    }
}
