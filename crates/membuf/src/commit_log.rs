//! The shared commit log: the versioned view of main memory that makes
//! cross-thread conflict detection *real* instead of injected.
//!
//! Every write that reaches main memory — a direct store by the
//! non-speculative thread or a committed speculative write-set — is
//! recorded here as one *commit batch*.  A speculative read stamps its
//! read-set entry with the version snapshot observed at read time;
//! join-time validation then asks, per read entry, whether any logically
//! earlier work committed a write covering that address *after* the read
//! ([`CommitLog::written_after`]).  This detects exactly the
//! read-before-predecessor-write dependences MUTLS read-set validation is
//! specified to catch (paper §IV-F), including the value-ABA case a pure
//! value comparison would miss.
//!
//! ## Range granularity — now per region, live
//!
//! Versions are stamped per *range* of bytes, not per word.  Coarsening
//! the grain bounds log growth on long regions — a commit batch stamps
//! one version per *range* touched, not one per word — at the cost of
//! **false sharing**: a commit to any word of a range dooms a reader of
//! any other word of the same range.
//!
//! Since the grain-control subsystem landed, the grain is **no longer a
//! single global constant**: the address space is divided into *regions*
//! of `2^`[`CommitLog::region_log2`] bytes (at least one 4 KiB page) and
//! every region carries its own live grain in
//! `[`[`CommitLogConfig::grain_log2`]`, region_log2]`.  The configured
//! grain is the *floor* (the finest grain the version table is allocated
//! for); [`CommitLog::regrain`] moves one region's grain up (coarsen) or
//! down (re-split) at runtime, so a dense-numeric region can run at page
//! grain while a pointer-chasing region in the same program runs at word
//! grain.
//!
//! The guarantee is one-sided by design, at every grain and across any
//! regrain interleaving:
//!
//! * **False sharing is allowed.**  A range-grain conflict may be
//!   spurious (different words, same range).  The reader rolls back and
//!   re-executes (or value-predict-retries in place); the result is still
//!   correct, merely slower.
//! * **Missed conflicts are impossible.**  Every word maps into exactly
//!   one range of its region's current grain, and a write to the word
//!   always advances that range's version past every snapshot taken
//!   before the commit.  A genuine dependence violation is therefore
//!   always flagged.
//!
//! ## Sharding — by region
//!
//! The version table is split across [`CommitLogConfig::shards`]
//! independent shards, each with its own epoch counter, commit lock,
//! dense version array and sparse fallback map.  A region maps to shard
//! `region_id & (shards - 1)` — consecutive regions interleave across
//! shards.  Sharding *by region* (rather than by range, as before
//! grain control) is what keeps the read-snapshot protocol sound under
//! live regrains: an address's owning shard — and hence the epoch counter
//! its snapshots and versions live on — never depends on the current
//! grain, so a snapshot taken at one grain remains comparable to versions
//! stamped at another.
//!
//! Per-range versions live in a per-shard *dense* array covering the
//! main-memory arena, one slot per **floor-grain** range (lock-free
//! stamping and lookup), sized via [`CommitLog::with_dense_bytes`]; the
//! capacity is rounded **up** to whole regions.  A region running at a
//! coarser grain uses a prefix of its slot block (slot
//! `offset_in_region >> grain`).  Ranges beyond the dense window fall
//! back to a per-shard map at the floor grain (out-of-window addresses
//! are never regrained), so the log also works standalone with arbitrary
//! addresses.
//!
//! ## Lock-free commit path (the default)
//!
//! Since PR 7 the dense fast path publishes **without any lock**.  Per
//! shard:
//!
//! * **Version reservation = epoch publish.**  A committer reserves its
//!   version with one `SeqCst` `fetch_add` on the shard epoch.  The RMW
//!   chain on the epoch word forms a release sequence, so a reader whose
//!   [`snapshot`](CommitLog::snapshot) observes epoch `>= v`
//!   synchronizes with committer `v`'s reservation — and the committer
//!   wrote its data words to main memory *before* calling
//!   [`record`](CommitLog::record) — hence the reader's subsequent data
//!   loads see commit `v`'s values.  Contrapositive: a reader that read
//!   *stale* data has a snapshot `< v`.
//! * **CAS-published slots.**  Each touched range's dense slot is then
//!   raised to `v` with a monotone `load → check → compare_exchange`
//!   loop ([`stamp_writes`](CommitLogStats::stamp_writes) counts the
//!   slots, [`cas_retries`](CommitLogStats::cas_retries) the loop
//!   retries): if the slot already holds a version `>= v` a concurrent
//!   later commit owns it and the stamp is free.  Committers stamping
//!   **disjoint** ranges never contend; same-slot races cost a bounded
//!   retry, never a wait.  Join-time validation reads the slot *after*
//!   the relevant commit's `record` returned (the runtime's join
//!   ordering), so the slot is `>= v` and any reader with a stale
//!   snapshot `s < v` is flagged: missed conflicts stay structurally
//!   impossible.
//! * **Seqlock grain probing.**  Every dense region carries a sequence
//!   word ([`CommitLog::regrain`] holds it *odd* while rebuilding the
//!   region).  The fast path double-checks it around the stamp loop:
//!   read the sequence (spin while odd), read the region's live grain,
//!   CAS the slots, re-read the sequence — if it moved, a regrain raced
//!   the stamps and the committer simply re-stamps at the now-current
//!   grain.  Fast-path committers only *observe* the word; they never
//!   take the slow-path lock.
//!
//! The sparse fallback map, the reader-registry spill sets, `regrain`
//! and [`clear`](CommitLog::clear) stay under the per-shard slow-path
//! lock (a striped `parking_lot` mutex) — they are the cold paths.
//! [`CommitLogConfig::locked`] keeps the pre-PR 7 mutex protocol
//! available for A/B comparison (the `commitbench` sweep): there the
//! shard lock serializes committers, stamps precede the epoch publish,
//! and the epoch is stored (not `fetch_add`ed) under the lock.
//!
//! ## Version rings (MVCC validation)
//!
//! With [`CommitLogConfig::ring_depth`]` > 1` every dense slot carries a
//! small **ring of packed `(version, footprint)` entries** recording the
//! recent commit history of the range, published lock-free on the same
//! fast path (one CAS-merge per touched slot, *before* the dense version
//! CAS).  The footprint is a 16-bit Bloom hash of the **word offsets
//! written** within the range — deliberately value-independent, so a
//! hash collision can only ever *add* conservatism (a value hash could
//! collide two different values and mask a genuine conflict; an offset
//! hash at worst blames an unwritten word).
//!
//! Entries are indexed by **version bucket**: bucket
//! `version >> `[`CommitLogConfig::ring_bucket_log2`] owns ring slot
//! `bucket % ring_depth`.  A committer CAS-merges into its bucket's slot
//! (same bucket: max the version, OR the footprint; older bucket:
//! replace; newer bucket already present: leave it — the lost footprint
//! is conservatively covered, because a validator of the displaced
//! bucket sees the newer entry at its index and falls back).  That makes
//! *overflow detection purely arithmetic*: a snapshot older than
//! `ring_depth` buckets, or a probed bucket whose slot was reused by a
//! newer bucket, yields [`RingCheck::Overflow`] (counted in
//! [`CommitLogStats::ring_overflows`]) and validation falls back to the
//! single-version conservatism above.
//!
//! [`CommitLog::probe_written`] is the precise replacement for
//! [`written_after`](CommitLog::written_after): instead of "did the
//! range's version move", it answers "did any post-snapshot commit
//! *touch the read word*" ([`RingCheck::Touched`]) or "commits landed
//! but none touched it" ([`RingCheck::Precise`] — the false-sharing
//! survivals that motivate MVCC).  The one-sided guarantee is
//! unchanged at every depth: probes may report false touches (bucket
//! aggregation, offset-hash collisions, regrain truncation — a
//! [`regrain`](CommitLog::regrain) merges a *full* footprint at its
//! flush version into every slot of the region, in both modes), but a
//! genuine dependence violation is flagged through every interleaving,
//! because a committer's ring merge precedes its dense stamp and
//! join-time validation runs after the relevant commit's
//! [`record`](CommitLog::record) returned.  Depth 1 (the standalone
//! default) allocates no rings and degenerates to exactly the
//! single-version behavior.
//!
//! ## Memory-ordering protocol (per shard)
//!
//! Soundness under concurrency relies on the order of operations, applied
//! independently per shard:
//!
//! * **Committer** (always executing logically earlier work): write the
//!   data words to main memory *first*, then call [`CommitLog::record`].
//!   Lock-free mode reserves-and-publishes the shard version with the
//!   `SeqCst` epoch `fetch_add` *before* CAS-stamping the touched slots;
//!   locked mode stamps under the shard lock first and publishes the
//!   epoch after.  Both orders keep the invariant that matters: **a
//!   snapshot at least the committer's version implies the committer's
//!   data is visible**, and **a stale read implies a snapshot below the
//!   version the validation-time slot carries**.
//! * **Reader** (a speculative thread): sample
//!   [`CommitLog::snapshot`]`(addr)` — the epoch of the shard owning the
//!   address's *region* — with acquire *before* loading the word from
//!   main memory.
//!
//! If the reader's sampled shard epoch is at least the committer's
//! version, the acquire edge (to the epoch store or the epoch RMW's
//! release sequence) guarantees the committed data was visible to the
//! read — no conflict.  If it is smaller, the read raced the commit and
//! validation flags it; at worst this is a conservative false positive
//! (the thread re-executes), never a missed conflict.
//!
//! ## Regrain protocol
//!
//! [`CommitLog::regrain`]`(region, new_grain_log2)` runs under the
//! owning shard's slow-path lock.  In lock-free mode:
//!
//! 1. flip the region's sequence word to **odd** (`SeqCst`) — in-flight
//!    fast-path committers will observe the change after their CAS pass
//!    and re-stamp; new ones hold off;
//! 2. publish the new grain (release) and only *then* reserve the
//!    regrain version `v` from the epoch (`SeqCst` `fetch_add`): a
//!    reader whose snapshot observes `>= v` therefore also observes the
//!    new grain and consults the right slot;
//! 3. raise **every floor-grain slot of the region** to at least `v`
//!    (`fetch_max` — never lowering a racing committer's newer stamp).
//!    Whichever grain a concurrent reader observed, arbitrarily stale,
//!    the slot it consults holds at least `v`, so every snapshot taken
//!    before the regrain conservatively fails validation (false sharing
//!    allowed, missed conflicts structurally impossible);
//! 4. collect-and-clear the region's registered readers (the caller
//!    dooms them eagerly — they are about to fail validation anyway,
//!    and value-predict retry can re-stamp them in place);
//! 5. flip the sequence word back to **even**, releasing the fast path.
//!
//! Locked mode keeps the pre-PR 7 order (stamp, collect, grain, epoch)
//! under the shard lock that also serializes its committers.
//!
//! Shard epochs advance independently, so versions are only comparable
//! *within* a shard.  That is safe because an address always maps to the
//! same region and hence the same shard: a read snapshot and the commits
//! that could invalidate it live on the same counter.  The global
//! [`CommitLog::epoch`] (the max over shards) is a monotone diagnostic
//! bound — it must **not** be used as a read snapshot, because a shard
//! lagging the max would make its next commit version look old.
//! Buffer-merge paths (`WordMap::weaken_version`, `GlobalBuffer::absorb`)
//! compare two snapshots *of the same word*, which is always same-shard
//! and therefore well-defined.
//!
//! ## Reader registry
//!
//! Alongside each range's version the log keeps a *reader registry*: a
//! bitmask of the thread ids (ranks `1..=`[`MAX_TRACKED_READERS`]) whose
//! read sets currently cover the range, plus — since the rank cap was
//! lifted — a per-range **spill set** (a hash set behind the shard's
//! lock stripe, dashmap-style) holding the ranks beyond the bitmask
//! window.  A committing writer can
//! [`take_readers`](CommitLog::take_readers) of the ranges it just
//! stamped and doom exactly those threads (*targeted dooming*) instead of
//! squashing every logical successor; enumeration is complete at any
//! thread count, so the old cascade fallback for >63-rank sweeps is gone.
//!
//! Registration stays **off the commit lock**: a tracked reader ORs its
//! bit into the range's mask with a single atomic RMW and then
//! (re-)reads the shard epoch — a seqlock-style double-checked read,
//! since a snapshot sampled *before* the registration could let a racing
//! committer both miss the bit and stay below the snapshot.  With the
//! registration sequenced first (all four operations `SeqCst`), a
//! committer whose [`take_readers`](CommitLog::take_readers) misses the
//! bit must have published its epoch before the reader's snapshot, so
//! the reader's snapshot covers the commit and no conflict existed.  A
//! spilled (rank > 63) reader inserts into the spill set *under its
//! stripe lock* and sets the sticky spill-marker bit before re-reading
//! the epoch; the lock's release/acquire edges plus the `SeqCst` epoch
//! accesses give the same guarantee.  Hence:
//!
//! * **Missed reader ⇒ impossible** *to go uncorrected*: either the
//!   committer enumerates the reader (eager doom), or the reader's
//!   snapshot already covers the commit (no conflict) — and join-time
//!   version validation remains the oracle regardless, so eager dooming
//!   is purely an accelerator and can never mask a genuine conflict.
//!   A regrain that re-indexes a range's registry slot can strand a
//!   registration on the old slot; the regrain's whole-region stamp
//!   guarantees that reader fails validation conservatively instead.
//! * **Stale reader ⇒ spurious doom only**: a bit left behind by a
//!   thread that already finished dooms whatever now runs on that rank;
//!   the doomed thread rolls back and re-executes — slower, never wrong.
//!   Staleness is bounded by clearing masks on enumeration and by the
//!   runtime unregistering a thread's reads when it is joined.
//!
//! ## Per-region telemetry
//!
//! The log keeps per-region counters — range stamps, conflict
//! attributions, suspected false sharing, value-predict retries — cheap
//! relaxed atomics fed by the stamp loop and by
//! [`note_conflict`](CommitLog::note_conflict) /
//! [`note_retry`](CommitLog::note_retry).
//! [`region_profiles`](CommitLog::region_profiles) snapshots them for the
//! grain controller (`mutls-adaptive`), which turns them into
//! [`regrain`](CommitLog::regrain) calls.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use crate::memory::Addr;

/// Monotone version assigned to a commit batch within a shard
/// (0 = "never written").
pub type CommitVersion = u64;

/// Identifier of one version-tracking range: `addr >> grain_log2` at the
/// owning region's current grain.
pub type RangeId = u64;

/// Identifier of one grain-control region: `addr >> region_log2`.
pub type RegionId = u64;

/// `grain_log2` of word-granular tracking (8-byte ranges): the exact,
/// false-sharing-free grain of the original design.
pub const WORD_GRAIN_LOG2: u32 = 3;

/// `grain_log2` of cache-line-granular tracking (64-byte ranges), the
/// default.
pub const LINE_GRAIN_LOG2: u32 = 6;

/// `grain_log2` of page-granular tracking (4096-byte ranges) — the
/// BOP-style coarse end of the spectrum.
pub const PAGE_GRAIN_LOG2: u32 = 12;

/// Log2 of the minimum grain-control region size (one 4 KiB page).  The
/// actual region size is `max(MIN_REGION_LOG2, grain_log2)` so a region
/// always covers at least one floor-grain range.
pub const MIN_REGION_LOG2: u32 = PAGE_GRAIN_LOG2;

/// Region size (log2 bytes) used by a log whose floor grain is
/// `grain_log2` — shared with the simulator so both layers coarsen
/// addresses identically.
pub fn region_log2_for_grain(grain_log2: u32) -> u32 {
    grain_log2.max(MIN_REGION_LOG2)
}

/// Log2 of the commit-lock timing sample rate: one batch in
/// `2^LOCK_SAMPLE_LOG2` is wall-clock timed and its lock-hold duration
/// scaled up into [`CommitLogStats::lock_ns`].
pub const LOCK_SAMPLE_LOG2: u32 = 3;

/// Ring depth the runtime's mvcc recovery mode uses by default (the
/// standalone log default stays 1 = no rings; see
/// [`CommitLogConfig::ring_depth`]).
pub const DEFAULT_RING_DEPTH: u32 = 4;

/// Largest ring depth [`CommitLogConfig::normalized`] allows — 64 slots
/// (512 B) of history per range is already far past the point of
/// diminishing precision returns.
pub const MAX_RING_DEPTH: u32 = 64;

/// Bits of a packed ring entry holding the written-word footprint; the
/// remaining 48 bits hold the commit version (a log that exhausts 2^48
/// versions saturates to [`RingCheck::Overflow`], never wraps).
const RING_FOOTPRINT_BITS: u32 = 16;

/// Footprint mask of a packed ring entry.
const RING_FOOTPRINT_MASK: u64 = (1 << RING_FOOTPRINT_BITS) - 1;

/// The "every word of the range may have been written" footprint —
/// merged by [`CommitLog::regrain`]'s conservative truncation.
const RING_FULL_FOOTPRINT: u64 = RING_FOOTPRINT_MASK;

/// First version a packed ring entry cannot represent.
const RING_VERSION_CAP: u64 = 1 << (64 - RING_FOOTPRINT_BITS);

/// Pack a ring entry.  Caller guarantees `version < RING_VERSION_CAP`.
fn ring_pack(version: CommitVersion, footprint: u64) -> u64 {
    (version << RING_FOOTPRINT_BITS) | (footprint & RING_FOOTPRINT_MASK)
}

/// The commit version of a packed ring entry.
fn ring_version(entry: u64) -> CommitVersion {
    entry >> RING_FOOTPRINT_BITS
}

/// The written-word footprint of a packed ring entry.
fn ring_footprint(entry: u64) -> u64 {
    entry & RING_FOOTPRINT_MASK
}

/// The footprint bit of the word holding `addr`: word index within the
/// range, folded to 16 bits.  Value-independent by design — collisions
/// (two words, one bit) only ever add conservatism.
fn footprint_bit(addr: Addr) -> u64 {
    1 << ((addr >> WORD_GRAIN_LOG2) & (RING_FOOTPRINT_BITS as u64 - 1))
}

/// Highest thread rank the reader registry tracks in the per-range
/// bitmask; ranks beyond it land in the per-range spill set (enumeration
/// stays complete — the pre-PR5 cascade fallback is gone).
pub const MAX_TRACKED_READERS: usize = 63;

/// Registry bit marking "a reader beyond [`MAX_TRACKED_READERS`] is in
/// this range's spill set": enumeration must consult the spill map.
const READER_SPILL_BIT: u64 = 1 << 63;

/// Registry bit of thread rank `rank` (0 = the non-speculative thread,
/// which never registers: it reads coherent main memory directly; ranks
/// past the bitmask window use the spill set, marked by
/// [`READER_SPILL_BIT`]).
fn reader_bit(rank: usize) -> u64 {
    match rank {
        0 => 0,
        r if r <= MAX_TRACKED_READERS => 1 << (r - 1),
        _ => READER_SPILL_BIT,
    }
}

/// The set of reader ranks enumerated from the registry for a batch of
/// ranges (see [`CommitLog::take_readers`]): a bitmask for ranks
/// `1..=`[`MAX_TRACKED_READERS`] plus an explicit (sorted) list of
/// spilled ranks beyond the window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReaderSet {
    bits: u64,
    /// Spilled ranks (> [`MAX_TRACKED_READERS`]), ascending, deduplicated.
    spilled: Vec<usize>,
}

impl ReaderSet {
    fn from_parts(bits: u64, mut spilled: Vec<usize>) -> Self {
        spilled.sort_unstable();
        spilled.dedup();
        ReaderSet {
            bits: bits & !READER_SPILL_BIT,
            spilled,
        }
    }

    /// True when no reader is registered.
    pub fn is_empty(&self) -> bool {
        self.bits == 0 && self.spilled.is_empty()
    }

    /// Number of reader ranks in the set (tracked and spilled).
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize + self.spilled.len()
    }

    /// Whether `rank` is in the set.
    pub fn contains(&self, rank: usize) -> bool {
        if rank == 0 {
            return false;
        }
        if rank <= MAX_TRACKED_READERS {
            self.bits & (1 << (rank - 1)) != 0
        } else {
            self.spilled.binary_search(&rank).is_ok()
        }
    }

    /// The reader ranks, ascending: the bitmask window first, then the
    /// spilled ranks.
    pub fn ranks(&self) -> impl Iterator<Item = usize> + '_ {
        let mut bits = self.bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let tz = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(tz + 1)
        })
        .chain(self.spilled.iter().copied())
    }
}

/// Answer of [`CommitLog::probe_written`]: what the version ring knows
/// about commits to `addr`'s range after the probed snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingCheck {
    /// No commit wrote the range after the snapshot (exactly
    /// [`written_after`](CommitLog::written_after)` == false`).
    Clean,
    /// Commits wrote the range after the snapshot, but the ring proves
    /// none of them touched the probed *word* — a precise pass that
    /// single-version validation would have doomed as false sharing.
    /// Only possible at `ring_depth > 1`.
    Precise,
    /// Some post-snapshot commit touched (or may have touched) the
    /// probed word; `newest_touch` is the newest ring version whose
    /// footprint covers it — the time-travel restamp target.
    Touched {
        /// Newest ring entry version whose footprint covers the word.
        newest_touch: CommitVersion,
    },
    /// The ring's history does not reach back to the snapshot (depth
    /// exceeded, bucket evicted, or version space exhausted): fall back
    /// to single-version conservatism.  Counted in
    /// [`CommitLogStats::ring_overflows`].
    Overflow,
}

impl RingCheck {
    /// Whether the probe proves the read is still valid (either nothing
    /// wrote the range, or nothing touched the word).
    pub fn is_valid(self) -> bool {
        matches!(self, RingCheck::Clean | RingCheck::Precise)
    }
}

/// Granularity and sharding of the commit log's version table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitLogConfig {
    /// Log2 of the **floor** range size in bytes; clamped to at least
    /// [`WORD_GRAIN_LOG2`] (a range can never be smaller than a word).
    /// The version table is allocated at this grain; per-region live
    /// grains may only coarsen from it (see [`CommitLog::regrain`]).
    pub grain_log2: u32,
    /// Number of independent shards; rounded up to a power of two, at
    /// least 1.
    pub shards: usize,
    /// Whether commits publish through the lock-free CAS fast path
    /// (the default) or serialize on the per-shard lock (the pre-PR 7
    /// protocol, kept for A/B comparison — see the `commitbench`
    /// sweep and the module docs for both protocols).
    pub lock_free: bool,
    /// Per-slot version-ring depth for MVCC validation (see the module
    /// docs): 1 (the default) allocates no rings and keeps exact
    /// single-version behavior; deeper rings let
    /// [`CommitLog::probe_written`] answer precisely whether the probed
    /// *word* was overwritten.  Clamped to `1..=`[`MAX_RING_DEPTH`].
    pub ring_depth: u32,
    /// Log2 of the ring's version-bucket width: `2^ring_bucket_log2`
    /// consecutive versions share one ring slot (footprints OR-merged),
    /// so a depth-`d` ring reaches `d * 2^ring_bucket_log2` versions
    /// back before overflowing.  Coarser buckets reach further at lower
    /// word precision.  Clamped to `0..=16`.
    pub ring_bucket_log2: u32,
}

impl Default for CommitLogConfig {
    fn default() -> Self {
        CommitLogConfig {
            grain_log2: LINE_GRAIN_LOG2,
            shards: 8,
            lock_free: true,
            ring_depth: 1,
            ring_bucket_log2: 6,
        }
    }
}

impl CommitLogConfig {
    /// Word-granular tracking (no false sharing) with the default shard
    /// count.
    pub fn word_grain() -> Self {
        CommitLogConfig {
            grain_log2: WORD_GRAIN_LOG2,
            ..Default::default()
        }
    }

    /// Cache-line-granular tracking (the default).
    pub fn line_grain() -> Self {
        Self::default()
    }

    /// Page-granular tracking.
    pub fn page_grain() -> Self {
        CommitLogConfig {
            grain_log2: PAGE_GRAIN_LOG2,
            ..Default::default()
        }
    }

    /// Set the range size as a log2 of bytes (builder style).
    pub fn grain_log2(mut self, grain_log2: u32) -> Self {
        self.grain_log2 = grain_log2;
        self
    }

    /// Set the shard count (builder style).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Serialize commits on the per-shard lock instead of the CAS fast
    /// path (builder style) — the pre-PR 7 protocol, kept for A/B
    /// throughput comparison and for the simulator's replay-stable cost
    /// model.
    pub fn locked(mut self) -> Self {
        self.lock_free = false;
        self
    }

    /// Set the commit-path mode explicitly (builder style): `true` for
    /// the lock-free CAS fast path (the default), `false` for the
    /// locked protocol.
    pub fn lock_free(mut self, lock_free: bool) -> Self {
        self.lock_free = lock_free;
        self
    }

    /// Set the MVCC version-ring depth (builder style); 1 disables the
    /// rings entirely.
    pub fn ring_depth(mut self, ring_depth: u32) -> Self {
        self.ring_depth = ring_depth;
        self
    }

    /// Set the ring version-bucket width as a log2 (builder style).
    pub fn ring_bucket_log2(mut self, ring_bucket_log2: u32) -> Self {
        self.ring_bucket_log2 = ring_bucket_log2;
        self
    }

    /// Floor range size in bytes.
    pub fn grain_bytes(&self) -> u64 {
        1u64 << self.grain_log2.max(WORD_GRAIN_LOG2)
    }

    /// The config with degenerate values clamped: grain at least a word,
    /// shard count a nonzero power of two.  [`CommitLog::with_config`]
    /// applies this automatically; other consumers of the raw pub fields
    /// (e.g. the simulator) should apply it too so one set of rules
    /// governs every layer.
    pub fn normalized(self) -> Self {
        CommitLogConfig {
            grain_log2: self.grain_log2.max(WORD_GRAIN_LOG2),
            shards: self.shards.max(1).next_power_of_two(),
            lock_free: self.lock_free,
            ring_depth: self.ring_depth.clamp(1, MAX_RING_DEPTH),
            ring_bucket_log2: self.ring_bucket_log2.min(16),
        }
    }
}

/// Aggregate commit-log activity counters, for throughput reporting
/// (see the harness `grain` / `graincontrol` sweeps).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CommitLogStats {
    /// Commit batches recorded (non-empty `record` calls).
    pub commits: u64,
    /// Range stamps *written* across all batches, cumulatively — the
    /// actual log traffic; coarser grains stamp fewer ranges per batch.
    /// (Distinct from [`CommitLog::stamped_ranges`], which counts ranges
    /// *currently* carrying a stamp; regrain flushes are counted in
    /// [`regrains`](Self::regrains), not here.)
    pub stamp_writes: u64,
    /// Estimated wall-clock nanoseconds of commit serialization
    /// (sampled: one batch in `2^LOCK_SAMPLE_LOG2` is timed, scaled
    /// up).  Locked mode: *waiting for plus holding* shard commit locks
    /// — queueing included deliberately, since lock contention is
    /// exactly what sharding relieves.  Lock-free mode: the
    /// reservation-plus-stamp section (same sampling), so the two modes
    /// stay comparable in the `commitbench` A/B.  On coarse-resolution
    /// clocks short sections may register as zero.
    pub lock_ns: u64,
    /// CAS retries on the lock-free stamp path, cumulative: same-slot
    /// `compare_exchange` losses plus whole-group re-stamps forced by a
    /// racing regrain's seqlock word.  Always 0 in locked mode.  The
    /// contention analogue of [`lock_ns`](Self::lock_ns): disjoint-range
    /// committers should keep it near zero at any thread count.
    pub cas_retries: u64,
    /// Regions whose grain the controller changed at runtime
    /// ([`CommitLog::regrain`] calls that actually flipped a grain).
    pub regrains: u64,
    /// Reader registrations that landed past the bitmask window and
    /// spilled into the per-range hash sets (each spill pays a shard
    /// `RwLock` write instead of one `fetch_or`) — the registry's slow
    /// path, surfaced so capacity pressure on
    /// [`MAX_TRACKED_READERS`] is visible in reports.
    pub reader_spills: u64,
    /// Version-ring probes that fell back to single-version
    /// conservatism because the ring's history did not reach the
    /// probed snapshot ([`RingCheck::Overflow`]) — the MVCC precision
    /// pressure signal.  Always 0 at `ring_depth` 1.
    pub ring_overflows: u64,
    /// Configured floor range size (log2 bytes), echoed for reports.
    pub grain_log2: u32,
    /// Configured shard count, echoed for reports.
    pub shards: usize,
    /// Configured (normalized) version-ring depth, echoed for reports.
    pub ring_depth: u32,
}

/// Per-region telemetry snapshot consumed by the grain controller (see
/// [`CommitLog::region_profiles`]).  Counters are cumulative since the
/// log was created or [`clear`](CommitLog::clear)ed; the controller
/// differences successive snapshots itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct RegionProfile {
    /// The region id (`addr >> region_log2`).
    pub region: RegionId,
    /// The region's current live grain (log2 bytes).
    pub grain_log2: u32,
    /// Range stamps written into this region (log traffic).
    pub stamps: u64,
    /// Conflicts attributed to this region's ranges
    /// ([`note_conflict`](CommitLog::note_conflict)).
    pub conflicts: u64,
    /// Conflicts classified as suspected false sharing — the signal that
    /// the region's grain, not genuine sharing, is dooming readers.
    pub false_sharing: u64,
    /// Value-predict retries that re-validated reads of this region
    /// ([`note_retry`](CommitLog::note_retry)): conflicts the current
    /// grain made cheap instead of fatal.
    pub retries: u64,
}

/// Per-region telemetry accumulators (all relaxed; they feed policy, not
/// correctness).
#[derive(Debug, Default)]
struct RegionCounters {
    stamps: AtomicU64,
    conflicts: AtomicU64,
    false_sharing: AtomicU64,
    retries: AtomicU64,
}

/// One independent slice of the version table (one stripe of regions).
#[derive(Debug)]
struct Shard {
    /// Version of this shard's most recent *published* commit batch.
    /// Locked mode stores it under the lock after stamping; lock-free
    /// mode `fetch_add`s it to reserve-and-publish in one `SeqCst` RMW
    /// (the release sequence readers synchronize with).
    epoch: AtomicU64,
    /// The striped **slow-path** lock: serializes `regrain`, `clear`
    /// and the other cold mutators against each other.  Lock-free
    /// committers never take it (they only observe the per-region
    /// sequence words); in locked mode it doubles as the old commit
    /// lock serializing every committer of the shard.
    slow_lock: Mutex<()>,
    /// Dense per-range versions for this shard's regions: region `r`
    /// (with `r & mask == shard index`) owns the slot block
    /// `[(r >> shard_bits) * slots_per_region, ..)`, one slot per
    /// floor-grain range; a coarser live grain uses the block's prefix.
    /// Lock-free mode raises slots monotonically via CAS; locked mode
    /// stores under the lock.
    dense: Vec<AtomicU64>,
    /// Packed MVCC version-ring entries, `ring_depth` per dense slot
    /// (slot `local` owns `rings[local * depth .. (local + 1) * depth]`,
    /// indexed by version bucket modulo depth).  Empty at depth 1 — the
    /// legacy layout pays nothing.  Published by CAS-merge *before* the
    /// dense version stamp, in both modes (see the module docs).
    rings: Vec<AtomicU64>,
    /// Sparse fallback for ranges beyond the dense window (always at the
    /// floor grain — out-of-window addresses are never regrained).
    /// Stamped with max-insert under the write lock: a slow path by
    /// construction, in both modes.
    sparse: RwLock<HashMap<RangeId, CommitVersion>>,
    /// Dense per-range reader bitmasks (same indexing as `dense`);
    /// registration/enumeration are lock-free atomic RMWs.
    readers_dense: Vec<AtomicU64>,
    /// Spill sets for ranks past the bitmask window, keyed by dense slot
    /// index (dashmap-style: the shard is the lock stripe).
    readers_spill_dense: RwLock<HashMap<usize, HashSet<usize>>>,
    /// Sparse reader-bitmask fallback for ranges beyond the dense
    /// window.  The values are atomics so registration is a `fetch_or`
    /// under the *read* lock — the write lock is only taken to insert a
    /// missing entry or to remove one.
    readers_sparse: RwLock<HashMap<RangeId, AtomicU64>>,
    /// Spill sets for sparse ranges.
    readers_spill_sparse: RwLock<HashMap<RangeId, HashSet<usize>>>,
}

impl Shard {
    fn new(dense_slots: usize, ring_slots: usize) -> Self {
        let mut dense = Vec::with_capacity(dense_slots);
        dense.resize_with(dense_slots, || AtomicU64::new(0));
        let mut rings = Vec::with_capacity(ring_slots);
        rings.resize_with(ring_slots, || AtomicU64::new(0));
        let mut readers_dense = Vec::with_capacity(dense_slots);
        readers_dense.resize_with(dense_slots, || AtomicU64::new(0));
        Shard {
            epoch: AtomicU64::new(0),
            slow_lock: Mutex::new(()),
            dense,
            rings,
            sparse: RwLock::new(HashMap::new()),
            readers_dense,
            readers_spill_dense: RwLock::new(HashMap::new()),
            readers_sparse: RwLock::new(HashMap::new()),
            readers_spill_sparse: RwLock::new(HashMap::new()),
        }
    }

    /// Raise a sparse range's version to at least `version` (never
    /// lower it — concurrent lock-free committers can reach the map out
    /// of reservation order).
    fn stamp_sparse_max(&self, range: RangeId, version: CommitVersion) {
        let mut sparse = self.sparse.write();
        let slot = sparse.entry(range).or_insert(0);
        *slot = (*slot).max(version);
    }
}

/// Where an address's version/registry entry lives right now.
enum Slot {
    /// Dense slot `local` of shard `shard` (the lock-free fast path).
    Dense { shard: usize, local: usize },
    /// Sparse floor-grain range of shard `shard`.
    Sparse { shard: usize, range: RangeId },
}

/// Append-only versioned record of every write published to main memory,
/// region-sharded with per-region live grains (see the module docs for
/// the protocol).
#[derive(Debug)]
pub struct CommitLog {
    config: CommitLogConfig,
    /// Log2 of the region size in bytes (`max(MIN_REGION_LOG2, grain)`).
    region_log2: u32,
    /// Floor-grain slots per region (`1 << (region_log2 - grain_log2)`).
    slots_per_region: usize,
    /// `shards.len() - 1`; shard of a region is `region & shard_mask`.
    shard_mask: u64,
    /// `log2(shards.len())`; a shard's n-th region block is region
    /// `region >> shard_bits`.
    shard_bits: u32,
    /// Dense regions per shard (every shard allocates the same number of
    /// region blocks, so the last stripe is dense everywhere).
    regions_per_shard: u64,
    shards: Vec<Shard>,
    /// Live grain of every dense region, indexed by region id.  Written
    /// only under the owning shard's slow-path lock; read lock-free
    /// (acquire) by snapshot/validation paths and — bracketed by the
    /// region's sequence word — by lock-free committers.
    region_grains: Vec<AtomicU32>,
    /// Per-region seqlock words guarding grain flips against lock-free
    /// committers (same indexing as `region_grains`): a regrain holds
    /// the word **odd** while it rebuilds the region; fast-path
    /// committers read it before and after their CAS pass and re-stamp
    /// on any movement.  They only observe it, never take the slow lock.
    region_seqs: Vec<AtomicU32>,
    /// Per-region telemetry, same indexing as `region_grains`.
    region_stats: Vec<RegionCounters>,
    /// Grain every region starts at (and returns to on
    /// [`clear`](Self::clear)); clamped to `[grain_log2, region_log2]`.
    initial_grain: u32,
    /// Commit batches recorded (monotone; survives shard distribution).
    commits: AtomicU64,
    /// Range stamps written across all batches.
    stamped: AtomicU64,
    /// Regions regrained (grain actually flipped).
    regrains: AtomicU64,
    /// Estimated nanoseconds of commit serialization (lock wait + hold):
    /// every `2^LOCK_SAMPLE_LOG2`-th batch is timed (two clock reads)
    /// and its duration scaled up, so the commit-throughput reporting
    /// the `grain` sweep is built on costs the hot publish path almost
    /// nothing; all counters use relaxed atomics.
    lock_ns: AtomicU64,
    /// Monotone batch counter driving the lock-time sampling.
    lock_samples: AtomicU64,
    /// Reader registrations that spilled past the bitmask window.
    reader_spills: AtomicU64,
    /// CAS retries on the lock-free stamp path (same-slot losses plus
    /// seqlock-forced re-stamps); relaxed, telemetry only.
    cas_retries: AtomicU64,
    /// Ring probes that fell back to single-version conservatism
    /// ([`RingCheck::Overflow`]); relaxed, telemetry only.
    ring_overflows: AtomicU64,
}

impl Default for CommitLog {
    fn default() -> Self {
        Self::new()
    }
}

impl CommitLog {
    /// Create an empty log with the default config and no dense window
    /// (every range goes through the sharded sparse maps — fine for tests
    /// and small address sets).
    pub fn new() -> Self {
        Self::with_config(CommitLogConfig::default(), 0)
    }

    /// Create a log with the default grain/shard config whose dense fast
    /// path covers addresses `[0, capacity_bytes)`.
    pub fn with_dense_bytes(capacity_bytes: u64) -> Self {
        Self::with_config(CommitLogConfig::default(), capacity_bytes)
    }

    /// Create a log with an explicit grain/shard config whose dense fast
    /// path covers `[0, capacity_bytes)` — size it to the main-memory
    /// arena so the whole program's traffic stamps lock-free with bounded
    /// memory (one version word per floor-grain range).  The capacity is
    /// rounded *up* to whole regions, so a trailing partial range or
    /// region is still dense.
    pub fn with_config(config: CommitLogConfig, capacity_bytes: u64) -> Self {
        let grain = config.normalized().grain_log2;
        Self::with_initial_grain(config, capacity_bytes, grain)
    }

    /// Like [`with_config`](Self::with_config), but every dense region
    /// starts at `initial_grain_log2` (clamped to
    /// `[grain_log2, region_log2]`) instead of the floor grain — the
    /// grain controller's optimistic-coarse starting point.
    pub fn with_initial_grain(
        config: CommitLogConfig,
        capacity_bytes: u64,
        initial_grain_log2: u32,
    ) -> Self {
        let config = config.normalized();
        let shard_count = config.shards;
        let region_log2 = region_log2_for_grain(config.grain_log2);
        let slots_per_region = 1usize << (region_log2 - config.grain_log2);
        let dense_regions = capacity_bytes.div_ceil(1u64 << region_log2);
        // Every shard covers regions up to the next multiple of the shard
        // count, so the last partial stripe is dense everywhere.
        let regions_per_shard = dense_regions.div_ceil(shard_count as u64);
        let dense_slots = if dense_regions == 0 {
            0
        } else {
            regions_per_shard as usize * slots_per_region
        };
        // Rings are only materialized past depth 1, so the legacy
        // single-version layout pays no extra memory.
        let ring_slots = if config.ring_depth > 1 {
            dense_slots * config.ring_depth as usize
        } else {
            0
        };
        let shards = (0..shard_count)
            .map(|_| Shard::new(dense_slots, ring_slots))
            .collect();
        let region_count = regions_per_shard as usize * shard_count;
        let initial_grain = initial_grain_log2.clamp(config.grain_log2, region_log2);
        let mut region_grains = Vec::with_capacity(region_count);
        region_grains.resize_with(region_count, || AtomicU32::new(initial_grain));
        let mut region_seqs = Vec::with_capacity(region_count);
        region_seqs.resize_with(region_count, || AtomicU32::new(0));
        let mut region_stats = Vec::with_capacity(region_count);
        region_stats.resize_with(region_count, RegionCounters::default);
        CommitLog {
            config,
            region_log2,
            slots_per_region,
            shard_mask: (shard_count as u64) - 1,
            shard_bits: shard_count.trailing_zeros(),
            regions_per_shard,
            shards,
            region_grains,
            region_seqs,
            region_stats,
            initial_grain,
            commits: AtomicU64::new(0),
            stamped: AtomicU64::new(0),
            regrains: AtomicU64::new(0),
            lock_ns: AtomicU64::new(0),
            lock_samples: AtomicU64::new(0),
            reader_spills: AtomicU64::new(0),
            cas_retries: AtomicU64::new(0),
            ring_overflows: AtomicU64::new(0),
        }
    }

    /// The grain/shard configuration this log runs with (`grain_log2` is
    /// the floor grain).
    pub fn config(&self) -> CommitLogConfig {
        self.config
    }

    /// Log2 of the grain-control region size in bytes.
    pub fn region_log2(&self) -> u32 {
        self.region_log2
    }

    /// The region covering `addr`.
    pub fn region_of(&self, addr: Addr) -> RegionId {
        addr >> self.region_log2
    }

    /// The live grain (log2 bytes) of `region` — the configured floor
    /// grain for regions beyond the dense window, which are never
    /// regrained.
    pub fn grain_of_region(&self, region: RegionId) -> u32 {
        match usize::try_from(region) {
            Ok(idx) if idx < self.region_grains.len() => {
                self.region_grains[idx].load(Ordering::Acquire)
            }
            _ => self.config.grain_log2,
        }
    }

    /// The live grain (log2 bytes) tracking `addr` right now.
    pub fn grain_of(&self, addr: Addr) -> u32 {
        self.grain_of_region(self.region_of(addr))
    }

    /// The range covering `addr` at its region's current grain.
    pub fn range_of(&self, addr: Addr) -> RangeId {
        addr >> self.grain_of(addr)
    }

    fn shard_of_region(&self, region: RegionId) -> usize {
        (region & self.shard_mask) as usize
    }

    /// Whether `region` is inside the dense (lock-free, regrainable)
    /// window.
    fn region_is_dense(&self, region: RegionId) -> bool {
        (region >> self.shard_bits) < self.regions_per_shard
    }

    /// Locate `addr`'s slot at grain `grain_log2`.
    fn slot_at(&self, addr: Addr, grain_log2: u32) -> Slot {
        let region = self.region_of(addr);
        let shard = self.shard_of_region(region);
        if self.region_is_dense(region) {
            let block = (region >> self.shard_bits) as usize * self.slots_per_region;
            let offset = addr & ((1u64 << self.region_log2) - 1);
            Slot::Dense {
                shard,
                local: block + (offset >> grain_log2) as usize,
            }
        } else {
            Slot::Sparse {
                shard,
                range: addr >> self.config.grain_log2,
            }
        }
    }

    /// Locate `addr`'s slot at its region's current grain.
    fn slot_of(&self, addr: Addr) -> Slot {
        self.slot_at(addr, self.grain_of(addr))
    }

    /// Whether `addr` is covered by the dense (lock-free) version window.
    pub fn dense_covers(&self, addr: Addr) -> bool {
        self.region_is_dense(self.region_of(addr))
    }

    /// The read snapshot for `addr`: the current epoch of the shard
    /// owning the address's region (acquire).
    ///
    /// Speculative readers sample this *before* loading the word from
    /// main memory and stamp the read-set entry with it; join-time
    /// validation compares it against [`version_of`](Self::version_of) on
    /// the same shard counter.  The shard is determined by the *region*,
    /// never the grain, so snapshots survive regrains.
    pub fn snapshot(&self, addr: Addr) -> CommitVersion {
        self.shards[self.shard_of_region(self.region_of(addr))]
            .epoch
            .load(Ordering::Acquire)
    }

    /// Version of the last commit that wrote any word of `addr`'s range
    /// (0 = never written through the log; a regrain of the region counts
    /// as a conservative whole-region write).
    pub fn version_of(&self, addr: Addr) -> CommitVersion {
        match self.slot_of(addr) {
            Slot::Dense { shard, local } => self.shards[shard].dense[local].load(Ordering::Acquire),
            Slot::Sparse { shard, range } => self.shards[shard]
                .sparse
                .read()
                .get(&range)
                .copied()
                .unwrap_or(0),
        }
    }

    /// True when a commit wrote `addr`'s *range* after a read of `addr`
    /// stamped with `read_version` — the (range-conservative) dependence
    /// violation condition.  May flag false sharing (a different word of
    /// the same range, or a conservative regrain flush); never misses a
    /// genuine conflict.
    pub fn written_after(&self, addr: Addr, read_version: CommitVersion) -> bool {
        self.version_of(addr) > read_version
    }

    /// The configured (normalized) version-ring depth; 1 = no rings.
    pub fn ring_depth(&self) -> u32 {
        self.config.ring_depth
    }

    /// Probe the version ring of `addr`'s range: did any commit after
    /// `read_version` touch the *word* holding `addr`?
    ///
    /// Never less conservative than
    /// [`written_after`](Self::written_after): a genuine post-snapshot
    /// write of the word always yields [`RingCheck::Touched`] or
    /// [`RingCheck::Overflow`] (a committer ring-merges before its
    /// dense stamp, and validation runs after the relevant commit's
    /// [`record`](Self::record) returned — the same join-ordering
    /// contract the single-version path relies on).  May be *more*
    /// precise: post-snapshot commits to other words of the range yield
    /// [`RingCheck::Precise`] instead of a false-sharing doom.  At
    /// depth 1, for sparse ranges, and on overflow it degenerates to
    /// the single-version answer.
    pub fn probe_written(&self, addr: Addr, read_version: CommitVersion) -> RingCheck {
        let (shard_idx, local) = match self.slot_of(addr) {
            Slot::Dense { shard, local } => (shard, local),
            Slot::Sparse { shard, range } => {
                // Sparse ranges keep no history: exact legacy behavior.
                let cur = self.shards[shard]
                    .sparse
                    .read()
                    .get(&range)
                    .copied()
                    .unwrap_or(0);
                return if cur > read_version {
                    RingCheck::Touched { newest_touch: cur }
                } else {
                    RingCheck::Clean
                };
            }
        };
        let shard = &self.shards[shard_idx];
        let cur = shard.dense[local].load(Ordering::Acquire);
        if cur <= read_version {
            return RingCheck::Clean;
        }
        let depth = self.config.ring_depth as u64;
        if depth <= 1 || shard.rings.is_empty() {
            return RingCheck::Touched { newest_touch: cur };
        }
        if cur >= RING_VERSION_CAP {
            // Version space exhausted: entries past the cap were never
            // published, so the ring cannot be trusted.
            self.ring_overflows.fetch_add(1, Ordering::Relaxed);
            return RingCheck::Overflow;
        }
        let bucket_log2 = self.config.ring_bucket_log2;
        let cur_bucket = cur >> bucket_log2;
        let read_bucket = read_version >> bucket_log2;
        if cur_bucket - read_bucket >= depth {
            self.ring_overflows.fetch_add(1, Ordering::Relaxed);
            return RingCheck::Overflow;
        }
        let my_bit = footprint_bit(addr);
        let mut newest_touch = 0;
        for bucket in read_bucket..=cur_bucket {
            let idx = local * depth as usize + (bucket % depth) as usize;
            let entry = shard.rings[idx].load(Ordering::Acquire);
            let entry_bucket = ring_version(entry) >> bucket_log2;
            if entry_bucket < bucket {
                // No commit of this bucket published here.  (One that
                // races this probe mid-merge reserved a version above
                // `cur` and is not a predecessor — the join ordering
                // puts every relevant commit's merge before the probe.)
                continue;
            }
            if entry_bucket > bucket {
                // The bucket's history was evicted by a newer one:
                // conservative fallback.
                self.ring_overflows.fetch_add(1, Ordering::Relaxed);
                return RingCheck::Overflow;
            }
            let entry_version = ring_version(entry);
            if entry_version <= read_version {
                // Every merge into this bucket so far predates the
                // snapshot (the entry version is the bucket's max).
                continue;
            }
            if ring_footprint(entry) & my_bit != 0 {
                // The bucket's footprint covers the probed word.  (It
                // is OR-aggregated across the bucket, so the touch may
                // predate the snapshot — conservative, never missed.)
                newest_touch = newest_touch.max(entry_version);
            }
        }
        if newest_touch > 0 {
            RingCheck::Touched { newest_touch }
        } else {
            RingCheck::Precise
        }
    }

    /// CAS-merge a commit's `(version, footprint)` into slot `local`'s
    /// ring, **before** the dense version stamp (so a probe that sees
    /// the raised slot sees the ring entry too, under the join-ordering
    /// contract).  Same bucket: max the version, OR the footprint;
    /// older bucket: replace; newer bucket already present: leave it —
    /// the displaced bucket's validators fall back conservatively.
    fn ring_merge(&self, shard: &Shard, local: usize, version: CommitVersion, footprint: u64) {
        let depth = self.config.ring_depth as u64;
        if depth <= 1 || shard.rings.is_empty() || version >= RING_VERSION_CAP {
            return;
        }
        let bucket_log2 = self.config.ring_bucket_log2;
        let bucket = version >> bucket_log2;
        let slot = &shard.rings[local * depth as usize + (bucket % depth) as usize];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let cur_bucket = ring_version(cur) >> bucket_log2;
            let proposed = if cur_bucket == bucket {
                ring_pack(
                    ring_version(cur).max(version),
                    ring_footprint(cur) | footprint,
                )
            } else if cur_bucket < bucket {
                ring_pack(version, footprint)
            } else {
                return;
            };
            if proposed == cur {
                return;
            }
            match slot.compare_exchange_weak(cur, proposed, Ordering::Release, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The maximum shard epoch (acquire per shard) — a monotone bound for
    /// diagnostics.  **Not** a valid read snapshot: shard counters
    /// advance independently, so use [`snapshot`](Self::snapshot) when
    /// stamping reads.
    pub fn epoch(&self) -> CommitVersion {
        self.shards
            .iter()
            .map(|s| s.epoch.load(Ordering::Acquire))
            .max()
            .unwrap_or(0)
    }

    // ----- commit path ------------------------------------------------

    /// Record one commit batch covering `addrs` and return the largest
    /// shard version the batch published (the current [`epoch`](Self::epoch)
    /// for an empty batch, which records nothing).
    ///
    /// The caller must have already written the data words to main memory
    /// (see the module-level ordering protocol).  The batch's addresses
    /// are grouped by shard (a region-level property, independent of any
    /// concurrent regrain).  In lock-free mode each shard's version is
    /// reserved-and-published with one `SeqCst` `fetch_add` and the
    /// touched slots raised by CAS under the per-region seqlock words;
    /// in locked mode each involved shard is locked *one at a time*
    /// (never nested, so committers cannot deadlock), stamped, and its
    /// epoch published under the lock.
    pub fn record<I: IntoIterator<Item = Addr>>(&self, addrs: I) -> CommitVersion {
        self.record_counted(addrs).0
    }

    /// Like [`record`](Self::record), but also return the number of CAS
    /// retries this batch paid on the lock-free stamp path (same-slot
    /// `compare_exchange` losses plus seqlock-forced re-stamps; always 0
    /// in locked mode) — the runtime surfaces it per commit as a
    /// `CommitCasRetry` trace event.
    pub fn record_counted<I: IntoIterator<Item = Addr>>(&self, addrs: I) -> (CommitVersion, u64) {
        let mut iter = addrs.into_iter();
        let Some(first) = iter.next() else {
            return (self.epoch(), 0);
        };
        let mut addrs: Vec<Addr> = iter.collect();
        if addrs.is_empty() {
            // Single-address batch: the non-speculative direct-store fast
            // path — one shard, no grouping allocation.
            return self.record_single(first);
        }
        addrs.push(first);
        // Sorting by (shard, addr) groups each shard's addresses into one
        // contiguous run, so the publish loop below walks slices of this
        // single Vec — no per-shard bucket allocation on the commit path.
        // Within a run addresses ascend, so equal ranges are adjacent and
        // the stamp walk can deduplicate by slot.
        let region_log2 = self.region_log2;
        let mask = self.shard_mask;
        addrs.sort_unstable_by_key(|a| ((a >> region_log2) & mask, *a));
        addrs.dedup();
        self.commits.fetch_add(1, Ordering::Relaxed);
        let sample = self.lock_time_sampled();
        let mut max_version = 0;
        let mut retries = 0u64;
        let mut start = 0;
        while start < addrs.len() {
            let shard_idx = self.shard_of_region(self.region_of(addrs[start]));
            let mut end = start + 1;
            while end < addrs.len() && self.shard_of_region(self.region_of(addrs[end])) == shard_idx
            {
                end += 1;
            }
            let shard = &self.shards[shard_idx];
            let started = sample.then(Instant::now);
            let version = if self.config.lock_free {
                self.publish_run_lock_free(shard, &addrs[start..end], &mut retries)
            } else {
                self.publish_run_locked(shard, &addrs[start..end])
            };
            if let Some(started) = started {
                self.lock_ns.fetch_add(
                    (started.elapsed().as_nanos() as u64) << LOCK_SAMPLE_LOG2,
                    Ordering::Relaxed,
                );
            }
            max_version = max_version.max(version);
            start = end;
        }
        if retries > 0 {
            self.cas_retries.fetch_add(retries, Ordering::Relaxed);
        }
        (max_version, retries)
    }

    /// Locked-mode publish of one shard's (sorted, deduplicated) address
    /// run: stamp under the shard lock, then publish the epoch — the
    /// pre-PR 7 protocol, kept behind [`CommitLogConfig::locked`].
    fn publish_run_locked(&self, shard: &Shard, run: &[Addr]) -> CommitVersion {
        let _guard = shard.slow_lock.lock();
        let version = shard.epoch.load(Ordering::Relaxed) + 1;
        let mut stamped = 0u64;
        // Dedup key: the concrete slot, not the numeric range id —
        // range ids of *different regions at different grains* can
        // collide numerically.  Same-slot addresses are adjacent, so
        // their ring footprint accumulates in `pending` and the slot is
        // published once (ring merge first, then the version store).
        let mut pending: Option<(usize, u64)> = None;
        let mut last_sparse: Option<RangeId> = None;
        let mut cached: Option<(RegionId, u32)> = None;
        for &addr in run {
            let region = self.region_of(addr);
            let grain = match cached {
                Some((r, g)) if r == region => g,
                _ => {
                    // Read the live grain inside the commit lock:
                    // regrains flip it under this same lock, so the
                    // stamp below always lands on a live slot.
                    let g = self.grain_of_region(region);
                    cached = Some((region, g));
                    g
                }
            };
            match self.slot_at(addr, grain) {
                Slot::Dense { local, .. } => {
                    if let Some((l, footprint)) = &mut pending {
                        if *l == local {
                            *footprint |= footprint_bit(addr);
                            continue;
                        }
                        let (l, footprint) = (*l, *footprint);
                        self.ring_merge(shard, l, version, footprint);
                        shard.dense[l].store(version, Ordering::Relaxed);
                    }
                    pending = Some((local, footprint_bit(addr)));
                    self.bump_region_stamps(region);
                }
                Slot::Sparse { range, .. } => {
                    if last_sparse == Some(range) {
                        continue;
                    }
                    last_sparse = Some(range);
                    shard.stamp_sparse_max(range, version);
                }
            }
            stamped += 1;
        }
        if let Some((local, footprint)) = pending.take() {
            self.ring_merge(shard, local, version, footprint);
            shard.dense[local].store(version, Ordering::Relaxed);
        }
        self.stamped.fetch_add(stamped, Ordering::Relaxed);
        // SeqCst (a release store plus SC ordering): the reader
        // registry's missed-reader argument needs the epoch publish
        // and the subsequent `take_readers` swap to be totally
        // ordered against registration (see the module docs).
        shard.epoch.store(version, Ordering::SeqCst);
        version
    }

    /// Lock-free publish of one shard's (sorted, deduplicated) address
    /// run.  Reserve-and-publish the version with one `SeqCst`
    /// `fetch_add`, then raise each touched slot by CAS, bracketing
    /// every region's stamps with its seqlock word so a racing regrain
    /// forces a re-stamp at the then-current grain (see the module
    /// docs for why each step is sound).
    fn publish_run_lock_free(
        &self,
        shard: &Shard,
        run: &[Addr],
        retries: &mut u64,
    ) -> CommitVersion {
        let version = shard.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let mut stamped = 0u64;
        // Addresses ascend within the run, so each region's addresses
        // form one contiguous subgroup — the unit the seqlock check
        // brackets (a regrain rebuilds exactly one region).
        let mut start = 0;
        while start < run.len() {
            let region = self.region_of(run[start]);
            let mut end = start + 1;
            while end < run.len() && self.region_of(run[end]) == region {
                end += 1;
            }
            stamped +=
                self.stamp_region_group_cas(shard, region, &run[start..end], version, retries);
            start = end;
        }
        self.stamped.fetch_add(stamped, Ordering::Relaxed);
        version
    }

    /// CAS-stamp one region's (sorted, deduplicated) addresses with
    /// `version` under the region's seqlock word; returns the number of
    /// distinct slots stamped.  Spins while a regrain holds the word
    /// odd, re-stamps if it moved across the pass.
    fn stamp_region_group_cas(
        &self,
        shard: &Shard,
        region: RegionId,
        group: &[Addr],
        version: CommitVersion,
        retries: &mut u64,
    ) -> u64 {
        if !self.region_is_dense(region) {
            // Sparse fallback: never regrained, no seqlock word — a
            // max-insert under the stripe's write lock (the slow path
            // by design).
            let mut stamped = 0u64;
            let mut last: Option<RangeId> = None;
            for &addr in group {
                let range = addr >> self.config.grain_log2;
                if last == Some(range) {
                    continue;
                }
                last = Some(range);
                shard.stamp_sparse_max(range, version);
                stamped += 1;
            }
            return stamped;
        }
        let seq = &self.region_seqs[region as usize];
        loop {
            let before = seq.load(Ordering::SeqCst);
            if before & 1 == 1 {
                // A regrain is rebuilding this region: wait it out
                // (observe only — fast-path committers never take the
                // slow lock).
                std::hint::spin_loop();
                std::thread::yield_now();
                continue;
            }
            // The grain read is guarded by the seqlock bracket, not a
            // lock: if a regrain flips it mid-pass the re-check below
            // fails and the pass redoes at the then-current grain.
            let grain = self.grain_of_region(region);
            let mut stamped = 0u64;
            // Adjacent same-slot addresses accumulate one footprint (a
            // coarse range holds many words, each its own ring bit), so
            // the flush below publishes the whole slot's footprint in
            // one ring merge before the one dense CAS.
            let mut pending: Option<(usize, u64)> = None;
            let flush = |pending: &mut Option<(usize, u64)>, retries: &mut u64| {
                let Some((local, footprint)) = pending.take() else {
                    return;
                };
                // Ring first (see `ring_merge`), then the monotone
                // CAS-max: a slot already at or above `version` was
                // raised by a concurrent later commit (or a regrain
                // flush) — the stamp is free, never lowered.
                self.ring_merge(shard, local, version, footprint);
                let slot = &shard.dense[local];
                let mut cur = slot.load(Ordering::Relaxed);
                while cur < version {
                    match slot.compare_exchange_weak(
                        cur,
                        version,
                        Ordering::Release,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(actual) => {
                            *retries += 1;
                            cur = actual;
                        }
                    }
                }
            };
            for &addr in group {
                let Slot::Dense { local, .. } = self.slot_at(addr, grain) else {
                    unreachable!("dense region resolved to a sparse slot");
                };
                match &mut pending {
                    Some((l, footprint)) if *l == local => {
                        *footprint |= footprint_bit(addr);
                        continue;
                    }
                    _ => {}
                }
                flush(&mut pending, retries);
                pending = Some((local, footprint_bit(addr)));
                stamped += 1;
            }
            flush(&mut pending, retries);
            if seq.load(Ordering::SeqCst) == before {
                // No regrain raced the pass: every stamp landed on a
                // live slot of the observed grain.
                self.bump_region_stamps_by(region, stamped);
                return stamped;
            }
            // A regrain moved the grain under the pass: its flush
            // already raised every floor slot, but our stamps may sit
            // on dead slots — redo at the new grain.
            *retries += 1;
        }
    }

    /// Whether this batch's lock-hold time should be measured: every
    /// `2^LOCK_SAMPLE_LOG2`-th batch is timed and its duration scaled up,
    /// so the hot publish path (every non-speculative store goes through
    /// [`record_word`](Self::record_word)) pays the two clock reads only
    /// on a small fraction of commits.
    fn lock_time_sampled(&self) -> bool {
        self.lock_samples.fetch_add(1, Ordering::Relaxed) & ((1 << LOCK_SAMPLE_LOG2) - 1) == 0
    }

    fn bump_region_stamps(&self, region: RegionId) {
        self.bump_region_stamps_by(region, 1);
    }

    fn bump_region_stamps_by(&self, region: RegionId, n: u64) {
        if n == 0 {
            return;
        }
        if let Ok(idx) = usize::try_from(region) {
            if idx < self.region_stats.len() {
                self.region_stats[idx]
                    .stamps
                    .fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    fn record_single(&self, addr: Addr) -> (CommitVersion, u64) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.stamped.fetch_add(1, Ordering::Relaxed);
        let sample = self.lock_time_sampled();
        let region = self.region_of(addr);
        let shard_idx = self.shard_of_region(region);
        let shard = &self.shards[shard_idx];
        let started = sample.then(Instant::now);
        let mut retries = 0u64;
        let version = if self.config.lock_free {
            let version = shard.epoch.fetch_add(1, Ordering::SeqCst) + 1;
            // One address is a one-element region group: the seqlock
            // bracket, grain read, and CAS-max all apply unchanged.
            let stamped =
                self.stamp_region_group_cas(shard, region, &[addr], version, &mut retries);
            debug_assert_eq!(stamped, 1);
            if retries > 0 {
                self.cas_retries.fetch_add(retries, Ordering::Relaxed);
            }
            version
        } else {
            let _guard = shard.slow_lock.lock();
            let version = shard.epoch.load(Ordering::Relaxed) + 1;
            // Grain read inside the lock (see `publish_run_locked`).
            match self.slot_at(addr, self.grain_of_region(region)) {
                Slot::Dense { local, .. } => {
                    self.ring_merge(shard, local, version, footprint_bit(addr));
                    shard.dense[local].store(version, Ordering::Relaxed);
                    self.bump_region_stamps(region);
                }
                Slot::Sparse { range, .. } => {
                    shard.stamp_sparse_max(range, version);
                }
            }
            // SeqCst for the reader-registry ordering (see `record`).
            shard.epoch.store(version, Ordering::SeqCst);
            version
        };
        if let Some(started) = started {
            self.lock_ns.fetch_add(
                (started.elapsed().as_nanos() as u64) << LOCK_SAMPLE_LOG2,
                Ordering::Relaxed,
            );
        }
        (version, retries)
    }

    /// Record a single-word commit (the non-speculative direct-store path).
    pub fn record_word(&self, addr: Addr) -> CommitVersion {
        self.record_single(addr).0
    }

    // ----- regrain ----------------------------------------------------

    /// Rebuild `region`'s slice of the version table at
    /// `new_grain_log2` (clamped to `[grain_log2, region_log2]`), under
    /// the owning shard's slow-path lock, with an epoch bump — the
    /// grain-control *mechanism* (see the module-level regrain protocol).
    ///
    /// Every floor-grain slot of the region is stamped with the new
    /// version, so **every** outstanding snapshot of the region
    /// conservatively fails its next validation regardless of which grain
    /// it was taken under: false sharing allowed, missed conflicts
    /// structurally impossible, for any regrain interleaving.
    ///
    /// Returns the published version plus the region's registered readers
    /// (collected-and-cleared): they are about to fail validation anyway,
    /// so the caller should doom them eagerly — value-predict retry can
    /// still re-stamp them in place.  Regions beyond the dense window are
    /// not regrainable; the call is a no-op returning an empty set.
    pub fn regrain(&self, region: RegionId, new_grain_log2: u32) -> (CommitVersion, ReaderSet) {
        let new_grain = new_grain_log2.clamp(self.config.grain_log2, self.region_log2);
        if !self.region_is_dense(region) {
            return (0, ReaderSet::default());
        }
        let idx = region as usize;
        let shard_idx = self.shard_of_region(region);
        let shard = &self.shards[shard_idx];
        let _guard = shard.slow_lock.lock();
        if self.region_grains[idx].load(Ordering::Relaxed) == new_grain {
            return (shard.epoch.load(Ordering::Relaxed), ReaderSet::default());
        }
        let block = (region >> self.shard_bits) as usize * self.slots_per_region;
        let version;
        let mut bits = 0u64;
        if self.config.lock_free {
            // 1. Hold the region's seqlock word odd: fast-path committers
            //    mid-pass will fail their re-check and redo; new ones
            //    hold off until step 5.
            self.region_seqs[idx].fetch_add(1, Ordering::SeqCst);
            // 2. New grain first (release), then the version reservation
            //    (SeqCst fetch_add — which also publishes the epoch): a
            //    reader whose snapshot observes `>= version` therefore
            //    also observes the new grain and consults a live slot.
            self.region_grains[idx].store(new_grain, Ordering::Release);
            version = shard.epoch.fetch_add(1, Ordering::SeqCst) + 1;
            for local in block..block + self.slots_per_region {
                // 3. Conservative whole-region flush: every slot any
                //    (however stale) grain observation could index now
                //    holds at least `version` — fetch_max, never lowering
                //    a racing committer's newer stamp.  The ring merge
                //    (full footprint, before the version flush) is the
                //    MVCC truncation: no pre-regrain read of the region
                //    can probe Precise past this version.
                self.ring_merge(shard, local, version, RING_FULL_FOOTPRINT);
                shard.dense[local].fetch_max(version, Ordering::AcqRel);
                // 4. Collect-and-clear the readers (sound after the epoch
                //    bump: a registration this swap misses re-reads the
                //    epoch afterwards in the SC order, so its snapshot
                //    covers the regrain).
                bits |= shard.readers_dense[local].swap(0, Ordering::SeqCst);
            }
        } else {
            version = shard.epoch.load(Ordering::Relaxed) + 1;
            for local in block..block + self.slots_per_region {
                // Conservative whole-region flush: every slot any (however
                // stale) grain observation could index now holds `version`
                // (ring truncation first, as in lock-free mode).
                self.ring_merge(shard, local, version, RING_FULL_FOOTPRINT);
                shard.dense[local].store(version, Ordering::Relaxed);
                bits |= shard.readers_dense[local].swap(0, Ordering::SeqCst);
            }
        }
        let mut spilled = Vec::new();
        if bits & READER_SPILL_BIT != 0 {
            let mut spill = shard.readers_spill_dense.write();
            for local in block..block + self.slots_per_region {
                if let Some(set) = spill.remove(&local) {
                    spilled.extend(set);
                }
            }
        }
        if self.config.lock_free {
            // 5. Back to even: release the fast path.
            self.region_seqs[idx].fetch_add(1, Ordering::SeqCst);
        } else {
            // Grain first (release), then the epoch (SeqCst): a reader
            // that observes the new epoch observes the new grain; a
            // reader on the old grain reads a slot stamped `version`
            // above.
            self.region_grains[idx].store(new_grain, Ordering::Release);
            shard.epoch.store(version, Ordering::SeqCst);
        }
        self.regrains.fetch_add(1, Ordering::Relaxed);
        (version, ReaderSet::from_parts(bits, spilled))
    }

    // ----- reader registry --------------------------------------------

    /// Register thread `rank` as a reader of `addr`'s range and return the
    /// read snapshot to stamp the read-set entry with.
    ///
    /// This is the seqlock-style protocol of the module docs: the
    /// registration lands first (one `SeqCst` RMW for tracked ranks, a
    /// spill-set insert plus the sticky marker bit for ranks past the
    /// window — both off the commit lock) and the shard epoch is
    /// (re-)read *after* the registration is globally visible.  A
    /// committer whose [`take_readers`](Self::take_readers) misses the
    /// registration must therefore have published its epoch before this
    /// snapshot, so the snapshot covers the commit and the read is not
    /// stale.  Rank 0 (the non-speculative thread) registers nothing.
    pub fn register_reader(&self, addr: Addr, rank: usize) -> CommitVersion {
        let region = self.region_of(addr);
        let shard = &self.shards[self.shard_of_region(region)];
        let bit = reader_bit(rank);
        if bit != 0 {
            if bit == READER_SPILL_BIT {
                self.reader_spills.fetch_add(1, Ordering::Relaxed);
            }
            match self.slot_of(addr) {
                Slot::Dense { local, .. } => {
                    if bit == READER_SPILL_BIT {
                        shard
                            .readers_spill_dense
                            .write()
                            .entry(local)
                            .or_default()
                            .insert(rank);
                    }
                    shard.readers_dense[local].fetch_or(bit, Ordering::SeqCst);
                }
                Slot::Sparse { range, .. } => {
                    if bit == READER_SPILL_BIT {
                        shard
                            .readers_spill_sparse
                            .write()
                            .entry(range)
                            .or_default()
                            .insert(rank);
                    }
                    // Registration is a fetch_or under the *read* lock —
                    // the write lock is only paid once, to materialize a
                    // missing entry (the `fetch_or` keeps the SeqCst slot
                    // in the registry's ordering argument either way).
                    let registered = shard
                        .readers_sparse
                        .read()
                        .get(&range)
                        .map(|bits| {
                            bits.fetch_or(bit, Ordering::SeqCst);
                        })
                        .is_some();
                    if !registered {
                        shard
                            .readers_sparse
                            .write()
                            .entry(range)
                            .or_insert_with(|| AtomicU64::new(0))
                            .fetch_or(bit, Ordering::SeqCst);
                    }
                }
            }
        }
        shard.epoch.load(Ordering::SeqCst)
    }

    /// Remove thread `rank` from the reader registry of every range
    /// covering `addrs` (a joined thread's read set — committed or
    /// squashed, its registrations are dead and would only cause spurious
    /// dooms).  The spill marker stays sticky while other spilled ranks
    /// remain; it is cleared when the last one leaves.
    pub fn unregister_reader<I: IntoIterator<Item = Addr>>(&self, addrs: I, rank: usize) {
        let bit = reader_bit(rank);
        if bit == 0 {
            return;
        }
        let mut last_dense: Option<(usize, usize)> = None;
        let mut last_sparse: Option<(usize, RangeId)> = None;
        for addr in addrs {
            let shard_idx = self.shard_of_region(self.region_of(addr));
            let shard = &self.shards[shard_idx];
            match self.slot_of(addr) {
                Slot::Dense { local, .. } => {
                    if last_dense == Some((shard_idx, local)) {
                        continue;
                    }
                    last_dense = Some((shard_idx, local));
                    if bit == READER_SPILL_BIT {
                        let mut spill = shard.readers_spill_dense.write();
                        if let Some(set) = spill.get_mut(&local) {
                            set.remove(&rank);
                            if set.is_empty() {
                                spill.remove(&local);
                                shard.readers_dense[local].fetch_and(!bit, Ordering::SeqCst);
                            }
                        }
                    } else {
                        shard.readers_dense[local].fetch_and(!bit, Ordering::SeqCst);
                    }
                }
                Slot::Sparse { range, .. } => {
                    if last_sparse == Some((shard_idx, range)) {
                        continue;
                    }
                    last_sparse = Some((shard_idx, range));
                    if bit == READER_SPILL_BIT {
                        let mut spill = shard.readers_spill_sparse.write();
                        let emptied = match spill.get_mut(&range) {
                            Some(set) => {
                                set.remove(&rank);
                                set.is_empty()
                            }
                            None => false,
                        };
                        if !emptied {
                            continue;
                        }
                        spill.remove(&range);
                    }
                    let mut sparse = shard.readers_sparse.write();
                    if let Some(bits) = sparse.get_mut(&range) {
                        if bits.fetch_and(!bit, Ordering::SeqCst) & !bit == 0 {
                            sparse.remove(&range);
                        }
                    }
                }
            }
        }
    }

    /// Move the registrations for `addrs` from thread `from` to thread
    /// `to` — a speculative parent absorbing its child's read set inherits
    /// the child's dependences, so future commits to those ranges must
    /// doom the *parent* now.
    pub fn transfer_reader<I: IntoIterator<Item = Addr>>(&self, addrs: I, from: usize, to: usize) {
        let mut last: Option<Addr> = None;
        let grain = self.config.grain_log2;
        for addr in addrs {
            // Conservative dedup at the floor grain (same floor range ⇒
            // same slot at any live grain).
            let floor = addr >> grain;
            if last == Some(floor) {
                continue;
            }
            last = Some(floor);
            self.register_reader_as(addr, to);
            self.unregister_reader([addr], from);
        }
    }

    /// Registration half of [`transfer_reader`](Self::transfer_reader)
    /// (no snapshot needed).
    fn register_reader_as(&self, addr: Addr, rank: usize) {
        if reader_bit(rank) == 0 {
            return;
        }
        let _ = self.register_reader(addr, rank);
    }

    /// Enumerate *and clear* the registered readers of every range
    /// covering `addrs` — called by a committing writer immediately after
    /// [`record`](Self::record), so the returned set is exactly the
    /// threads whose read sets overlap the just-stamped ranges (tracked
    /// bitmask ranks plus every spilled rank; enumeration is complete at
    /// any thread count).  Clearing on enumeration bounds registry
    /// staleness: the returned readers are about to be doomed and will
    /// re-register when they re-execute.
    pub fn take_readers<I: IntoIterator<Item = Addr>>(&self, addrs: I) -> ReaderSet {
        let mut bits = 0u64;
        let mut spilled: Vec<usize> = Vec::new();
        let mut last_dense: Option<(usize, usize)> = None;
        let mut last_sparse: Option<(usize, RangeId)> = None;
        for addr in addrs {
            let shard_idx = self.shard_of_region(self.region_of(addr));
            let shard = &self.shards[shard_idx];
            match self.slot_of(addr) {
                Slot::Dense { local, .. } => {
                    if last_dense == Some((shard_idx, local)) {
                        continue;
                    }
                    last_dense = Some((shard_idx, local));
                    // Fast path: an unread range stays a single load — but
                    // it must be SeqCst, not relaxed, or it could miss a
                    // registration that precedes this enumeration in the
                    // SC order and break the missed-reader argument of the
                    // module docs (a relaxed load participates in no SC
                    // total order).
                    if shard.readers_dense[local].load(Ordering::SeqCst) != 0 {
                        let taken = shard.readers_dense[local].swap(0, Ordering::SeqCst);
                        bits |= taken;
                        if taken & READER_SPILL_BIT != 0 {
                            if let Some(set) = shard.readers_spill_dense.write().remove(&local) {
                                spilled.extend(set);
                            }
                        }
                    }
                }
                Slot::Sparse { range, .. } => {
                    if last_sparse == Some((shard_idx, range)) {
                        continue;
                    }
                    last_sparse = Some((shard_idx, range));
                    let occupied = !shard.readers_sparse.read().is_empty();
                    if occupied {
                        if let Some(found) = shard.readers_sparse.write().remove(&range) {
                            let found = found.into_inner();
                            bits |= found;
                            if found & READER_SPILL_BIT != 0 {
                                if let Some(set) = shard.readers_spill_sparse.write().remove(&range)
                                {
                                    spilled.extend(set);
                                }
                            }
                        }
                    }
                }
            }
        }
        ReaderSet::from_parts(bits, spilled)
    }

    /// Enumerate-and-clear the readers of a single word's range (the
    /// non-speculative direct-store fast path).
    pub fn take_readers_of_word(&self, addr: Addr) -> ReaderSet {
        self.take_readers([addr])
    }

    /// The registered readers of `addr`'s range (tests and diagnostics;
    /// does not clear).
    pub fn registered_readers(&self, addr: Addr) -> ReaderSet {
        let shard = &self.shards[self.shard_of_region(self.region_of(addr))];
        let (bits, spilled) = match self.slot_of(addr) {
            Slot::Dense { local, .. } => {
                let bits = shard.readers_dense[local].load(Ordering::SeqCst);
                let spilled = if bits & READER_SPILL_BIT != 0 {
                    shard
                        .readers_spill_dense
                        .read()
                        .get(&local)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default()
                } else {
                    Vec::new()
                };
                (bits, spilled)
            }
            Slot::Sparse { range, .. } => {
                let bits = shard
                    .readers_sparse
                    .read()
                    .get(&range)
                    .map(|b| b.load(Ordering::SeqCst))
                    .unwrap_or(0);
                let spilled = if bits & READER_SPILL_BIT != 0 {
                    shard
                        .readers_spill_sparse
                        .read()
                        .get(&range)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default()
                } else {
                    Vec::new()
                };
                (bits, spilled)
            }
        };
        ReaderSet::from_parts(bits, spilled)
    }

    // ----- telemetry --------------------------------------------------

    /// Attribute one conflict to `addr`'s region (`suspected_false_sharing`
    /// when the conflicting word still held its first-read value) — the
    /// grain controller's split signal.  No-op outside the dense window.
    pub fn note_conflict(&self, addr: Addr, suspected_false_sharing: bool) {
        let region = self.region_of(addr);
        if let Ok(idx) = usize::try_from(region) {
            if idx < self.region_stats.len() {
                self.region_stats[idx]
                    .conflicts
                    .fetch_add(1, Ordering::Relaxed);
                if suspected_false_sharing {
                    self.region_stats[idx]
                        .false_sharing
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Attribute one successful value-predict retry to `addr`'s region —
    /// a conflict the current grain made cheap instead of fatal.
    pub fn note_retry(&self, addr: Addr) {
        let region = self.region_of(addr);
        if let Ok(idx) = usize::try_from(region) {
            if idx < self.region_stats.len() {
                self.region_stats[idx]
                    .retries
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot the per-region telemetry of every *touched* dense region
    /// (any nonzero counter), ascending by region id — the grain
    /// controller's input.
    pub fn region_profiles(&self) -> Vec<RegionProfile> {
        let mut rows = Vec::new();
        for (idx, stats) in self.region_stats.iter().enumerate() {
            let stamps = stats.stamps.load(Ordering::Relaxed);
            let conflicts = stats.conflicts.load(Ordering::Relaxed);
            let false_sharing = stats.false_sharing.load(Ordering::Relaxed);
            let retries = stats.retries.load(Ordering::Relaxed);
            if stamps == 0 && conflicts == 0 && retries == 0 {
                continue;
            }
            rows.push(RegionProfile {
                region: idx as RegionId,
                grain_log2: self.region_grains[idx].load(Ordering::Acquire),
                stamps,
                conflicts,
                false_sharing,
                retries,
            });
        }
        rows
    }

    /// Census of the live grains across touched dense regions:
    /// `(grain_log2, regions)` pairs, ascending by grain — what the
    /// controller converged to.
    pub fn grain_census(&self) -> Vec<(u32, u64)> {
        let mut counts: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for (idx, stats) in self.region_stats.iter().enumerate() {
            if stats.stamps.load(Ordering::Relaxed) == 0
                && stats.conflicts.load(Ordering::Relaxed) == 0
            {
                continue;
            }
            *counts
                .entry(self.region_grains[idx].load(Ordering::Acquire))
                .or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Number of commit batches recorded so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Number of regions whose grain was flipped at runtime.
    pub fn regrains(&self) -> u64 {
        self.regrains.load(Ordering::Relaxed)
    }

    /// Cumulative CAS retries on the lock-free stamp path (0 in locked
    /// mode) — the contention signal the `commitbench` sweep reports.
    pub fn cas_retries(&self) -> u64 {
        self.cas_retries.load(Ordering::Relaxed)
    }

    /// Number of distinct ranges currently carrying a stamp.  (A regrain
    /// conservatively stamps its whole region, so this is an upper bound
    /// on commit-touched ranges once the controller is active.)
    pub fn stamped_ranges(&self) -> usize {
        let dense: usize = self
            .shards
            .iter()
            .flat_map(|s| s.dense.iter())
            .filter(|v| v.load(Ordering::Relaxed) != 0)
            .count();
        let sparse: usize = self.shards.iter().map(|s| s.sparse.read().len()).sum();
        dense + sparse
    }

    /// Aggregate activity counters since construction or the last
    /// [`clear`](Self::clear).
    pub fn stats(&self) -> CommitLogStats {
        CommitLogStats {
            commits: self.commits.load(Ordering::Relaxed),
            stamp_writes: self.stamped.load(Ordering::Relaxed),
            lock_ns: self.lock_ns.load(Ordering::Relaxed),
            cas_retries: self.cas_retries.load(Ordering::Relaxed),
            regrains: self.regrains.load(Ordering::Relaxed),
            reader_spills: self.reader_spills.load(Ordering::Relaxed),
            ring_overflows: self.ring_overflows.load(Ordering::Relaxed),
            grain_log2: self.config.grain_log2,
            shards: self.config.shards,
            ring_depth: self.config.ring_depth,
        }
    }

    /// Forget everything (start of a new speculative region run): stamps,
    /// registries, telemetry, and every region's grain back to the
    /// initial grain.
    pub fn clear(&self) {
        for shard in &self.shards {
            let _guard = shard.slow_lock.lock();
            for v in &shard.dense {
                v.store(0, Ordering::Relaxed);
            }
            for v in &shard.rings {
                v.store(0, Ordering::Relaxed);
            }
            shard.sparse.write().clear();
            for r in &shard.readers_dense {
                r.store(0, Ordering::Relaxed);
            }
            shard.readers_spill_dense.write().clear();
            shard.readers_sparse.write().clear();
            shard.readers_spill_sparse.write().clear();
            shard.epoch.store(0, Ordering::Release);
        }
        for grain in &self.region_grains {
            grain.store(self.initial_grain, Ordering::Release);
        }
        for seq in &self.region_seqs {
            seq.store(0, Ordering::Release);
        }
        for stats in &self.region_stats {
            stats.stamps.store(0, Ordering::Relaxed);
            stats.conflicts.store(0, Ordering::Relaxed);
            stats.false_sharing.store(0, Ordering::Relaxed);
            stats.retries.store(0, Ordering::Relaxed);
        }
        self.commits.store(0, Ordering::Relaxed);
        self.stamped.store(0, Ordering::Relaxed);
        self.regrains.store(0, Ordering::Relaxed);
        self.lock_ns.store(0, Ordering::Relaxed);
        self.lock_samples.store(0, Ordering::Relaxed);
        self.reader_spills.store(0, Ordering::Relaxed);
        self.cas_retries.store(0, Ordering::Relaxed);
        self.ring_overflows.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A word-granular, single-shard log behaves exactly like the old
    /// design for these unit tests.
    fn word_log() -> CommitLog {
        CommitLog::with_config(CommitLogConfig::word_grain().shards(1), 0)
    }

    #[test]
    fn versions_are_monotone_per_batch() {
        let log = word_log();
        assert_eq!(log.epoch(), 0);
        let v1 = log.record([8, 16]);
        let v2 = log.record([24]);
        assert!(v2 > v1);
        assert_eq!(log.version_of(8), v1);
        assert_eq!(log.version_of(16), v1);
        assert_eq!(log.version_of(24), v2);
        assert_eq!(log.version_of(32), 0);
        assert_eq!(log.commits(), 2);
        assert_eq!(log.stamped_ranges(), 3);
    }

    #[test]
    fn written_after_flags_only_later_commits() {
        let log = word_log();
        let before = log.snapshot(64);
        log.record_word(64);
        // A read stamped before the commit conflicts…
        assert!(log.written_after(64, before));
        // …a read stamped at (or after) the commit does not.
        assert!(!log.written_after(64, log.snapshot(64)));
        // Untouched addresses never conflict.
        assert!(!log.written_after(72, before));
    }

    #[test]
    fn rewrite_bumps_the_version() {
        let log = word_log();
        let v1 = log.record_word(8);
        let v2 = log.record_word(8);
        assert!(v2 > v1);
        assert!(log.written_after(8, v1));
    }

    #[test]
    fn dense_range_and_sparse_fallback_agree() {
        // Dense window covers the first 512 bytes (rounded up to a whole
        // region); everything beyond falls back to the sparse maps
        // transparently.
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 512);
        assert!(log.dense_covers(504));
        assert!(!log.dense_covers(1 << 20));
        log.record([8, 504, 512, 1 << 20, (1 << 20) + 4096]);
        for addr in [8, 504, 512, 1 << 20, (1 << 20) + 4096] {
            assert!(log.version_of(addr) > 0, "addr {addr}");
            assert!(log.written_after(addr, 0));
        }
        assert_eq!(log.stamped_ranges(), 5);
        log.clear();
        for addr in [8, 504, 512, 1 << 20, (1 << 20) + 4096] {
            assert_eq!(log.version_of(addr), 0, "addr {addr}");
        }
        assert_eq!(log.stamped_ranges(), 0);
    }

    #[test]
    fn dense_capacity_rounds_up_to_whole_regions() {
        // Regression: a capacity that is not word- (or range-) aligned
        // must still cover the trailing partial word densely — the dense
        // window now rounds up to whole grain-control regions.
        let log = CommitLog::with_config(CommitLogConfig::word_grain().shards(1), 509);
        assert!(log.dense_covers(504));
        let log = CommitLog::with_config(CommitLogConfig::default(), 65);
        assert!(log.dense_covers(64));
    }

    #[test]
    fn range_grain_coarsens_conservatively() {
        // At line grain, two words of the same 64-byte range share a
        // version (false sharing allowed)…
        let log = CommitLog::with_config(CommitLogConfig::line_grain(), 0);
        let before = log.snapshot(8);
        log.record_word(8);
        assert!(log.written_after(8, before), "the written word conflicts");
        assert!(
            log.written_after(56, before),
            "a neighbour in the same line conflicts too (false sharing)"
        );
        // …but a word in the next range does not (no missed conflicts is
        // about ranges *covering* the write, not about spill-over).
        assert!(!log.written_after(64, log.snapshot(64)));
        assert_eq!(log.stamped_ranges(), 1, "one line, one stamp");
    }

    #[test]
    fn shard_epochs_advance_independently() {
        // Consecutive *regions* (not ranges) interleave across shards
        // since grain control landed: addresses one region apart map to
        // different shards with 2+ shards; each shard versions its own
        // commits from 1.
        let config = CommitLogConfig::word_grain().shards(2);
        let log = CommitLog::with_config(config, 0);
        let region_bytes = 1u64 << log.region_log2();
        let v_a = log.record_word(0); // region 0 → shard 0
        let v_b = log.record_word(region_bytes); // region 1 → shard 1
        assert_eq!(v_a, 1);
        assert_eq!(v_b, 1, "second shard starts its own epoch");
        assert_eq!(log.epoch(), 1, "global epoch is the max over shards");
        let v_a2 = log.record_word(0);
        assert_eq!(v_a2, 2);
        assert_eq!(log.epoch(), 2);
        assert_eq!(log.commits(), 3);
        // Same region ⇒ same shard, at any grain.
        assert!(log.snapshot(0) == log.snapshot(8));
    }

    #[test]
    fn multi_shard_batch_stamps_every_shard() {
        let config = CommitLogConfig::word_grain().shards(4);
        let log = CommitLog::with_config(config, 1 << 16);
        let region = 1u64 << log.region_log2();
        let batch = [0, region, 2 * region, 3 * region];
        let before: Vec<_> = batch.iter().map(|&a| log.snapshot(a)).collect();
        // One batch spanning all four shards.
        log.record(batch);
        for (addr, before) in batch.into_iter().zip(before) {
            assert!(log.written_after(addr, before), "addr {addr}");
        }
        assert_eq!(log.commits(), 1);
        assert_eq!(log.stamped_ranges(), 4);
        assert_eq!(log.stats().stamp_writes, 4);
    }

    #[test]
    fn stamps_are_visible_before_the_epoch_publishes() {
        // LOCKED mode's defining transient invariant: a reader that
        // samples a post-commit shard epoch must never see a pre-commit
        // version for a stamped address, because stamps precede the
        // epoch publish under the lock.  (Lock-free mode deliberately
        // publishes first — its missed-conflict argument runs through
        // the data-visibility edge instead, see
        // `lock_free_snapshot_covers_the_data_not_the_stamp`.)
        let log = std::sync::Arc::new(CommitLog::with_config(
            CommitLogConfig::default().locked(),
            1 << 12,
        ));
        let stop = std::sync::Arc::new(AtomicU64::new(0));
        let writer = {
            let log = std::sync::Arc::clone(&log);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    log.record([8, 256, 1024]);
                }
                stop.store(1, Ordering::Release);
            })
        };
        while stop.load(Ordering::Acquire) == 0 {
            for addr in [8u64, 256, 1024] {
                let snapshot = log.snapshot(addr);
                // Every batch stamps this address's range before
                // publishing its shard epoch, so an observed epoch
                // implies at-least-that stamp.
                assert!(
                    log.version_of(addr) >= snapshot,
                    "stamp lagged the published shard epoch"
                );
            }
        }
        writer.join().unwrap();
        assert_eq!(log.commits(), 20_000);
    }

    #[test]
    fn lock_free_snapshot_covers_the_data_not_the_stamp() {
        // Lock-free mode publishes the epoch *before* stamping, so the
        // locked-mode transient (`version_of >= snapshot`) does not
        // hold.  Its invariants are: a slot never exceeds a
        // subsequently-sampled shard epoch (the stamp's version was
        // reserved from that epoch first), slots are monotone, and once
        // the committer is quiescent every stamp has caught up exactly.
        let log = std::sync::Arc::new(CommitLog::with_dense_bytes(1 << 12));
        assert!(log.config().lock_free, "default mode is lock-free");
        let stop = std::sync::Arc::new(AtomicU64::new(0));
        let writer = {
            let log = std::sync::Arc::clone(&log);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    log.record([8, 256, 1024]);
                }
                stop.store(1, Ordering::Release);
            })
        };
        let mut floor = [0u64; 3];
        while stop.load(Ordering::Acquire) == 0 {
            for (i, addr) in [8u64, 256, 1024].into_iter().enumerate() {
                let version = log.version_of(addr);
                assert!(version >= floor[i], "slots are monotone");
                floor[i] = version;
                assert!(
                    log.snapshot(addr) >= version,
                    "a stamp outran the epoch it was reserved from"
                );
            }
        }
        writer.join().unwrap();
        assert_eq!(log.commits(), 20_000);
        for addr in [8u64, 256, 1024] {
            assert_eq!(
                log.version_of(addr),
                log.snapshot(addr),
                "quiescent stamps catch up to the epoch"
            );
        }
    }

    #[test]
    fn lock_free_two_committers_racing_one_slot() {
        // The two-committer same-slot race, driven through a barrier so
        // both CAS passes genuinely overlap: whatever the interleaving,
        // the two reservations are distinct, the slot ends at their max,
        // and the epoch equals the reservation count — no stamp is ever
        // lost and no slot is ever lowered.
        for _ in 0..200 {
            let log = std::sync::Arc::new(CommitLog::with_dense_bytes(64));
            let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let log = std::sync::Arc::clone(&log);
                    let barrier = std::sync::Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        barrier.wait();
                        log.record_word(8)
                    })
                })
                .collect();
            let versions: Vec<CommitVersion> =
                handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_ne!(versions[0], versions[1], "reservations are unique");
            assert_eq!(versions.iter().copied().max(), Some(2));
            assert_eq!(log.version_of(8), 2, "slot holds the max stamp");
            assert_eq!(log.snapshot(8), 2, "epoch equals the reservations");
            assert_eq!(log.commits(), 2);
        }
    }

    #[test]
    fn lock_free_disjoint_committers_scale_without_losing_stamps() {
        // N committers on N disjoint ranges of one shard: every stamp is
        // visible afterwards, the versions are a permutation of 1..=N,
        // and (disjoint slots) the barrier race costs no lost update.
        const N: usize = 8;
        let log = std::sync::Arc::new(CommitLog::with_config(
            CommitLogConfig::word_grain().shards(1),
            1 << 12,
        ));
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(N));
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let log = std::sync::Arc::clone(&log);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    log.record_word(i as Addr * 8)
                })
            })
            .collect();
        let mut versions: Vec<CommitVersion> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        versions.sort_unstable();
        assert_eq!(versions, (1..=N as u64).collect::<Vec<_>>());
        for i in 0..N {
            assert!(log.version_of(i as Addr * 8) > 0, "stamp {i} lost");
        }
        assert_eq!(log.epoch(), N as u64);
        assert_eq!(log.stats().stamp_writes, N as u64);
    }

    #[test]
    fn lock_free_commits_racing_regrains_never_miss_a_conflict() {
        // Committers hammer one region while the main thread flips its
        // grain back and forth: the seqlock word forces racing stamp
        // passes to redo at the current grain, so a reader's stale
        // snapshot is flagged through every interleaving, and slots stay
        // monotone (the regrain flush is a fetch_max).
        let log = std::sync::Arc::new(CommitLog::with_config(
            CommitLogConfig::word_grain().shards(1),
            1 << 12,
        ));
        let stale = log.register_reader(8, 3);
        let stop = std::sync::Arc::new(AtomicU64::new(0));
        let committers: Vec<_> = (0..2)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while stop.load(Ordering::Acquire) == 0 {
                        let v = log.record_word(8 + t * 16);
                        assert!(v > last, "reservations are monotone per shard");
                        last = v;
                    }
                })
            })
            .collect();
        for grain in [
            LINE_GRAIN_LOG2,
            WORD_GRAIN_LOG2,
            PAGE_GRAIN_LOG2,
            WORD_GRAIN_LOG2,
        ] {
            for _ in 0..50 {
                log.regrain(0, grain);
                std::thread::yield_now();
            }
        }
        stop.store(1, Ordering::Release);
        for h in committers {
            h.join().unwrap();
        }
        assert!(
            log.written_after(8, stale),
            "stale reader slipped through a commit/regrain race"
        );
        assert!(
            log.snapshot(8) >= log.version_of(8),
            "a stamp outran the epoch it was reserved from"
        );
    }

    #[test]
    fn cas_retry_counts_are_consistent_and_locked_mode_never_retries() {
        // Single-threaded lock-free commits never retry; the aggregate
        // stat equals the sum of per-batch counts; locked mode reports
        // zero structurally; clear() resets the counter.
        let log = CommitLog::with_dense_bytes(1 << 12);
        let mut total = 0;
        for i in 0..32u64 {
            let (_, retries) = log.record_counted([i * 8, i * 8 + 2048]);
            total += retries;
        }
        assert_eq!(total, 0, "uncontended commits pay no retries");
        assert_eq!(log.stats().cas_retries, 0);
        assert_eq!(log.cas_retries(), 0);
        log.clear();
        assert_eq!(log.stats().cas_retries, 0);
        let locked = CommitLog::with_config(CommitLogConfig::default().locked(), 1 << 12);
        let (v, retries) = locked.record_counted([8, 16, 4096]);
        assert!(v > 0);
        assert_eq!(retries, 0, "locked mode has no CAS path");
    }

    #[test]
    fn locked_and_lock_free_modes_agree_on_versions_and_stats() {
        // The A/B config flag changes the publish mechanism, never the
        // observable single-threaded semantics: identical scripts yield
        // identical versions, stamps, and validation outcomes.
        let script = |config: CommitLogConfig| {
            let log = CommitLog::with_config(config, 1 << 13);
            let snap = log.register_reader(8, 3);
            let v1 = log.record([8, 64, 4096]);
            let (v2, _) = log.record_counted([8]);
            log.regrain(0, PAGE_GRAIN_LOG2);
            let v3 = log.record_word(16);
            let stats = log.stats();
            (
                v1,
                v2,
                v3,
                log.written_after(8, snap),
                log.version_of(64),
                stats.commits,
                stats.stamp_writes,
                log.take_readers([8]).is_empty(),
            )
        };
        let lock_free = script(CommitLogConfig::word_grain().shards(2));
        let locked = script(CommitLogConfig::word_grain().shards(2).locked());
        assert_eq!(lock_free, locked);
    }

    #[test]
    fn clear_resets_epochs_and_maps() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain().shards(4), 0);
        log.record([8, 16, 24]);
        log.clear();
        assert_eq!(log.epoch(), 0);
        assert_eq!(log.version_of(8), 0);
        assert_eq!(log.stamped_ranges(), 0);
        assert_eq!(log.commits(), 0);
        assert_eq!(
            log.stats(),
            CommitLogStats {
                grain_log2: WORD_GRAIN_LOG2,
                shards: 4,
                ring_depth: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn concurrent_commits_and_lookups_are_safe() {
        let log = std::sync::Arc::new(CommitLog::with_dense_bytes(256));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let addr = ((t * 500 + i) % 64) * 8 + 8;
                    log.record_word(addr);
                    let _ = log.version_of(addr);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.commits(), 2000);
    }

    #[test]
    fn identical_batches_stamp_strictly_fewer_ranges_at_coarser_grain() {
        // The deterministic form of the grain sweep's headline claim:
        // one 64-word batch costs 64 stamps at word grain, 8 at line
        // grain and 1 at page grain.  (The native sweep can't assert
        // this strictly — its batch structure depends on scheduling.)
        let batch: Vec<Addr> = (0..64u64).map(|i| i * 8).collect();
        let stamps_at = |grain_log2: u32| {
            let log =
                CommitLog::with_config(CommitLogConfig::default().grain_log2(grain_log2), 1 << 12);
            log.record(batch.iter().copied());
            log.stats().stamp_writes
        };
        assert_eq!(stamps_at(WORD_GRAIN_LOG2), 64);
        assert_eq!(stamps_at(LINE_GRAIN_LOG2), 8);
        assert_eq!(stamps_at(PAGE_GRAIN_LOG2), 1);
    }

    #[test]
    fn lock_time_is_sampled_but_counters_are_exact() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 0);
        for i in 0..32u64 {
            log.record_word(i * 8);
        }
        // The counters are exact regardless of sampling.  (lock_ns is
        // not asserted non-zero: on coarse-resolution clocks a sampled
        // tens-of-ns critical section can legitimately register as 0.)
        assert_eq!(log.stats().commits, 32);
        assert_eq!(log.stats().stamp_writes, 32);
    }

    #[test]
    fn reader_registry_roundtrip_register_take_unregister() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain().shards(2), 256);
        // Registration returns a snapshot usable exactly like snapshot().
        let v = log.register_reader(8, 3);
        assert_eq!(v, log.snapshot(8));
        log.register_reader(8, 5);
        log.register_reader(16, 7); // different range, untouched below
        let set = log.registered_readers(8);
        assert!(set.contains(3) && set.contains(5) && !set.contains(7));
        assert_eq!(set.len(), 2);
        // Enumeration returns exactly the overlapping readers and clears.
        let taken = log.take_readers([8]);
        assert_eq!(taken.ranks().collect::<Vec<_>>(), vec![3, 5]);
        assert!(log.registered_readers(8).is_empty());
        assert!(
            log.registered_readers(16).contains(7),
            "disjoint range kept"
        );
        // Unregister removes a single rank without touching others.
        log.register_reader(16, 9);
        log.unregister_reader([16], 7);
        let set = log.registered_readers(16);
        assert!(!set.contains(7) && set.contains(9));
        // Rank 0 (non-speculative) never registers.
        log.register_reader(24, 0);
        assert!(log.registered_readers(24).is_empty());
    }

    #[test]
    fn reader_registry_tracks_ranges_not_words() {
        // At line grain two words of the same line share one reader mask,
        // and a commit to either word enumerates the reader.
        let log = CommitLog::with_config(CommitLogConfig::line_grain(), 0);
        log.register_reader(8, 2);
        assert!(log.registered_readers(56).contains(2), "same line");
        assert!(!log.registered_readers(64).contains(2), "next line");
        let taken = log.take_readers_of_word(48);
        assert!(taken.contains(2));
    }

    #[test]
    fn reader_registry_spills_past_the_tracked_window() {
        // Ranks beyond the bitmask window land in the per-range spill
        // set and are still enumerated exactly — the pre-PR5 cascade
        // fallback for >63-thread sweeps is gone.
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 0);
        log.register_reader(8, MAX_TRACKED_READERS);
        log.register_reader(8, MAX_TRACKED_READERS + 1);
        log.register_reader(8, 200);
        let set = log.take_readers([8]);
        assert!(set.contains(MAX_TRACKED_READERS));
        assert!(set.contains(MAX_TRACKED_READERS + 1));
        assert!(set.contains(200));
        assert_eq!(set.len(), 3);
        assert_eq!(
            set.ranks().collect::<Vec<_>>(),
            vec![MAX_TRACKED_READERS, MAX_TRACKED_READERS + 1, 200]
        );
        // Cleared on take, spill set included.
        assert!(log.take_readers([8]).is_empty());
        // Unregister removes a single spilled rank; the other survives.
        log.register_reader(16, 100);
        log.register_reader(16, 101);
        log.unregister_reader([16], 100);
        let set = log.registered_readers(16);
        assert!(!set.contains(100) && set.contains(101));
        // Spilled ranks work on the sparse fallback too (no dense window
        // here), and on dense windows alike.
        let dense = CommitLog::with_config(CommitLogConfig::word_grain(), 1 << 12);
        dense.register_reader(8, 77);
        assert!(dense.take_readers([8]).contains(77));
    }

    #[test]
    fn reader_spills_are_counted_in_stats() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 1 << 12);
        log.register_reader(8, 1); // in-window: no spill
        assert_eq!(log.stats().reader_spills, 0);
        log.register_reader(8, MAX_TRACKED_READERS + 1);
        log.register_reader(1 << 20, 200); // sparse fallback spills too
        assert_eq!(log.stats().reader_spills, 2);
        log.clear();
        assert_eq!(log.stats().reader_spills, 0, "clear resets the counter");
    }

    #[test]
    fn reader_transfer_moves_the_dependence_to_the_parent() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 512);
        log.register_reader(8, 4);
        log.register_reader(1 << 20, 4); // sparse range
        log.register_reader(16, 99); // spilled rank transfers too
        log.transfer_reader([8, 1 << 20], 4, 2);
        for addr in [8u64, 1 << 20] {
            let set = log.registered_readers(addr);
            assert!(set.contains(2), "parent registered at {addr}");
            assert!(!set.contains(4), "child unregistered at {addr}");
        }
        log.transfer_reader([16], 99, 100);
        let set = log.registered_readers(16);
        assert!(set.contains(100) && !set.contains(99));
    }

    #[test]
    fn clear_resets_the_reader_registry() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 64);
        log.register_reader(8, 1);
        log.register_reader(8, 150); // spilled
        log.register_reader(1 << 16, 2); // sparse
        log.clear();
        assert!(log.registered_readers(8).is_empty());
        assert!(log.registered_readers(1 << 16).is_empty());
    }

    #[test]
    fn registered_reader_with_stale_snapshot_is_always_enumerated() {
        // The deterministic half of the seqlock argument: a reader whose
        // registration precedes a commit is enumerated by that commit's
        // take_readers — the "doom exactly the stale readers" contract.
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 64);
        let snapshot = log.register_reader(8, 7);
        let version = log.record_word(8);
        assert!(version > snapshot, "the read is stale");
        let taken = log.take_readers_of_word(8);
        assert!(taken.contains(7), "stale reader missed by enumeration");
        // A second enumeration finds nothing (cleared on take).
        assert!(log.take_readers_of_word(8).is_empty());
    }

    #[test]
    fn concurrent_registration_and_enumeration_never_strands_a_stale_reader() {
        // Concurrent hammer of the protocol: after a commit, a reader is
        // either enumerated by some take_readers or its snapshot covers
        // the commit (no conflict) — a reader can never be both stale and
        // permanently invisible.  The reader thread checks its own half.
        // Rank 77 exercises the spill-set path of the same argument.
        // The committer runs until the reader has finished its quota, so
        // the two sides always genuinely interleave (a fixed iteration
        // count can finish before the reader thread is even scheduled
        // under parallel test load).
        for rank in [7usize, 77] {
            let log = std::sync::Arc::new(CommitLog::with_dense_bytes(64));
            let reader_done = std::sync::Arc::new(AtomicU64::new(0));
            let enumerated = std::sync::Arc::new(AtomicU64::new(0));
            let committer = {
                let log = std::sync::Arc::clone(&log);
                let reader_done = std::sync::Arc::clone(&reader_done);
                let enumerated = std::sync::Arc::clone(&enumerated);
                std::thread::spawn(move || {
                    while reader_done.load(Ordering::Acquire) == 0 {
                        log.record_word(8);
                        if log.take_readers_of_word(8).contains(rank) {
                            enumerated.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            };
            let mut covered = 0u64;
            for _ in 0..2_000 {
                let snapshot = log.register_reader(8, rank);
                if log.version_of(8) <= snapshot {
                    // Snapshot covers every commit so far: a take_readers
                    // that missed this registration missed nothing stale.
                    covered += 1;
                }
            }
            reader_done.store(1, Ordering::Release);
            committer.join().unwrap();
            assert!(
                covered > 0 || enumerated.load(Ordering::Relaxed) > 0,
                "rank {rank}: reader neither covered nor ever enumerated"
            );
        }
    }

    #[test]
    fn config_normalizes_degenerate_values() {
        let log = CommitLog::with_config(
            CommitLogConfig {
                grain_log2: 0,
                shards: 0,
                ring_depth: 0,
                ring_bucket_log2: 40,
                ..Default::default()
            },
            128,
        );
        assert_eq!(log.config().grain_log2, WORD_GRAIN_LOG2);
        assert_eq!(log.config().shards, 1);
        assert_eq!(log.config().ring_depth, 1, "ring depth clamps to 1");
        assert_eq!(log.config().ring_bucket_log2, 16, "bucket width clamps");
        assert_eq!(
            CommitLogConfig::default()
                .ring_depth(999)
                .normalized()
                .ring_depth,
            MAX_RING_DEPTH
        );
        let log = CommitLog::with_config(
            CommitLogConfig {
                grain_log2: 6,
                shards: 3,
                lock_free: false,
                ..Default::default()
            },
            0,
        );
        assert_eq!(log.config().shards, 4, "shards round up to a power of two");
        assert!(!log.config().lock_free, "normalization keeps the mode");
        assert_eq!(CommitLogConfig::page_grain().grain_bytes(), 4096);
        // Mode builders round-trip.
        assert!(CommitLogConfig::default().lock_free);
        assert!(!CommitLogConfig::default().locked().lock_free);
        assert!(
            CommitLogConfig::default()
                .locked()
                .lock_free(true)
                .lock_free
        );
    }

    // ----- regrain / grain control ------------------------------------

    #[test]
    fn regrain_coarsens_and_resplits_a_live_region() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain().shards(2), 1 << 14);
        assert_eq!(log.grain_of(8), WORD_GRAIN_LOG2);
        // Word grain: a write to word 0 does not flag word 8.
        log.record_word(0);
        assert!(!log.written_after(8, log.snapshot(8)));
        // Coarsen region 0 to line grain.
        let (v, _) = log.regrain(0, LINE_GRAIN_LOG2);
        assert!(v > 0);
        assert_eq!(log.grain_of(8), LINE_GRAIN_LOG2);
        assert_eq!(log.regrains(), 1);
        // Now a write to word 0 flags its line-mate word 8 (false
        // sharing allowed)…
        let snap = log.snapshot(8);
        log.record_word(0);
        assert!(log.written_after(8, snap));
        // …and a re-split restores word exactness for post-split reads.
        let (_, _) = log.regrain(0, WORD_GRAIN_LOG2);
        assert_eq!(log.grain_of(8), WORD_GRAIN_LOG2);
        let snap = log.snapshot(8);
        log.record_word(0);
        assert!(!log.written_after(8, snap));
        // Other regions are untouched.
        let region_bytes = 1u64 << log.region_log2();
        assert_eq!(log.grain_of(region_bytes), WORD_GRAIN_LOG2);
    }

    #[test]
    fn regrain_conservatively_invalidates_outstanding_snapshots() {
        // The PR 3 one-sided guarantee across the regrain: any snapshot
        // taken before the regrain fails validation for any address of
        // the region afterwards (false sharing allowed), so a commit
        // racing the grain flip can never slip under a stale snapshot.
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 1 << 13);
        let snap = log.snapshot(8);
        log.regrain(0, LINE_GRAIN_LOG2);
        assert!(
            log.written_after(8, snap),
            "pre-regrain snapshot must conservatively conflict"
        );
        assert!(
            log.written_after(2048, snap),
            "…for every address of the region"
        );
        // A snapshot taken after the regrain validates until a commit.
        let fresh = log.snapshot(8);
        assert!(!log.written_after(8, fresh));
        log.record_word(8);
        assert!(log.written_after(8, fresh));
    }

    #[test]
    fn regrain_never_misses_a_conflict_in_any_interleaving() {
        // read → regrain → commit → regrain: the read must still be
        // flagged (the stamp lives at whatever grain is current, the
        // reader may consult either grain's slot — both hold a version
        // above the stale snapshot).
        for (g1, g2) in [
            (LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2),
            (PAGE_GRAIN_LOG2, WORD_GRAIN_LOG2),
            (LINE_GRAIN_LOG2, WORD_GRAIN_LOG2),
        ] {
            let log = CommitLog::with_config(CommitLogConfig::word_grain(), 1 << 13);
            let snap = log.register_reader(8, 3);
            log.regrain(0, g1);
            log.record_word(8);
            log.regrain(0, g2);
            assert!(
                log.written_after(8, snap),
                "missed conflict across regrain {g1}→{g2}"
            );
        }
    }

    #[test]
    fn regrain_collects_and_clears_the_regions_readers() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain().shards(2), 1 << 14);
        log.register_reader(8, 3);
        log.register_reader(512, 100); // spilled rank, same region
        let region_bytes = 1u64 << log.region_log2();
        log.register_reader(region_bytes, 5); // different region
        let (_, readers) = log.regrain(0, LINE_GRAIN_LOG2);
        assert!(readers.contains(3) && readers.contains(100));
        assert!(!readers.contains(5), "other region's reader untouched");
        assert!(log.registered_readers(8).is_empty(), "cleared on regrain");
        assert!(log.registered_readers(region_bytes).contains(5));
        // A no-op regrain (same grain) collects nothing.
        let (_, readers) = log.regrain(0, LINE_GRAIN_LOG2);
        assert!(readers.is_empty());
    }

    #[test]
    fn initial_grain_and_clear_restore_it() {
        let log =
            CommitLog::with_initial_grain(CommitLogConfig::word_grain(), 1 << 13, PAGE_GRAIN_LOG2);
        assert_eq!(log.grain_of(8), PAGE_GRAIN_LOG2, "starts coarse");
        log.regrain(0, WORD_GRAIN_LOG2);
        assert_eq!(log.grain_of(8), WORD_GRAIN_LOG2);
        log.clear();
        assert_eq!(log.grain_of(8), PAGE_GRAIN_LOG2, "clear restores initial");
        assert_eq!(log.regrains(), 0, "clear resets the regrain count");
        // The initial grain is clamped into [floor, region].
        let log = CommitLog::with_initial_grain(CommitLogConfig::line_grain(), 1 << 13, 0);
        assert_eq!(log.grain_of(8), LINE_GRAIN_LOG2, "clamped to the floor");
    }

    #[test]
    fn region_telemetry_feeds_the_controller() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 1 << 14);
        let region_bytes = 1u64 << log.region_log2();
        log.record([8, 16, region_bytes]);
        log.note_conflict(8, true);
        log.note_conflict(8, false);
        log.note_retry(region_bytes);
        let profiles = log.region_profiles();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].region, 0);
        assert_eq!(profiles[0].stamps, 2);
        assert_eq!(profiles[0].conflicts, 2);
        assert_eq!(profiles[0].false_sharing, 1);
        assert_eq!(profiles[0].retries, 0);
        assert_eq!(profiles[1].region, 1);
        assert_eq!(profiles[1].retries, 1);
        // The census reflects live grains of touched regions only.
        assert_eq!(log.grain_census(), vec![(WORD_GRAIN_LOG2, 2)]);
        log.regrain(0, PAGE_GRAIN_LOG2);
        assert_eq!(
            log.grain_census(),
            vec![(WORD_GRAIN_LOG2, 1), (PAGE_GRAIN_LOG2, 1)]
        );
        log.clear();
        assert!(log.region_profiles().is_empty());
    }

    #[test]
    fn regrain_outside_the_dense_window_is_a_noop() {
        let log = CommitLog::with_config(CommitLogConfig::word_grain(), 64);
        let far = 1u64 << 40;
        let region = log.region_of(far);
        let (v, readers) = log.regrain(region, PAGE_GRAIN_LOG2);
        assert_eq!(v, 0);
        assert!(readers.is_empty());
        assert_eq!(log.grain_of(far), WORD_GRAIN_LOG2, "sparse stays at floor");
    }

    // ----- MVCC version rings -----------------------------------------

    #[test]
    fn ring_probe_distinguishes_touched_from_false_sharing() {
        for lock_free in [true, false] {
            let log = CommitLog::with_config(
                CommitLogConfig::line_grain()
                    .shards(1)
                    .lock_free(lock_free)
                    .ring_depth(4),
                1 << 12,
            );
            assert_eq!(log.ring_depth(), 4);
            let v = log.record_word(8);
            // The written word conflicts…
            assert_eq!(
                log.probe_written(8, 0),
                RingCheck::Touched { newest_touch: v },
                "lock_free={lock_free}"
            );
            // …its line-mate does not (the precise pass single-version
            // validation cannot give)…
            assert_eq!(log.probe_written(16, 0), RingCheck::Precise);
            assert!(log.written_after(16, 0), "single-version would doom it");
            // …a post-commit snapshot is clean, as is an untouched line.
            assert_eq!(log.probe_written(8, v), RingCheck::Clean);
            assert_eq!(log.probe_written(64, 0), RingCheck::Clean);
            assert_eq!(log.stats().ring_overflows, 0);
        }
    }

    #[test]
    fn ring_footprints_merge_within_a_version_bucket() {
        // Two writes to different words of one line share the default
        // bucket: probing either word flags it, probing a third stays
        // precise, and the touch restamp target is the bucket's newest
        // version (conservative for the older write).
        let log = CommitLog::with_config(
            CommitLogConfig::line_grain().shards(1).ring_depth(4),
            1 << 12,
        );
        let v1 = log.record_word(8);
        let v2 = log.record_word(16);
        assert!(v2 > v1);
        assert_eq!(
            log.probe_written(8, 0),
            RingCheck::Touched { newest_touch: v2 }
        );
        assert_eq!(
            log.probe_written(16, v1),
            RingCheck::Touched { newest_touch: v2 }
        );
        assert_eq!(log.probe_written(24, 0), RingCheck::Precise);
    }

    #[test]
    fn ring_depth_one_degenerates_to_single_version() {
        let log = CommitLog::with_config(CommitLogConfig::line_grain().shards(1), 1 << 12);
        assert_eq!(log.ring_depth(), 1);
        let v = log.record_word(8);
        // Any post-snapshot commit to the range flags any word of it —
        // exactly `written_after`, never Precise.
        assert_eq!(
            log.probe_written(16, 0),
            RingCheck::Touched { newest_touch: v }
        );
        assert_eq!(log.probe_written(8, v), RingCheck::Clean);
        assert_eq!(log.stats().ring_overflows, 0, "no rings, no overflows");
    }

    #[test]
    fn ring_overflow_falls_back_conservatively_and_is_counted() {
        // Depth 2 with single-version buckets reaches 2 commits back:
        // a snapshot 3 commits old overflows instead of guessing.
        let log = CommitLog::with_config(
            CommitLogConfig::line_grain()
                .shards(1)
                .ring_depth(2)
                .ring_bucket_log2(0),
            1 << 12,
        );
        for _ in 0..3 {
            log.record_word(16);
        }
        assert_eq!(log.probe_written(8, 0), RingCheck::Overflow);
        assert_eq!(log.stats().ring_overflows, 1);
        // A recent-enough snapshot still probes precisely.
        assert_eq!(log.probe_written(8, 2), RingCheck::Precise);
        // Deeper history at the same bucket width stays precise.
        let deep = CommitLog::with_config(
            CommitLogConfig::line_grain()
                .shards(1)
                .ring_depth(4)
                .ring_bucket_log2(0),
            1 << 12,
        );
        for _ in 0..3 {
            deep.record_word(16);
        }
        assert_eq!(deep.probe_written(8, 0), RingCheck::Precise);
        assert_eq!(
            deep.probe_written(16, 1),
            RingCheck::Touched { newest_touch: 3 }
        );
        assert_eq!(deep.stats().ring_overflows, 0);
    }

    #[test]
    fn regrain_truncates_the_rings_conservatively() {
        for lock_free in [true, false] {
            // Single-version buckets keep the regrain's full-footprint
            // flush out of the next commit's bucket, so the precision
            // assertions below are exact.
            let log = CommitLog::with_config(
                CommitLogConfig::word_grain()
                    .shards(1)
                    .lock_free(lock_free)
                    .ring_depth(4)
                    .ring_bucket_log2(0),
                1 << 13,
            );
            log.regrain(0, LINE_GRAIN_LOG2);
            // The regrain's full-footprint flush: no pre-regrain
            // snapshot of the region may probe Clean or Precise.
            for addr in [8u64, 16, 2048] {
                assert!(
                    matches!(log.probe_written(addr, 0), RingCheck::Touched { .. }),
                    "lock_free={lock_free} addr={addr}"
                );
            }
            // Post-regrain snapshots probe precisely again.
            let fresh = log.snapshot(8);
            assert_eq!(log.probe_written(8, fresh), RingCheck::Clean);
            log.record_word(8);
            assert_eq!(log.probe_written(16, fresh), RingCheck::Precise);
        }
    }

    #[test]
    fn ring_probe_agrees_with_sparse_fallback() {
        // Out-of-window ranges keep no rings: the probe degenerates to
        // the single-version answer there, at any configured depth.
        let log = CommitLog::with_config(CommitLogConfig::line_grain().shards(1).ring_depth(4), 64);
        let far = 1u64 << 30;
        let v = log.record_word(far);
        assert_eq!(
            log.probe_written(far + 8, 0),
            RingCheck::Touched { newest_touch: v },
            "sparse neighbour words stay conservatively flagged"
        );
        assert_eq!(log.probe_written(far, v), RingCheck::Clean);
    }

    #[test]
    fn clear_resets_the_rings() {
        let log = CommitLog::with_config(
            CommitLogConfig::line_grain()
                .shards(1)
                .ring_depth(2)
                .ring_bucket_log2(0),
            1 << 12,
        );
        for _ in 0..3 {
            log.record_word(8);
        }
        assert_eq!(log.probe_written(8, 0), RingCheck::Overflow);
        log.clear();
        assert_eq!(log.stats().ring_overflows, 0, "clear resets the counter");
        assert_eq!(log.probe_written(8, 0), RingCheck::Clean);
        let v = log.record_word(8);
        assert_eq!(
            log.probe_written(8, 0),
            RingCheck::Touched { newest_touch: v },
            "stale pre-clear entries do not resurface"
        );
        assert_eq!(log.probe_written(16, 0), RingCheck::Precise);
    }

    #[test]
    fn ring_probe_never_misses_under_commit_regrain_races() {
        // Concurrent committers and regrains: a probe for a stale
        // snapshot must never report Clean/Precise for a written word —
        // the ring analogue of the single-version race test.
        let log = std::sync::Arc::new(CommitLog::with_config(
            CommitLogConfig::word_grain().shards(1).ring_depth(4),
            1 << 12,
        ));
        let stale = log.register_reader(8, 3);
        let stop = std::sync::Arc::new(AtomicU64::new(0));
        let committer = {
            let log = std::sync::Arc::clone(&log);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                while stop.load(Ordering::Acquire) == 0 {
                    log.record([8, 24]);
                }
            })
        };
        for grain in [LINE_GRAIN_LOG2, WORD_GRAIN_LOG2] {
            for _ in 0..50 {
                log.regrain(0, grain);
                assert!(
                    !log.probe_written(8, stale).is_valid(),
                    "stale written word probed valid mid-race"
                );
                std::thread::yield_now();
            }
        }
        stop.store(1, Ordering::Release);
        committer.join().unwrap();
        assert!(!log.probe_written(8, stale).is_valid());
    }
}
