//! Error and speculation-failure types shared across the buffering layer.

use std::fmt;

/// Reasons a buffered memory operation cannot be completed.
///
/// A [`BufferError`] is not necessarily fatal for the whole speculative
/// thread: the runtime decides whether to stall the thread until it can be
/// joined (`OverflowPending`) or to roll it back immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferError {
    /// The hash-slot for the address is occupied by a different address and
    /// the linear overflow buffer still has room: the access has been
    /// recorded there, but the thread should stop at its next check point
    /// and wait to be joined.
    OverflowPending,
    /// The overflow buffer is exhausted; the speculative thread must roll
    /// back (paper §IV-G2: "If the temporary buffer is used up, the
    /// speculative thread rolls back").
    OverflowFull,
    /// The register/stack buffer offset exceeds its statically allocated
    /// size (paper §IV-G3: "the speculator pass reports an error and
    /// speculation fails").
    LocalBufferFull,
    /// The access touches an address outside every registered address
    /// space; the speculative thread must roll back (paper §IV-G1).
    UnregisteredAddress,
    /// The access is misaligned with respect to its size, which the
    /// word-granular buffering scheme does not support.
    Misaligned,
    /// An access size that is neither a divisor nor a multiple of the word
    /// size was requested.
    UnsupportedSize,
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::OverflowPending => write!(f, "hash conflict recorded in overflow buffer"),
            BufferError::OverflowFull => write!(f, "overflow buffer exhausted"),
            BufferError::LocalBufferFull => write!(f, "local (register/stack) buffer exhausted"),
            BufferError::UnregisteredAddress => write!(f, "access to unregistered address"),
            BufferError::Misaligned => write!(f, "misaligned access"),
            BufferError::UnsupportedSize => write!(f, "unsupported access size"),
        }
    }
}

impl std::error::Error for BufferError {}

/// Coarse cause taxonomy of a rollback, carried through thread statistics,
/// run reports and the adaptive governor so policies can react to *why*
/// speculation failed, not just that it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RollbackReason {
    /// A genuine cross-thread dependence violation: a logically earlier
    /// thread committed a write to an address in the read-set after it was
    /// read (detected via the [`CommitLog`](crate::CommitLog)), or local
    /// register validation failed.
    Conflict,
    /// The global or local speculative buffer ran out of capacity.
    Overflow,
    /// The rollback was injected by the §V-D sensitivity experiment.
    Injected,
    /// Everything else: cascading rollbacks, mixed-model order violations
    /// (NOSYNC) and unregistered-address aborts.
    Other,
}

impl RollbackReason {
    /// Number of reason classes (array-index bound).
    pub const COUNT: usize = 4;

    /// All reasons in presentation order.
    pub const ALL: [RollbackReason; Self::COUNT] = [
        RollbackReason::Conflict,
        RollbackReason::Overflow,
        RollbackReason::Injected,
        RollbackReason::Other,
    ];

    /// Stable array index of this reason.
    pub fn index(self) -> usize {
        match self {
            RollbackReason::Conflict => 0,
            RollbackReason::Overflow => 1,
            RollbackReason::Injected => 2,
            RollbackReason::Other => 3,
        }
    }

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            RollbackReason::Conflict => "conflict",
            RollbackReason::Overflow => "overflow",
            RollbackReason::Injected => "injected",
            RollbackReason::Other => "other",
        }
    }
}

impl fmt::Display for RollbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl From<SpecFailure> for RollbackReason {
    fn from(failure: SpecFailure) -> Self {
        match failure {
            SpecFailure::ReadConflict | SpecFailure::LocalValidationFailed => {
                RollbackReason::Conflict
            }
            SpecFailure::BufferOverflow | SpecFailure::LocalBufferOverflow => {
                RollbackReason::Overflow
            }
            SpecFailure::Injected => RollbackReason::Injected,
            SpecFailure::Cascaded | SpecFailure::NoSync | SpecFailure::UnregisteredAddress => {
                RollbackReason::Other
            }
        }
    }
}

/// Classification of why a speculative thread failed, used for statistics
/// and for deciding cascading behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecFailure {
    /// A value in the read-set no longer matches main memory.
    ReadConflict,
    /// A live register variable predicted at fork time did not match the
    /// value observed by the parent at the join point.
    LocalValidationFailed,
    /// The global buffer overflowed.
    BufferOverflow,
    /// The local buffer overflowed.
    LocalBufferOverflow,
    /// The thread touched an unregistered address.
    UnregisteredAddress,
    /// Rollback was injected by the rollback-sensitivity experiment.
    Injected,
    /// The parent rolled back, cascading into this subtree.
    Cascaded,
    /// The thread violated the mixed-model ordering assumption and was
    /// discarded with NOSYNC.
    NoSync,
}

impl fmt::Display for SpecFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecFailure::ReadConflict => "read conflict",
            SpecFailure::LocalValidationFailed => "local validation failed",
            SpecFailure::BufferOverflow => "global buffer overflow",
            SpecFailure::LocalBufferOverflow => "local buffer overflow",
            SpecFailure::UnregisteredAddress => "unregistered address",
            SpecFailure::Injected => "injected rollback",
            SpecFailure::Cascaded => "cascaded rollback",
            SpecFailure::NoSync => "mixed-model order violation (NOSYNC)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(BufferError::OverflowFull.to_string().contains("overflow"));
        assert!(SpecFailure::ReadConflict.to_string().contains("conflict"));
        assert!(SpecFailure::NoSync.to_string().contains("NOSYNC"));
    }

    #[test]
    fn buffer_error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(BufferError::Misaligned);
        assert!(e.to_string().contains("misaligned"));
    }

    #[test]
    fn rollback_reasons_classify_every_failure() {
        assert_eq!(
            RollbackReason::from(SpecFailure::ReadConflict),
            RollbackReason::Conflict
        );
        assert_eq!(
            RollbackReason::from(SpecFailure::LocalValidationFailed),
            RollbackReason::Conflict
        );
        assert_eq!(
            RollbackReason::from(SpecFailure::BufferOverflow),
            RollbackReason::Overflow
        );
        assert_eq!(
            RollbackReason::from(SpecFailure::Injected),
            RollbackReason::Injected
        );
        assert_eq!(
            RollbackReason::from(SpecFailure::Cascaded),
            RollbackReason::Other
        );
        // Indices are a dense, stable permutation of 0..COUNT.
        let mut seen = [false; RollbackReason::COUNT];
        for reason in RollbackReason::ALL {
            assert!(!seen[reason.index()]);
            seen[reason.index()] = true;
            assert!(!reason.label().is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }
}
