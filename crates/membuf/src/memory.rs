//! Word-addressable shared main memory.
//!
//! MUTLS buffers speculative accesses at WORD granularity (paper §IV-G2).
//! Because this reproduction cannot instrument arbitrary native loads and
//! stores the way the LLVM speculator pass does, shared program data lives
//! in a [`GlobalMemory`] arena and every access goes through the runtime —
//! which is exactly the situation the instrumented code produces (every
//! load/store becomes a `MUTLS_load_*`/`MUTLS_store_*` call).
//!
//! The arena stores data in relaxed [`AtomicU64`] words.  Non-speculative
//! writes racing with speculative reads are *by design* in TLS — the race
//! is what validation detects — and atomics make that race well defined.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Byte address within the global address space.
pub type Addr = u64;

/// Size of the buffering granule in bytes (the paper's `WORD`).
pub const WORD_BYTES: u64 = 8;

/// Abstract interface to main memory as seen by the buffering layer.
///
/// [`GlobalBuffer::validate`](crate::GlobalBuffer::validate) and
/// [`GlobalBuffer::commit`](crate::GlobalBuffer::commit) are expressed
/// against this trait so tests can use small fake memories and the
/// simulator can substitute its own arena.
pub trait MainMemory: Sync {
    /// Read one aligned word starting at byte address `addr`.
    fn read_word(&self, addr: Addr) -> u64;
    /// Write one aligned word starting at byte address `addr`.
    fn write_word(&self, addr: Addr, value: u64);
    /// Write only the bytes of `value` selected by `mask` (one bit set per
    /// `0xFF` byte in the mark array) at aligned word address `addr`.
    fn write_word_masked(&self, addr: Addr, value: u64, mask: u64) {
        if mask == u64::MAX {
            self.write_word(addr, value);
        } else {
            let old = self.read_word(addr);
            self.write_word(addr, (old & !mask) | (value & mask));
        }
    }
    /// Total size of the memory in bytes.
    fn size_bytes(&self) -> u64;
}

/// Shared main-memory arena used by the native runtime and the workloads.
///
/// Addresses handed out by [`GlobalMemory::alloc`] start at
/// [`GlobalMemory::BASE_ADDR`] so that address `0` can keep its
/// conventional "null / empty slot" meaning inside [`crate::WordMap`].
pub struct GlobalMemory {
    words: Vec<AtomicU64>,
    /// Next free byte offset (bump allocation).
    next: AtomicU64,
}

impl GlobalMemory {
    /// First valid byte address handed out by the arena.
    pub const BASE_ADDR: Addr = WORD_BYTES;

    /// Create an arena able to hold `capacity_bytes` bytes of program data.
    ///
    /// The capacity is rounded up to a whole number of words.
    pub fn new(capacity_bytes: u64) -> Self {
        let usable = capacity_bytes + Self::BASE_ADDR;
        let nwords = usable.div_ceil(WORD_BYTES) as usize;
        let mut words = Vec::with_capacity(nwords);
        words.resize_with(nwords, || AtomicU64::new(0));
        GlobalMemory {
            words,
            next: AtomicU64::new(Self::BASE_ADDR),
        }
    }

    /// Allocate `count` elements of `T` (a plain word-compatible type),
    /// returning a typed pointer into the arena.
    ///
    /// Allocation is monotonic (no free); speculative threads are never
    /// allowed to allocate (paper §IV-G1), so all allocation happens on the
    /// non-speculative path before or between speculative regions.
    ///
    /// # Panics
    /// Panics if the arena capacity is exhausted.
    pub fn alloc<T: Word>(&self, count: usize) -> GPtr<T> {
        let bytes = (count as u64) * WORD_BYTES;
        let start = self.next.fetch_add(bytes, Ordering::Relaxed);
        assert!(
            start + bytes <= self.size_bytes(),
            "GlobalMemory arena exhausted: requested {bytes} bytes at {start}, capacity {}",
            self.size_bytes()
        );
        GPtr {
            base: start,
            len: count,
            _ty: PhantomData,
        }
    }

    /// Number of bytes currently allocated (including the reserved base).
    pub fn allocated_bytes(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Read a typed element directly (non-speculative access path).
    pub fn get<T: Word>(&self, ptr: &GPtr<T>, index: usize) -> T {
        assert!(index < ptr.len, "index {index} out of bounds {}", ptr.len);
        T::from_word(self.read_word(ptr.addr_of(index)))
    }

    /// Write a typed element directly (non-speculative access path).
    pub fn set<T: Word>(&self, ptr: &GPtr<T>, index: usize, value: T) {
        assert!(index < ptr.len, "index {index} out of bounds {}", ptr.len);
        self.write_word(ptr.addr_of(index), value.to_word());
    }

    fn word_index(&self, addr: Addr) -> usize {
        debug_assert_eq!(addr % WORD_BYTES, 0, "unaligned word address {addr:#x}");
        let idx = (addr / WORD_BYTES) as usize;
        assert!(
            idx < self.words.len(),
            "address {addr:#x} outside arena of {} bytes",
            self.size_bytes()
        );
        idx
    }
}

impl MainMemory for GlobalMemory {
    fn read_word(&self, addr: Addr) -> u64 {
        self.words[self.word_index(addr)].load(Ordering::Relaxed)
    }

    fn write_word(&self, addr: Addr, value: u64) {
        self.words[self.word_index(addr)].store(value, Ordering::Relaxed);
    }

    fn size_bytes(&self) -> u64 {
        (self.words.len() as u64) * WORD_BYTES
    }
}

/// Typed pointer to a contiguous array of word-sized elements inside a
/// [`GlobalMemory`] arena.
///
/// A `GPtr` is plain data: copying it does not duplicate the underlying
/// storage, and it can be freely sent across speculative threads because
/// all actual accesses are mediated by the runtime.
#[derive(Debug)]
pub struct GPtr<T> {
    base: Addr,
    len: usize,
    _ty: PhantomData<fn() -> T>,
}

impl<T> Clone for GPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for GPtr<T> {}

impl<T: Word> GPtr<T> {
    /// Byte address of element `index`.
    pub fn addr_of(&self, index: usize) -> Addr {
        self.base + (index as u64) * WORD_BYTES
    }

    /// First byte address covered by this allocation.
    pub fn base_addr(&self) -> Addr {
        self.base
    }

    /// Number of elements in the allocation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address one past the end of the allocation.
    pub fn end_addr(&self) -> Addr {
        self.base + (self.len as u64) * WORD_BYTES
    }

    /// Reinterpret a sub-range `[offset, offset+len)` as its own pointer.
    ///
    /// # Panics
    /// Panics if the sub-range does not fit in the allocation.
    pub fn slice(&self, offset: usize, len: usize) -> GPtr<T> {
        assert!(offset + len <= self.len, "slice out of bounds");
        GPtr {
            base: self.addr_of(offset),
            len,
            _ty: PhantomData,
        }
    }
}

/// Types storable as a single buffering word.
///
/// All benchmark data in the paper is `int`, `long`, `float` or `double`;
/// this reproduction stores every element in one 8-byte word, which keeps
/// the buffering layer exactly word-granular as in §IV-G2.
pub trait Word: Copy + Send + Sync + 'static {
    /// Encode into a word.
    fn to_word(self) -> u64;
    /// Decode from a word.
    fn from_word(w: u64) -> Self;
}

impl Word for u64 {
    fn to_word(self) -> u64 {
        self
    }
    fn from_word(w: u64) -> Self {
        w
    }
}

impl Word for i64 {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(w: u64) -> Self {
        w as i64
    }
}

impl Word for f64 {
    fn to_word(self) -> u64 {
        self.to_bits()
    }
    fn from_word(w: u64) -> Self {
        f64::from_bits(w)
    }
}

impl Word for u32 {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(w: u64) -> Self {
        w as u32
    }
}

impl Word for i32 {
    fn to_word(self) -> u64 {
        self as i64 as u64
    }
    fn from_word(w: u64) -> Self {
        w as i64 as i32
    }
}

impl Word for usize {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(w: u64) -> Self {
        w as usize
    }
}

impl Word for bool {
    fn to_word(self) -> u64 {
        self as u64
    }
    fn from_word(w: u64) -> Self {
        w != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_word_aligned_and_disjoint() {
        let mem = GlobalMemory::new(1024);
        let a = mem.alloc::<u64>(10);
        let b = mem.alloc::<f64>(5);
        assert_eq!(a.base_addr() % WORD_BYTES, 0);
        assert_eq!(b.base_addr() % WORD_BYTES, 0);
        assert!(a.end_addr() <= b.base_addr());
        assert_eq!(a.len(), 10);
        assert!(!a.is_empty());
    }

    #[test]
    fn zero_address_is_reserved() {
        let mem = GlobalMemory::new(64);
        let a = mem.alloc::<u64>(1);
        assert!(a.base_addr() >= GlobalMemory::BASE_ADDR);
    }

    #[test]
    fn read_write_roundtrip_all_word_types() {
        let mem = GlobalMemory::new(4096);
        let pu = mem.alloc::<u64>(4);
        let pi = mem.alloc::<i64>(4);
        let pf = mem.alloc::<f64>(4);
        let pb = mem.alloc::<bool>(2);
        mem.set(&pu, 0, 0xDEAD_BEEFu64);
        mem.set(&pi, 1, -42i64);
        mem.set(&pf, 2, 3.5f64);
        mem.set(&pb, 1, true);
        assert_eq!(mem.get(&pu, 0), 0xDEAD_BEEF);
        assert_eq!(mem.get(&pi, 1), -42);
        assert_eq!(mem.get(&pf, 2), 3.5);
        assert!(mem.get(&pb, 1));
        // untouched elements read as zero
        assert_eq!(mem.get(&pu, 3), 0);
    }

    #[test]
    fn masked_write_merges_bytes() {
        let mem = GlobalMemory::new(64);
        let p = mem.alloc::<u64>(1);
        mem.set(&p, 0, 0x1122_3344_5566_7788);
        let addr = p.addr_of(0);
        // Overwrite only the low 4 bytes.
        mem.write_word_masked(addr, 0x0000_0000_AABB_CCDD, 0x0000_0000_FFFF_FFFF);
        assert_eq!(mem.get(&p, 0), 0x1122_3344_AABB_CCDD);
    }

    #[test]
    fn slice_addresses_match_parent() {
        let mem = GlobalMemory::new(1024);
        let p = mem.alloc::<i64>(16);
        let s = p.slice(4, 8);
        assert_eq!(s.addr_of(0), p.addr_of(4));
        assert_eq!(s.len(), 8);
        assert_eq!(s.end_addr(), p.addr_of(12));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let mem = GlobalMemory::new(64);
        let p = mem.alloc::<u64>(2);
        let _ = mem.get(&p, 2);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn arena_exhaustion_panics() {
        let mem = GlobalMemory::new(64);
        let _ = mem.alloc::<u64>(1000);
    }

    #[test]
    fn signed_narrow_roundtrip() {
        assert_eq!(i32::from_word((-7i32).to_word()), -7);
        assert_eq!(u32::from_word(0xFFFF_FFFFu32.to_word()), 0xFFFF_FFFF);
    }
}
