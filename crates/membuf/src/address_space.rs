//! Address-space registration (paper §IV-G1).
//!
//! MUTLS guarantees that speculative threads never access invalid addresses
//! by registering the address space of every static and heap object at
//! creation/deletion time, and each thread's stack range in its local
//! buffer.  A speculative access outside every registered range forces a
//! rollback instead of a fault.
//!
//! Adjacent ranges are merged to keep lookups cheap.

use crate::memory::Addr;

/// A registered, half-open address range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Range {
    start: Addr,
    end: Addr,
}

/// Set of registered global (static + heap) address ranges.
///
/// Lookup is a binary search over a sorted, coalesced range list; in the
/// common case of a handful of large arrays this is a few comparisons.
#[derive(Debug, Default, Clone)]
pub struct AddressSpace {
    ranges: Vec<Range>,
}

impl AddressSpace {
    /// Create an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `[start, start+len)` as a valid global range, merging with
    /// adjacent or overlapping ranges.
    pub fn register(&mut self, start: Addr, len: u64) {
        if len == 0 {
            return;
        }
        let end = start + len;
        // Find insertion point and merge any range that touches [start,end).
        let mut new = Range { start, end };
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        for &r in &self.ranges {
            if r.end < new.start || r.start > new.end {
                out.push(r);
            } else {
                new.start = new.start.min(r.start);
                new.end = new.end.max(r.end);
            }
        }
        out.push(new);
        out.sort_by_key(|r| r.start);
        self.ranges = out;
    }

    /// Remove a previously registered range (object deallocation).
    ///
    /// The removal may split a merged range in two.
    pub fn unregister(&mut self, start: Addr, len: u64) {
        if len == 0 {
            return;
        }
        let end = start + len;
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        for &r in &self.ranges {
            if r.end <= start || r.start >= end {
                out.push(r);
                continue;
            }
            if r.start < start {
                out.push(Range {
                    start: r.start,
                    end: start,
                });
            }
            if r.end > end {
                out.push(Range {
                    start: end,
                    end: r.end,
                });
            }
        }
        self.ranges = out;
    }

    /// True if the `len`-byte access starting at `addr` lies entirely
    /// inside a registered range.
    pub fn contains(&self, addr: Addr, len: u64) -> bool {
        let end = addr + len.max(1);
        match self.ranges.binary_search_by(|r| {
            if addr < r.start {
                std::cmp::Ordering::Greater
            } else if addr >= r.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => end <= self.ranges[i].end,
            Err(_) => false,
        }
    }

    /// Number of distinct (coalesced) ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total registered bytes.
    pub fn total_bytes(&self) -> u64 {
        self.ranges.iter().map(|r| r.end - r.start).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_contains() {
        let mut a = AddressSpace::new();
        a.register(0x1000, 0x100);
        assert!(a.contains(0x1000, 8));
        assert!(a.contains(0x10F8, 8));
        assert!(!a.contains(0x10F9, 8));
        assert!(!a.contains(0xFFF, 1));
        assert!(!a.contains(0x2000, 8));
    }

    #[test]
    fn adjacent_ranges_merge() {
        let mut a = AddressSpace::new();
        a.register(0x1000, 0x100);
        a.register(0x1100, 0x100);
        assert_eq!(a.range_count(), 1);
        assert!(a.contains(0x10FC, 8)); // straddles the former boundary
        assert_eq!(a.total_bytes(), 0x200);
    }

    #[test]
    fn overlapping_ranges_merge() {
        let mut a = AddressSpace::new();
        a.register(0x1000, 0x200);
        a.register(0x1100, 0x300);
        assert_eq!(a.range_count(), 1);
        assert_eq!(a.total_bytes(), 0x400);
    }

    #[test]
    fn disjoint_ranges_stay_separate() {
        let mut a = AddressSpace::new();
        a.register(0x1000, 0x10);
        a.register(0x9000, 0x10);
        assert_eq!(a.range_count(), 2);
        assert!(a.contains(0x1008, 8));
        assert!(a.contains(0x9000, 16));
        assert!(!a.contains(0x5000, 8));
    }

    #[test]
    fn unregister_removes_and_splits() {
        let mut a = AddressSpace::new();
        a.register(0x1000, 0x300);
        a.unregister(0x1100, 0x100);
        assert_eq!(a.range_count(), 2);
        assert!(a.contains(0x1000, 0x100));
        assert!(!a.contains(0x1100, 1));
        assert!(!a.contains(0x11FF, 1));
        assert!(a.contains(0x1200, 0x100));
    }

    #[test]
    fn unregister_whole_range() {
        let mut a = AddressSpace::new();
        a.register(0x1000, 0x100);
        a.unregister(0x1000, 0x100);
        assert_eq!(a.range_count(), 0);
        assert!(!a.contains(0x1000, 1));
    }

    #[test]
    fn zero_length_operations_are_noops() {
        let mut a = AddressSpace::new();
        a.register(0x1000, 0);
        assert_eq!(a.range_count(), 0);
        a.register(0x1000, 8);
        a.unregister(0x1000, 0);
        assert_eq!(a.range_count(), 1);
    }

    #[test]
    fn access_spanning_two_separate_ranges_is_rejected() {
        let mut a = AddressSpace::new();
        a.register(0x1000, 0x8);
        a.register(0x1010, 0x8);
        assert!(!a.contains(0x1000, 0x18));
    }
}
