//! # mutls-membuf — speculative memory buffering for MUTLS
//!
//! This crate implements the memory-buffering substrate of the MUTLS
//! software thread-level-speculation runtime (Cao & Verbrugge, ICPP 2013,
//! §IV-G):
//!
//! * [`WordMap`] — the *static-memory* word-granular hash map used for both
//!   the read-set and the write-set of a speculative thread.  It is built
//!   from a data `buffer`, an `addresses` array, an `offsets` stack and a
//!   per-byte `mark` array, plus a small linear *overflow* buffer used when
//!   a hash slot collision occurs.
//! * [`GlobalBuffer`] — read-set/write-set pair with load/store redirection,
//!   validation against main memory and (masked) commit.
//! * [`LocalBuffer`] — register/stack variable transfer between parent and
//!   speculative child threads at fork and join, including the pointer
//!   mapping mechanism and explicit stack-frame tracking used for stack
//!   frame reconstruction.
//! * [`GlobalMemory`] — a word-addressable shared main-memory arena
//!   (the "global address space") built from relaxed atomics so that the
//!   benign read/write races inherent to speculation are well defined.
//! * [`AddressSpace`] — registration of static/heap/stack address ranges so
//!   speculative accesses to unregistered addresses force a rollback.
//! * [`CommitLog`] — the range-granular, sharded versioned record of every
//!   write published to main memory; read-set entries are stamped with the
//!   owning shard's epoch observed at read time and join-time validation
//!   flags every read whose range a logical predecessor's commit
//!   invalidated (real conflict detection; false sharing at coarse grains
//!   is conservative, missed conflicts are impossible).
//!
//! The crate is deliberately free of any threading policy: it only provides
//! the data structures that `mutls-runtime` coordinates.

#![warn(missing_docs)]

pub mod address_space;
pub mod commit_log;
pub mod error;
pub mod global_buffer;
pub mod local_buffer;
pub mod memory;
pub mod wordmap;

pub use address_space::AddressSpace;
pub use commit_log::{
    region_log2_for_grain, CommitLog, CommitLogConfig, CommitLogStats, CommitVersion, RangeId,
    ReaderSet, RegionId, RegionProfile, RingCheck, DEFAULT_RING_DEPTH, LINE_GRAIN_LOG2,
    MAX_RING_DEPTH, MAX_TRACKED_READERS, MIN_REGION_LOG2, PAGE_GRAIN_LOG2, WORD_GRAIN_LOG2,
};
pub use error::{BufferError, RollbackReason, SpecFailure};
pub use global_buffer::{BufferConfig, BufferStats, GlobalBuffer, Validation};
pub use local_buffer::{LocalBuffer, LocalBufferConfig, RegisterValue};
pub use memory::{Addr, GPtr, GlobalMemory, MainMemory, WORD_BYTES};
pub use wordmap::{WordEntry, WordMap};
