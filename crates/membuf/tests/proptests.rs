//! Property-based tests of the buffering layer: the word-granular hash
//! map and the read/write-set buffer must behave exactly like simple
//! model implementations for arbitrary operation sequences.

use std::collections::HashMap;

use proptest::prelude::*;

use mutls_membuf::{
    AddressSpace, BufferConfig, CommitLog, CommitLogConfig, GlobalBuffer, GlobalMemory, MainMemory,
    WordMap, LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2, WORD_BYTES, WORD_GRAIN_LOG2,
};

/// Arbitrary word-aligned address within a small arena.
fn addr_strategy() -> impl Strategy<Value = u64> {
    (1u64..512).prop_map(|i| i * WORD_BYTES)
}

/// Arbitrary commit-log grain: word, cache line or page.
fn grain_strategy() -> impl Strategy<Value = u32> {
    (0u32..3).prop_map(|i| [WORD_GRAIN_LOG2, LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2][i as usize])
}

/// A word-granular log — adjacent words are distinct ranges, which the
/// exactness properties below rely on.
fn word_log() -> CommitLog {
    CommitLog::with_config(CommitLogConfig::word_grain(), 0)
}

proptest! {
    /// The WordMap behaves like a HashMap for whole-word inserts as long
    /// as its overflow area is not exhausted.
    #[test]
    fn wordmap_matches_hashmap_model(ops in proptest::collection::vec((addr_strategy(), any::<u64>()), 1..200)) {
        let mut map = WordMap::new(1024, 1024);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (addr, value) in ops {
            // Overflow never triggers because capacity ≥ distinct addresses.
            let _ = map.insert_word(addr, value);
            model.insert(addr, value);
        }
        prop_assert_eq!(map.len(), model.len());
        for (addr, value) in &model {
            prop_assert_eq!(map.get(*addr).map(|e| e.data), Some(*value));
        }
    }

    /// Speculative load/store through a GlobalBuffer followed by a commit
    /// is equivalent to applying the stores directly to memory, and loads
    /// always observe the thread's own writes.
    #[test]
    fn buffered_stores_commit_like_direct_stores(
        ops in proptest::collection::vec((addr_strategy(), any::<u64>(), any::<bool>()), 1..200)
    ) {
        let mem = GlobalMemory::new(1 << 16);
        let shadow = GlobalMemory::new(1 << 16);
        // Seed both memories identically.
        for i in 1..512u64 {
            mem.write_word(i * WORD_BYTES, i.wrapping_mul(0x9E37));
            shadow.write_word(i * WORD_BYTES, i.wrapping_mul(0x9E37));
        }
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let mut local: HashMap<u64, u64> = HashMap::new();
        for (addr, value, is_store) in ops {
            if is_store {
                buf.store(addr, value, WORD_BYTES).unwrap();
                shadow.write_word(addr, value);
                local.insert(addr, value);
            } else {
                let got = buf.load(&mem, addr, WORD_BYTES).unwrap();
                let want = local.get(&addr).copied().unwrap_or_else(|| mem.read_word(addr));
                prop_assert_eq!(got, want, "load at {:#x}", addr);
            }
        }
        // No interfering writes happened, so validation must succeed and the
        // commit must make main memory equal to the shadow memory.
        prop_assert!(buf.validate(&mem));
        buf.commit(&mem);
        for i in 1..512u64 {
            let a = i * WORD_BYTES;
            prop_assert_eq!(mem.read_word(a), shadow.read_word(a), "word {:#x}", a);
        }
    }

    /// Validation fails exactly when main memory changed under an address
    /// in the read-set.
    #[test]
    fn validation_detects_interfering_writes(
        read_addr in addr_strategy(),
        write_addr in addr_strategy(),
        new_value in any::<u64>(),
    ) {
        let mem = GlobalMemory::new(1 << 16);
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let original = mem.read_word(read_addr);
        let _ = buf.load(&mem, read_addr, WORD_BYTES).unwrap();
        mem.write_word(write_addr, new_value);
        let expect_valid = write_addr != read_addr || new_value == original;
        prop_assert_eq!(buf.validate(&mem), expect_valid);
    }

    /// Commit-log validation round-trip: a buffer that read a set of
    /// addresses conflicts with a later commit batch iff the batch
    /// overlaps its read-set — disjoint address sets never conflict,
    /// overlapping write-after-read always flags (even for same-value
    /// ABA writes, which is what distinguishes version validation from
    /// value validation).
    #[test]
    fn commit_log_flags_exactly_the_overlapping_commits(
        reads in proptest::collection::vec(addr_strategy(), 1..32),
        commits in proptest::collection::vec(addr_strategy(), 0..32),
    ) {
        let reads: std::collections::HashSet<u64> = reads.into_iter().collect();
        let commits: std::collections::HashSet<u64> = commits.into_iter().collect();
        let mem = GlobalMemory::new(1 << 16);
        let log = word_log();
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        for &addr in &reads {
            let _ = buf.load_logged(&mem, Some(&log), addr, WORD_BYTES).unwrap();
        }
        prop_assert!(buf.validate_against(&log), "no commit yet, must be valid");
        // One commit batch after every read; values unchanged (pure ABA).
        log.record(commits.iter().copied());
        let overlaps = commits.iter().any(|a| reads.contains(a));
        prop_assert_eq!(
            !buf.validate_against(&log),
            overlaps,
            "reads {:?} vs commits {:?}",
            reads,
            commits
        );
    }

    /// Absorb round-trip: after a parent absorbs a validated child,
    /// (a) every child write is visible through the parent's write-set
    /// (so later joiners validate against it), and (b) every child read
    /// keeps its snapshot version, so a commit that lands *after* the
    /// absorb still flags the parent at its own validation.
    #[test]
    fn absorb_roundtrips_child_writes_and_read_versions(
        child_reads in proptest::collection::vec(addr_strategy(), 1..24),
        child_writes in proptest::collection::vec((addr_strategy(), any::<u64>()), 1..24),
        late_commit in addr_strategy(),
    ) {
        let child_reads: std::collections::HashSet<u64> = child_reads.into_iter().collect();
        let mem = GlobalMemory::new(1 << 16);
        let log = word_log();
        let mut parent = GlobalBuffer::new(BufferConfig::default());
        let mut child = GlobalBuffer::new(BufferConfig::default());
        for &addr in &child_reads {
            let _ = child.load_logged(&mem, Some(&log), addr, WORD_BYTES).unwrap();
        }
        let mut last_written: HashMap<u64, u64> = HashMap::new();
        for &(addr, value) in &child_writes {
            child.store(addr, value, WORD_BYTES).unwrap();
            last_written.insert(addr, value);
        }
        parent.absorb(&child).unwrap();
        // (a) absorbed writes are visible through the parent.
        for (&addr, &value) in &last_written {
            prop_assert_eq!(parent.load(&mem, addr, WORD_BYTES).unwrap(), value);
        }
        prop_assert!(parent.validate_against(&log), "nothing committed yet");
        // (b) a commit after the absorb conflicts iff it overlaps one of
        // the child's reads.  All reads here happened before the child's
        // own writes, so even a read-modify-write address carries a
        // genuine dependence on the predecessor state.
        log.record_word(late_commit);
        let dependent = child_reads.contains(&late_commit);
        prop_assert_eq!(!parent.validate_against(&log), dependent);
    }

    /// Range-granular validation is one-sided at every grain and shard
    /// count: a commit overlapping a read at *word* level must always be
    /// flagged (no missed conflicts), and a commit disjoint from every
    /// read at *range* level must always validate (false sharing stays
    /// confined to shared ranges).
    #[test]
    fn range_grain_flags_conservatively_never_misses(
        grain_log2 in grain_strategy(),
        shards in (0u32..4).prop_map(|i| [1usize, 2, 8, 16][i as usize]),
        lock_free in any::<bool>(),
        reads in proptest::collection::vec(addr_strategy(), 1..24),
        commits in proptest::collection::vec(addr_strategy(), 0..24),
    ) {
        let reads: std::collections::HashSet<u64> = reads.into_iter().collect();
        let commits: std::collections::HashSet<u64> = commits.into_iter().collect();
        let mem = GlobalMemory::new(1 << 16);
        let config = CommitLogConfig { grain_log2, shards, lock_free, ..Default::default() };
        let log = CommitLog::with_config(config, 1 << 15); // dense/sparse mix
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        for &addr in &reads {
            let _ = buf.load_logged(&mem, Some(&log), addr, WORD_BYTES).unwrap();
        }
        prop_assert!(buf.validate_against(&log), "no commit yet, must be valid");
        log.record(commits.iter().copied());
        let word_overlap = commits.iter().any(|a| reads.contains(a));
        let range_overlap = commits
            .iter()
            .any(|c| reads.iter().any(|r| c >> grain_log2 == r >> grain_log2));
        let valid = buf.validate_against(&log);
        if word_overlap {
            prop_assert!(!valid, "missed a word-level conflict at grain {}", grain_log2);
        }
        if !range_overlap {
            prop_assert!(valid, "false sharing across range boundary at grain {}", grain_log2);
        }
    }

    /// Two words straddling a range edge never cross-conflict: the last
    /// word of range k-1 and the first word of range k are tracked
    /// independently at every grain and shard count.
    #[test]
    fn range_edge_straddlers_do_not_cross_conflict(
        grain_log2 in grain_strategy(),
        shards in (0u32..3).prop_map(|i| [1usize, 2, 8][i as usize]),
        lock_free in any::<bool>(),
        k in 1u64..64,
    ) {
        let config = CommitLogConfig { grain_log2, shards, lock_free, ..Default::default() };
        let log = CommitLog::with_config(config, 1 << 14);
        let edge = k << grain_log2;
        let below = edge - WORD_BYTES; // last word of range k-1
        let above = edge;              // first word of range k
        let snap_below = log.snapshot(below);
        let snap_above = log.snapshot(above);
        log.record_word(below);
        prop_assert!(log.written_after(below, snap_below));
        prop_assert!(
            !log.written_after(above, log.snapshot(above)),
            "write below the edge flagged the range above (grain {grain_log2}, k {k})"
        );
        log.record_word(above);
        prop_assert!(log.written_after(above, snap_above));
    }

    /// The dense fast path and the sparse fallback agree: versions and
    /// conflict answers are identical on both sides of the dense-window
    /// crossover, including for a batch straddling it.
    #[test]
    fn dense_sparse_crossover_agrees(
        grain_log2 in grain_strategy(),
        lock_free in any::<bool>(),
        dense_ranges in 1u64..16,
        offsets in proptest::collection::vec(0u64..32, 1..16),
    ) {
        let config = CommitLogConfig { grain_log2, shards: 4, lock_free, ..Default::default() };
        let grain = 1u64 << grain_log2;
        // Dense window ends mid-address-space (and is not grain-aligned:
        // the partial trailing range must round up to dense).
        let log = CommitLog::with_config(config, dense_ranges * grain - 1);
        let crossover = dense_ranges * grain;
        prop_assert!(log.dense_covers(crossover - WORD_BYTES));
        // A batch straddling the crossover stamps both sides.
        let addrs: Vec<u64> = offsets
            .iter()
            .map(|o| crossover.saturating_sub(o * grain / 2) + o * grain)
            .collect();
        let snaps: Vec<u64> = addrs.iter().map(|&a| log.snapshot(a)).collect();
        log.record(addrs.iter().copied());
        for (&addr, &snap) in addrs.iter().zip(&snaps) {
            prop_assert!(
                log.written_after(addr, snap),
                "addr {addr:#x} (dense: {}) lost its stamp",
                log.dense_covers(addr)
            );
            prop_assert!(log.version_of(addr) > 0);
        }
    }

    /// The global epoch is the max over the shard epochs: it bounds every
    /// per-address snapshot, and after any batch at least one address's
    /// snapshot equals it.
    #[test]
    fn global_epoch_is_the_max_over_shard_snapshots(
        shards in (0u32..3).prop_map(|i| [2usize, 4, 8][i as usize]),
        batches in proptest::collection::vec(
            proptest::collection::vec(addr_strategy(), 1..8), 1..8),
    ) {
        let config = CommitLogConfig { grain_log2: WORD_GRAIN_LOG2, shards, lock_free: true, ..Default::default() };
        let log = CommitLog::with_config(config, 0);
        let mut touched: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut last_epoch = 0;
        for batch in &batches {
            log.record(batch.iter().copied());
            touched.extend(batch.iter().copied());
            let epoch = log.epoch();
            prop_assert!(epoch >= last_epoch, "global epoch went backwards");
            last_epoch = epoch;
        }
        let snapshots: Vec<u64> = touched.iter().map(|&a| log.snapshot(a)).collect();
        for &snap in &snapshots {
            prop_assert!(snap <= log.epoch(), "snapshot above the global max");
        }
        prop_assert!(
            snapshots.iter().any(|&s| s == log.epoch()),
            "no shard carries the max epoch"
        );
    }

    /// Targeted dooming is *surgical*: for arbitrary reader
    /// registrations and an arbitrary write batch, the enumerated doom
    /// set is always a **subset of the threads the old squash cascade
    /// would have discarded** (every registered — i.e. in-flight —
    /// speculative reader), and it contains exactly the readers whose
    /// registered ranges the batch overlaps: no bystander is ever
    /// doomed, no overlapping reader is ever missed, and a second
    /// enumeration finds nothing (cleared on take).
    #[test]
    fn doom_set_is_a_subset_of_the_cascades_victims(
        grain_log2 in grain_strategy(),
        shards in (0u32..3).prop_map(|i| [1usize, 4, 8][i as usize]),
        lock_free in any::<bool>(),
        registrations in proptest::collection::vec(
            (1usize..17, addr_strategy()), 0..40),
        writes in proptest::collection::vec(addr_strategy(), 1..16),
    ) {
        let config = CommitLogConfig { grain_log2, shards, lock_free, ..Default::default() };
        let log = CommitLog::with_config(config, 0);
        for (rank, addr) in &registrations {
            log.register_reader(*addr, *rank);
        }
        let cascade_victims: std::collections::HashSet<usize> =
            registrations.iter().map(|(rank, _)| *rank).collect();
        let overlapping: std::collections::HashSet<usize> = registrations
            .iter()
            .filter(|(_, addr)| {
                writes
                    .iter()
                    .any(|w| w >> grain_log2 == addr >> grain_log2)
            })
            .map(|(rank, _)| *rank)
            .collect();
        let doomed: std::collections::HashSet<usize> =
            log.take_readers(writes.iter().copied()).ranks().collect();
        prop_assert!(
            doomed.is_subset(&cascade_victims),
            "doomed a thread the cascade would not have squashed: {doomed:?} vs {cascade_victims:?}"
        );
        prop_assert_eq!(
            &doomed, &overlapping,
            "doom set is not exactly the overlapping readers"
        );
        // Cleared on enumeration: nothing left to doom twice.
        prop_assert!(log.take_readers(writes.iter().copied()).is_empty());
        // Disjoint registrations survive untouched.
        for (rank, addr) in &registrations {
            if !overlapping.contains(rank) {
                prop_assert!(
                    log.registered_readers(*addr).contains(*rank),
                    "bystander registration of rank {rank} was consumed"
                );
            }
        }
    }

    /// Regrain soundness: a coarsen/split (or any sequence of them)
    /// injected between the reads (`snapshot`) and `validate_against`
    /// never misses a true conflict — the PR 3 one-sided guarantee
    /// survives every regrain interleaving.  Regrains before the commit,
    /// after the commit, or on unrelated regions make no difference: a
    /// commit overlapping a read at word level is always flagged.
    #[test]
    fn regrain_between_read_and_validate_never_misses_a_conflict(
        floor_i in 0u32..2,
        initial_i in 0u32..3,
        shards in (0u32..3).prop_map(|i| [1usize, 2, 8][i as usize]),
        lock_free in any::<bool>(),
        reads in proptest::collection::vec((1u64..2048).prop_map(|i| i * WORD_BYTES), 1..16),
        commits in proptest::collection::vec((1u64..2048).prop_map(|i| i * WORD_BYTES), 1..16),
        regrains_before in proptest::collection::vec((0u64..5, 0u32..3), 0..6),
        regrains_after in proptest::collection::vec((0u64..5, 0u32..3), 0..6),
    ) {
        let ladder = [WORD_GRAIN_LOG2, LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2];
        let floor = ladder[floor_i as usize];
        let config = CommitLogConfig { grain_log2: floor, shards, lock_free, ..Default::default() };
        // 2048 words = 16 KiB = four regions; regrains target regions 0..5
        // so unrelated and out-of-window regions are exercised too.
        let log = CommitLog::with_initial_grain(config, 1 << 14, ladder[initial_i as usize]);
        let mem = GlobalMemory::new(1 << 16);
        let reads: std::collections::HashSet<u64> = reads.into_iter().collect();
        let commits: std::collections::HashSet<u64> = commits.into_iter().collect();
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        for &addr in &reads {
            let _ = buf.load_logged(&mem, Some(&log), addr, WORD_BYTES).unwrap();
        }
        for &(region, grain_i) in &regrains_before {
            log.regrain(region, ladder[grain_i as usize]);
        }
        log.record(commits.iter().copied());
        for &(region, grain_i) in &regrains_after {
            log.regrain(region, ladder[grain_i as usize]);
        }
        let word_overlap = commits.iter().any(|a| reads.contains(a));
        if word_overlap {
            prop_assert!(
                !buf.validate_against(&log),
                "missed a word-level conflict across regrains (floor {floor}, \
                 before {regrains_before:?}, after {regrains_after:?})"
            );
        }
        // And a regrained region conservatively invalidates its own
        // outstanding snapshots, so revalidation can only be *more*
        // conservative, never less: a read in a region whose grain
        // actually flipped (requests are clamped into [floor, region],
        // so compare against the *effective* initial grain) must fail.
        let initial = ladder[initial_i as usize]
            .clamp(floor, mutls_membuf::region_log2_for_grain(floor));
        if reads.iter().any(|&a| log.grain_of(a) != initial) {
            prop_assert!(!buf.validate_against(&log));
        }
    }

    /// Lock-free commit-path interleaving property (PR 7): N real
    /// committer threads CAS-publishing arbitrary mixes of disjoint and
    /// colliding slots, released together through a barrier.  Afterwards
    /// **every stamp is visible** (no lost update, whatever the
    /// interleaving), every shard epoch equals its reservation count
    /// (epochs are exact and monotone — `fetch_add` never skips or
    /// repeats), no slot exceeds the epoch it was reserved from, and the
    /// aggregate counters are exact.
    #[test]
    fn concurrent_disjoint_commits_never_lose_a_stamp(
        shards in (0u32..3).prop_map(|i| [1usize, 2, 4][i as usize]),
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..64, 1..8), 2..8),
    ) {
        let config = CommitLogConfig { grain_log2: WORD_GRAIN_LOG2, shards, lock_free: true, ..Default::default() };
        // 64 word slots spread over `shards` regions: slot i lives in
        // region (i % shards), so every batch mixes shards and colliding
        // slots are common.  The capacity makes every region dense — the
        // property is about the CAS fast path.
        let log = std::sync::Arc::new(CommitLog::with_config(config, (shards as u64) << 12));
        let region_bytes = 1u64 << log.region_log2();
        let addr_of = |slot: u64| (slot % shards as u64) * region_bytes + (slot / shards as u64) * WORD_BYTES;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(batches.len()));
        let handles: Vec<_> = batches
            .iter()
            .map(|batch| {
                let log = std::sync::Arc::clone(&log);
                let barrier = std::sync::Arc::clone(&barrier);
                let addrs: Vec<u64> = batch.iter().map(|&s| addr_of(s)).collect();
                std::thread::spawn(move || {
                    barrier.wait();
                    log.record(addrs.iter().copied())
                })
            })
            .collect();
        for h in handles {
            let version = h.join().unwrap();
            prop_assert!(version > 0, "a non-empty batch published no version");
        }
        // Every stamp visible: no interleaving loses an update.
        let mut touched: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for batch in &batches {
            for &slot in batch {
                touched.insert(addr_of(slot));
            }
        }
        for &addr in &touched {
            prop_assert!(log.version_of(addr) > 0, "slot {addr:#x} lost its stamp");
            prop_assert!(
                log.version_of(addr) <= log.snapshot(addr),
                "slot {addr:#x} outran its shard epoch"
            );
        }
        // Shard epochs are exact: one reservation per (batch, touched
        // shard) pair, so the epoch equals the number of batches whose
        // addresses hit the shard.
        for shard in 0..shards as u64 {
            let expected = batches
                .iter()
                .filter(|batch| batch.iter().any(|&s| s % shards as u64 == shard))
                .count() as u64;
            prop_assert_eq!(
                log.snapshot(shard * region_bytes),
                expected,
                "shard {} epoch drifted from its reservation count", shard
            );
        }
        prop_assert_eq!(log.commits(), batches.len() as u64);
    }

    /// MVCC conservatism sandwich (PR 8): for arbitrary grains, ring
    /// depths (including the depth-1 degeneration), bucket widths
    /// (including the one-version-per-bucket setting where small rings
    /// overflow constantly) and commit-batch interleavings, ring-probe
    /// validation is
    ///
    /// * never *more* conservative than full value-by-value comparison —
    ///   a commit overlapping a read at **word** level is always flagged
    ///   (values never change in this test, so value comparison flags
    ///   nothing: every flag mvcc must raise is exactly the structural
    ///   word overlap that version validation exists to catch, ABA
    ///   included), and
    /// * never *less* conservative than single-version validation — a
    ///   snapshot the single-version log dooms may precise-pass under
    ///   mvcc, but never the other way round: whenever the depth-1 twin
    ///   (identical stamp sequence) validates, the mvcc log validates
    ///   too, at every depth and under overflow.
    #[test]
    fn mvcc_is_sandwiched_between_value_and_single_version_validation(
        grain_log2 in grain_strategy(),
        shards in (0u32..3).prop_map(|i| [1usize, 2, 8][i as usize]),
        lock_free in any::<bool>(),
        ring_depth in (0u32..3).prop_map(|i| [1u32, 2, 4][i as usize]),
        ring_bucket_log2 in (0u32..2).prop_map(|i| [0u32, 6][i as usize]),
        reads in proptest::collection::vec(addr_strategy(), 1..16),
        batches in proptest::collection::vec(
            proptest::collection::vec(addr_strategy(), 1..8), 1..6),
    ) {
        let reads: std::collections::HashSet<u64> = reads.into_iter().collect();
        let mem = GlobalMemory::new(1 << 16);
        let mvcc_config = CommitLogConfig {
            grain_log2, shards, lock_free, ring_depth, ring_bucket_log2,
        };
        let single_config = CommitLogConfig { ring_depth: 1, ..mvcc_config };
        let mvcc_log = CommitLog::with_config(mvcc_config, 1 << 15); // dense/sparse mix
        let single_log = CommitLog::with_config(single_config, 1 << 15);
        let mut mvcc_buf = GlobalBuffer::new(BufferConfig::default());
        let mut single_buf = GlobalBuffer::new(BufferConfig::default());
        for &addr in &reads {
            let _ = mvcc_buf.load_logged(&mem, Some(&mvcc_log), addr, WORD_BYTES).unwrap();
            let _ = single_buf.load_logged(&mem, Some(&single_log), addr, WORD_BYTES).unwrap();
        }
        // Identical stamp sequences on both logs, one version per batch.
        for batch in &batches {
            mvcc_log.record(batch.iter().copied());
            single_log.record(batch.iter().copied());
        }
        let mvcc_valid = mvcc_buf.validate_against(&mvcc_log);
        let single_valid = single_buf.validate_against(&single_log);
        let word_overlap = batches.iter().flatten().any(|a| reads.contains(a));
        if word_overlap {
            prop_assert!(
                !mvcc_valid,
                "missed a word-level conflict (depth {ring_depth}, bucket_log2 {ring_bucket_log2}, grain {grain_log2})"
            );
        }
        if single_valid {
            prop_assert!(
                mvcc_valid,
                "mvcc was stricter than single-version (depth {ring_depth}, bucket_log2 {ring_bucket_log2}, grain {grain_log2})"
            );
        }
        if ring_depth == 1 {
            // Depth-1 degeneration: exactly the legacy verdict.
            prop_assert_eq!(mvcc_valid, single_valid);
        }
    }

    /// Ring probes across regrain interleavings (PR 8): regrains injected
    /// before/after the commit batch truncate the rings conservatively —
    /// a word-level overlap is still always flagged, and a region whose
    /// grain actually flipped dooms its outstanding snapshots exactly as
    /// the single-version protocol does.
    #[test]
    fn mvcc_regrain_during_validate_never_misses_a_conflict(
        floor_i in 0u32..2,
        initial_i in 0u32..3,
        ring_depth in (0u32..3).prop_map(|i| [1u32, 2, 4][i as usize]),
        lock_free in any::<bool>(),
        reads in proptest::collection::vec((1u64..2048).prop_map(|i| i * WORD_BYTES), 1..16),
        commits in proptest::collection::vec((1u64..2048).prop_map(|i| i * WORD_BYTES), 1..16),
        regrains_before in proptest::collection::vec((0u64..5, 0u32..3), 0..6),
        regrains_after in proptest::collection::vec((0u64..5, 0u32..3), 0..6),
    ) {
        let ladder = [WORD_GRAIN_LOG2, LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2];
        let floor = ladder[floor_i as usize];
        let config = CommitLogConfig {
            grain_log2: floor,
            shards: 4,
            lock_free,
            ring_depth,
            ring_bucket_log2: 0, // maximal ring churn: every version its own bucket
        };
        let log = CommitLog::with_initial_grain(config, 1 << 14, ladder[initial_i as usize]);
        let mem = GlobalMemory::new(1 << 16);
        let reads: std::collections::HashSet<u64> = reads.into_iter().collect();
        let commits: std::collections::HashSet<u64> = commits.into_iter().collect();
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        for &addr in &reads {
            let _ = buf.load_logged(&mem, Some(&log), addr, WORD_BYTES).unwrap();
        }
        for &(region, grain_i) in &regrains_before {
            log.regrain(region, ladder[grain_i as usize]);
        }
        log.record(commits.iter().copied());
        for &(region, grain_i) in &regrains_after {
            log.regrain(region, ladder[grain_i as usize]);
        }
        if commits.iter().any(|a| reads.contains(a)) {
            prop_assert!(
                !buf.validate_against(&log),
                "ring probe missed a word-level conflict across regrains \
                 (floor {floor}, depth {ring_depth}, before {regrains_before:?}, \
                  after {regrains_after:?})"
            );
        }
        let initial = ladder[initial_i as usize]
            .clamp(floor, mutls_membuf::region_log2_for_grain(floor));
        if reads.iter().any(|&a| log.grain_of(a) != initial) {
            prop_assert!(!buf.validate_against(&log), "regrained region must doom its snapshots");
        }
    }

    /// Address-space registration: an address is contained iff it falls in
    /// a registered range that has not been unregistered.
    #[test]
    fn address_space_registration_model(
        ranges in proptest::collection::vec((1u64..2000, 1u64..64), 1..20),
        probe in 1u64..2100,
    ) {
        let mut space = AddressSpace::new();
        for (start, len) in &ranges {
            space.register(*start, *len);
        }
        let expected = ranges.iter().any(|(s, l)| probe >= *s && probe < s + l);
        prop_assert_eq!(space.contains(probe, 1), expected);
    }
}
