//! Property-based tests of the buffering layer: the word-granular hash
//! map and the read/write-set buffer must behave exactly like simple
//! model implementations for arbitrary operation sequences.

use std::collections::HashMap;

use proptest::prelude::*;

use mutls_membuf::{
    AddressSpace, BufferConfig, GlobalBuffer, GlobalMemory, MainMemory, WordMap, WORD_BYTES,
};

/// Arbitrary word-aligned address within a small arena.
fn addr_strategy() -> impl Strategy<Value = u64> {
    (1u64..512).prop_map(|i| i * WORD_BYTES)
}

proptest! {
    /// The WordMap behaves like a HashMap for whole-word inserts as long
    /// as its overflow area is not exhausted.
    #[test]
    fn wordmap_matches_hashmap_model(ops in proptest::collection::vec((addr_strategy(), any::<u64>()), 1..200)) {
        let mut map = WordMap::new(1024, 1024);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (addr, value) in ops {
            // Overflow never triggers because capacity ≥ distinct addresses.
            let _ = map.insert_word(addr, value);
            model.insert(addr, value);
        }
        prop_assert_eq!(map.len(), model.len());
        for (addr, value) in &model {
            prop_assert_eq!(map.get(*addr).map(|e| e.data), Some(*value));
        }
    }

    /// Speculative load/store through a GlobalBuffer followed by a commit
    /// is equivalent to applying the stores directly to memory, and loads
    /// always observe the thread's own writes.
    #[test]
    fn buffered_stores_commit_like_direct_stores(
        ops in proptest::collection::vec((addr_strategy(), any::<u64>(), any::<bool>()), 1..200)
    ) {
        let mem = GlobalMemory::new(1 << 16);
        let shadow = GlobalMemory::new(1 << 16);
        // Seed both memories identically.
        for i in 1..512u64 {
            mem.write_word(i * WORD_BYTES, i.wrapping_mul(0x9E37));
            shadow.write_word(i * WORD_BYTES, i.wrapping_mul(0x9E37));
        }
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let mut local: HashMap<u64, u64> = HashMap::new();
        for (addr, value, is_store) in ops {
            if is_store {
                buf.store(addr, value, WORD_BYTES).unwrap();
                shadow.write_word(addr, value);
                local.insert(addr, value);
            } else {
                let got = buf.load(&mem, addr, WORD_BYTES).unwrap();
                let want = local.get(&addr).copied().unwrap_or_else(|| mem.read_word(addr));
                prop_assert_eq!(got, want, "load at {:#x}", addr);
            }
        }
        // No interfering writes happened, so validation must succeed and the
        // commit must make main memory equal to the shadow memory.
        prop_assert!(buf.validate(&mem));
        buf.commit(&mem);
        for i in 1..512u64 {
            let a = i * WORD_BYTES;
            prop_assert_eq!(mem.read_word(a), shadow.read_word(a), "word {:#x}", a);
        }
    }

    /// Validation fails exactly when main memory changed under an address
    /// in the read-set.
    #[test]
    fn validation_detects_interfering_writes(
        read_addr in addr_strategy(),
        write_addr in addr_strategy(),
        new_value in any::<u64>(),
    ) {
        let mem = GlobalMemory::new(1 << 16);
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let original = mem.read_word(read_addr);
        let _ = buf.load(&mem, read_addr, WORD_BYTES).unwrap();
        mem.write_word(write_addr, new_value);
        let expect_valid = write_addr != read_addr || new_value == original;
        prop_assert_eq!(buf.validate(&mem), expect_valid);
    }

    /// Address-space registration: an address is contained iff it falls in
    /// a registered range that has not been unregistered.
    #[test]
    fn address_space_registration_model(
        ranges in proptest::collection::vec((1u64..2000, 1u64..64), 1..20),
        probe in 1u64..2100,
    ) {
        let mut space = AddressSpace::new();
        for (start, len) in &ranges {
            space.register(*start, *len);
        }
        let expected = ranges.iter().any(|(s, l)| probe >= *s && probe < s + l);
        prop_assert_eq!(space.contains(probe, 1), expected);
    }
}
