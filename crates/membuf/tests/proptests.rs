//! Property-based tests of the buffering layer: the word-granular hash
//! map and the read/write-set buffer must behave exactly like simple
//! model implementations for arbitrary operation sequences.

use std::collections::HashMap;

use proptest::prelude::*;

use mutls_membuf::{
    AddressSpace, BufferConfig, CommitLog, GlobalBuffer, GlobalMemory, MainMemory, WordMap,
    WORD_BYTES,
};

/// Arbitrary word-aligned address within a small arena.
fn addr_strategy() -> impl Strategy<Value = u64> {
    (1u64..512).prop_map(|i| i * WORD_BYTES)
}

proptest! {
    /// The WordMap behaves like a HashMap for whole-word inserts as long
    /// as its overflow area is not exhausted.
    #[test]
    fn wordmap_matches_hashmap_model(ops in proptest::collection::vec((addr_strategy(), any::<u64>()), 1..200)) {
        let mut map = WordMap::new(1024, 1024);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (addr, value) in ops {
            // Overflow never triggers because capacity ≥ distinct addresses.
            let _ = map.insert_word(addr, value);
            model.insert(addr, value);
        }
        prop_assert_eq!(map.len(), model.len());
        for (addr, value) in &model {
            prop_assert_eq!(map.get(*addr).map(|e| e.data), Some(*value));
        }
    }

    /// Speculative load/store through a GlobalBuffer followed by a commit
    /// is equivalent to applying the stores directly to memory, and loads
    /// always observe the thread's own writes.
    #[test]
    fn buffered_stores_commit_like_direct_stores(
        ops in proptest::collection::vec((addr_strategy(), any::<u64>(), any::<bool>()), 1..200)
    ) {
        let mem = GlobalMemory::new(1 << 16);
        let shadow = GlobalMemory::new(1 << 16);
        // Seed both memories identically.
        for i in 1..512u64 {
            mem.write_word(i * WORD_BYTES, i.wrapping_mul(0x9E37));
            shadow.write_word(i * WORD_BYTES, i.wrapping_mul(0x9E37));
        }
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let mut local: HashMap<u64, u64> = HashMap::new();
        for (addr, value, is_store) in ops {
            if is_store {
                buf.store(addr, value, WORD_BYTES).unwrap();
                shadow.write_word(addr, value);
                local.insert(addr, value);
            } else {
                let got = buf.load(&mem, addr, WORD_BYTES).unwrap();
                let want = local.get(&addr).copied().unwrap_or_else(|| mem.read_word(addr));
                prop_assert_eq!(got, want, "load at {:#x}", addr);
            }
        }
        // No interfering writes happened, so validation must succeed and the
        // commit must make main memory equal to the shadow memory.
        prop_assert!(buf.validate(&mem));
        buf.commit(&mem);
        for i in 1..512u64 {
            let a = i * WORD_BYTES;
            prop_assert_eq!(mem.read_word(a), shadow.read_word(a), "word {:#x}", a);
        }
    }

    /// Validation fails exactly when main memory changed under an address
    /// in the read-set.
    #[test]
    fn validation_detects_interfering_writes(
        read_addr in addr_strategy(),
        write_addr in addr_strategy(),
        new_value in any::<u64>(),
    ) {
        let mem = GlobalMemory::new(1 << 16);
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        let original = mem.read_word(read_addr);
        let _ = buf.load(&mem, read_addr, WORD_BYTES).unwrap();
        mem.write_word(write_addr, new_value);
        let expect_valid = write_addr != read_addr || new_value == original;
        prop_assert_eq!(buf.validate(&mem), expect_valid);
    }

    /// Commit-log validation round-trip: a buffer that read a set of
    /// addresses conflicts with a later commit batch iff the batch
    /// overlaps its read-set — disjoint address sets never conflict,
    /// overlapping write-after-read always flags (even for same-value
    /// ABA writes, which is what distinguishes version validation from
    /// value validation).
    #[test]
    fn commit_log_flags_exactly_the_overlapping_commits(
        reads in proptest::collection::vec(addr_strategy(), 1..32),
        commits in proptest::collection::vec(addr_strategy(), 0..32),
    ) {
        let reads: std::collections::HashSet<u64> = reads.into_iter().collect();
        let commits: std::collections::HashSet<u64> = commits.into_iter().collect();
        let mem = GlobalMemory::new(1 << 16);
        let log = CommitLog::new();
        let mut buf = GlobalBuffer::new(BufferConfig::default());
        for &addr in &reads {
            let _ = buf.load_logged(&mem, Some(&log), addr, WORD_BYTES).unwrap();
        }
        prop_assert!(buf.validate_against(&log), "no commit yet, must be valid");
        // One commit batch after every read; values unchanged (pure ABA).
        log.record(commits.iter().copied());
        let overlaps = commits.iter().any(|a| reads.contains(a));
        prop_assert_eq!(
            !buf.validate_against(&log),
            overlaps,
            "reads {:?} vs commits {:?}",
            reads,
            commits
        );
    }

    /// Absorb round-trip: after a parent absorbs a validated child,
    /// (a) every child write is visible through the parent's write-set
    /// (so later joiners validate against it), and (b) every child read
    /// keeps its snapshot version, so a commit that lands *after* the
    /// absorb still flags the parent at its own validation.
    #[test]
    fn absorb_roundtrips_child_writes_and_read_versions(
        child_reads in proptest::collection::vec(addr_strategy(), 1..24),
        child_writes in proptest::collection::vec((addr_strategy(), any::<u64>()), 1..24),
        late_commit in addr_strategy(),
    ) {
        let child_reads: std::collections::HashSet<u64> = child_reads.into_iter().collect();
        let mem = GlobalMemory::new(1 << 16);
        let log = CommitLog::new();
        let mut parent = GlobalBuffer::new(BufferConfig::default());
        let mut child = GlobalBuffer::new(BufferConfig::default());
        for &addr in &child_reads {
            let _ = child.load_logged(&mem, Some(&log), addr, WORD_BYTES).unwrap();
        }
        let mut last_written: HashMap<u64, u64> = HashMap::new();
        for &(addr, value) in &child_writes {
            child.store(addr, value, WORD_BYTES).unwrap();
            last_written.insert(addr, value);
        }
        parent.absorb(&child).unwrap();
        // (a) absorbed writes are visible through the parent.
        for (&addr, &value) in &last_written {
            prop_assert_eq!(parent.load(&mem, addr, WORD_BYTES).unwrap(), value);
        }
        prop_assert!(parent.validate_against(&log), "nothing committed yet");
        // (b) a commit after the absorb conflicts iff it overlaps one of
        // the child's reads.  All reads here happened before the child's
        // own writes, so even a read-modify-write address carries a
        // genuine dependence on the predecessor state.
        log.record_word(late_commit);
        let dependent = child_reads.contains(&late_commit);
        prop_assert_eq!(!parent.validate_against(&log), dependent);
    }

    /// Address-space registration: an address is contained iff it falls in
    /// a registered range that has not been unregistered.
    #[test]
    fn address_space_registration_model(
        ranges in proptest::collection::vec((1u64..2000, 1u64..64), 1..20),
        probe in 1u64..2100,
    ) {
        let mut space = AddressSpace::new();
        for (start, len) in &ranges {
            space.register(*start, *len);
        }
        let expected = ranges.iter().any(|(s, l)| probe >= *s && probe < s + l);
        prop_assert_eq!(space.contains(probe, 1), expected);
    }
}
