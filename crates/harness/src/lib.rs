//! # mutls-harness — experiment harness regenerating the paper's evaluation
//!
//! Every table and figure of the MUTLS evaluation (§V) has a corresponding
//! generator here:
//!
//! | Paper artefact | Generator |
//! |----------------|-----------|
//! | Table II (benchmarks)                | [`table2`] |
//! | Fig. 3 (speedup, computation-intensive) | [`figure3`] |
//! | Fig. 4 (speedup, memory-intensive)      | [`figure4`] |
//! | Fig. 5 (critical path efficiency)       | [`figure5`] |
//! | Fig. 6 (speculative path efficiency)    | [`figure6`] |
//! | Fig. 7 (power efficiency)               | [`figure7`] |
//! | Fig. 8 (critical path breakdown)        | [`figure8`] |
//! | Fig. 9 (speculative path breakdown)     | [`figure9`] |
//! | Fig. 10 (forking model comparison)      | [`figure10`] |
//! | Fig. 11 (rollback sensitivity)          | [`figure11`] |
//! | Adaptive governor sweep (this repo)     | [`adaptive_sweep`] |
//! | Conflict sweep, real rollbacks (this repo) | [`conflict_sweep`] |
//! | Buffer-overflow pressure sweep (this repo) | [`overflow_sweep`] |
//! | Commit-log grain sweep (this repo)      | [`grain_sweep`] |
//! | Recovery-engine sweep (this repo)       | [`recovery_sweep`] |
//! | Adaptive grain-control sweep (this repo) | [`graincontrol_sweep`] |
//! | Flight-recorder scenario (this repo)    | [`trace_scenario`] |
//! | Commit-path stress, locked vs lock-free (this repo) | [`commitbench`] |
//! | Time Warp parallel-simulation scaling (this repo) | [`parsim`] |
//! | Live-metrics scenario (this repo)       | [`metrics_scenario`] |
//!
//! `mutls-experiments --json <path>` additionally writes the sweep rows
//! of the native experiments as machine-readable JSON (schema
//! [`BENCH_SCHEMA_VERSION`]), so per-point wasted-work, latency-quantile
//! and commit-throughput figures can be tracked across PRs, and
//! `--trace <path>` exports every traced run of the selected experiments
//! as one Chrome trace-event document (open it in Perfetto).
//!
//! The `mutls-experiments` binary wraps these functions; the Criterion
//! benches in `crates/bench` regenerate the same rows under `cargo bench`.
//!
//! The figure experiments run on the deterministic multicore simulator
//! (`mutls-simcpu`), which substitutes for the paper's 64-core AMD Opteron
//! testbed (see `DESIGN.md` §2), so they are reproducible on any host;
//! independent sweep points fan out across host threads with
//! deterministic output ordering.  The conflict and overflow sweeps run on
//! the *native* runtime, because their whole point is exercising real
//! dependence validation and buffer pressure end-to-end.
//!
//! ## Simulator-thread budgeting (no oversubscription)
//!
//! Since the Time Warp PR the simulator itself can run parallel
//! (`SimConfig::sim_threads`, surfaced as `mutls-experiments
//! --sim-threads N` / the `SIM_THREADS` env var).  That nests two levels
//! of parallelism: the sweep fan-out (`par_map`, which runs
//! `min(host_parallelism, points)` workers) and the per-simulation shard
//! workers.  The policy, implemented by
//! [`ExperimentConfig::budgeted_sim_threads`] and applied at every
//! `par_map`-driven simulation site, is that the product of concurrent
//! sweep workers and per-point `sim_threads` never exceeds host
//! parallelism: each fanned point runs at
//! `min(sim_threads, host / sweep_workers)` threads (floored at 1).
//! Serial replays (the recovery/graincontrol replays, the trace scenario
//! and the `parsim` scaling sweep itself) run one simulation at a time
//! and use the full configured value.  Because the parallel simulator is
//! byte-identical to the sequential one, this capping is purely a
//! scheduling decision — it can never change a result.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::{
    adaptive_sweep, breakdown, commitbench, commitbench_with, conflict_sweep, figure10, figure11,
    figure3, figure4, figure5, figure6, figure7, figure8, figure9, format_site_table, grain_label,
    grain_sweep, graincontrol_recoveries, graincontrol_replay, graincontrol_sweep,
    metrics_scenario, overflow_sweep, parsim, record_workload, recovery_replay, recovery_sweep,
    recovery_sweep_modes, speedup_sweep, table2, trace_scenario, AdaptiveRow, BreakdownRow,
    CommitBenchRow, ExperimentConfig, GrainControlRow, GrainControlSimRow, GrainMode, GrainRow,
    MetricKind, MetricsRow, MetricsRun, MetricsSink, NativeRow, ParSimRow, RecoveryRow,
    RecoverySimRow, SweepRow, TraceScenarioRow, TraceSink, ADAPTIVE_ROLLBACK_PROBABILITY,
    BENCH_SCHEMA_VERSION, COMMITBENCH_MIXES, COMMITBENCH_THREADS, COMMITBENCH_THREADS_ENV,
    CONFLICT_SHARING_PERMILLE, GRAINCONTROL_REPS, GRAINCONTROL_SHARING_PERMILLE,
    GRAIN_SWEEP_GRAINS, GRAIN_SWEEP_SHARDS, NATIVE_POLICIES, PARSIM_THREADS, PARSIM_THREADS_ENV,
    RECOVERY_SWEEP_GRAINS, RECOVERY_SWEEP_PERMILLE, RECOVERY_SWEEP_REPS, ROLLBACK_HEAVY,
};
pub use report::{
    format_breakdown_table, format_latency_table, format_rollback_cell, format_sweep_table, Table,
};
