//! Experiment definitions, one per table/figure of the paper's evaluation.

use std::collections::HashMap;
use std::sync::Arc;

use serde::Serialize;

use mutls_adaptive::{GovernorConfig, PolicyKind};
use mutls_membuf::GlobalMemory;
use mutls_runtime::{ForkModel, Phase, RunReport};
use mutls_simcpu::{record_region, simulate, Recording, SimConfig, SimResult};
use mutls_workloads::{
    arena_bytes, descriptor, run_speculative, setup, site_label, Scale, WorkloadKind,
};

use crate::report::{format_breakdown_table, format_sweep_table, Table};

/// CPU counts used by the paper's breakdown figures 8 and 9.
pub const BREAKDOWN_CPUS: [usize; 15] = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 15, 20, 32, 48, 64];

/// Rollback probabilities of figure 11.
pub const ROLLBACK_PROBABILITIES: [f64; 6] = [0.01, 0.05, 0.10, 0.20, 0.50, 1.00];

/// Shared configuration for all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Problem-size preset.
    pub scale: Scale,
    /// CPU counts for sweep figures (3–7).
    pub cpus: Vec<usize>,
    /// RNG seed (rollback injection).
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: Scale::Scaled,
            cpus: vec![1, 2, 4, 8, 16, 32, 48, 64],
            seed: 0xAB5C155A,
        }
    }
}

impl ExperimentConfig {
    /// A fast preset used by tests and smoke benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: Scale::Tiny,
            cpus: vec![1, 4, 16, 64],
            seed: 7,
        }
    }
}

/// One data point of a sweep figure.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Benchmark name.
    pub workload: String,
    /// Number of speculative CPUs.
    pub cpus: usize,
    /// Absolute speedup `T_s / T_N`.
    pub speedup: f64,
    /// Critical path efficiency.
    pub critical_efficiency: f64,
    /// Speculative path efficiency.
    pub speculative_efficiency: f64,
    /// Power efficiency.
    pub power_efficiency: f64,
    /// Parallel execution coverage.
    pub coverage: f64,
    /// Committed speculative threads.
    pub committed: u64,
    /// Rolled-back speculative threads.
    pub rolled_back: u64,
}

/// One row of a breakdown figure (per-phase fractions at a CPU count).
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    /// Benchmark name.
    pub workload: String,
    /// Number of speculative CPUs.
    pub cpus: usize,
    /// Phase label → fraction of the path's runtime.
    pub fractions: Vec<(String, f64)>,
}

/// Which metric a sweep figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Absolute speedup (figures 3 and 4).
    Speedup,
    /// Critical path efficiency (figure 5).
    CriticalEfficiency,
    /// Speculative path efficiency (figure 6).
    SpeculativeEfficiency,
    /// Power efficiency (figure 7).
    PowerEfficiency,
}

/// Record a workload's speculation trace at the given scale.
pub fn record_workload(kind: WorkloadKind, scale: Scale) -> Recording {
    let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, scale)));
    let data = setup(kind, scale, &memory);
    record_region(memory, |ctx| run_speculative(ctx, &data))
}

fn simulate_point(recording: &Recording, cpus: usize, seed: u64) -> SimResult {
    let config = SimConfig {
        num_cpus: cpus,
        fork_model: None,
        rollback_probability: 0.0,
        seed,
        cost: Default::default(),
        governor: Default::default(),
    };
    simulate(recording, config)
}

fn sweep_row(kind: WorkloadKind, cpus: usize, result: &SimResult) -> SweepRow {
    SweepRow {
        workload: kind.name().to_string(),
        cpus,
        speedup: result.speedup(),
        critical_efficiency: result.report.critical_path_efficiency(),
        speculative_efficiency: result.report.speculative_path_efficiency(),
        power_efficiency: result.power_efficiency(),
        coverage: result.report.coverage(),
        committed: result.report.committed_threads,
        rolled_back: result.report.rolled_back_threads,
    }
}

/// Sweep a set of workloads over the configured CPU counts.
pub fn speedup_sweep(kinds: &[WorkloadKind], config: &ExperimentConfig) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &kind in kinds {
        let recording = record_workload(kind, config.scale);
        for &cpus in &config.cpus {
            let result = simulate_point(&recording, cpus, config.seed);
            rows.push(sweep_row(kind, cpus, &result));
        }
    }
    rows
}

fn metric_table(
    title: &str,
    kinds: &[WorkloadKind],
    config: &ExperimentConfig,
    metric: MetricKind,
) -> (Vec<SweepRow>, String) {
    let rows = speedup_sweep(kinds, config);
    let series: Vec<(String, Vec<f64>)> = kinds
        .iter()
        .map(|kind| {
            let values = config
                .cpus
                .iter()
                .map(|&cpus| {
                    rows.iter()
                        .find(|r| r.workload == kind.name() && r.cpus == cpus)
                        .map(|r| match metric {
                            MetricKind::Speedup => r.speedup,
                            MetricKind::CriticalEfficiency => r.critical_efficiency,
                            MetricKind::SpeculativeEfficiency => r.speculative_efficiency,
                            MetricKind::PowerEfficiency => r.power_efficiency,
                        })
                        .unwrap_or(f64::NAN)
                })
                .collect();
            (kind.name().to_string(), values)
        })
        .collect();
    let text = format_sweep_table(title, &config.cpus, &series);
    (rows, text)
}

/// Figure 3: speedup of the computation-intensive applications.
pub fn figure3(config: &ExperimentConfig) -> (Vec<SweepRow>, String) {
    metric_table(
        "Figure 3 — Performance of Computation-Intensive Applications (absolute speedup)",
        &WorkloadKind::COMPUTATION_INTENSIVE,
        config,
        MetricKind::Speedup,
    )
}

/// Figure 4: speedup of the memory-intensive applications.
pub fn figure4(config: &ExperimentConfig) -> (Vec<SweepRow>, String) {
    metric_table(
        "Figure 4 — Performance of Memory-Intensive Applications (absolute speedup)",
        &WorkloadKind::MEMORY_INTENSIVE,
        config,
        MetricKind::Speedup,
    )
}

/// Figure 5: critical path execution efficiency of all benchmarks.
pub fn figure5(config: &ExperimentConfig) -> (Vec<SweepRow>, String) {
    metric_table(
        "Figure 5 — Critical Path Execution Efficiency",
        &WorkloadKind::ALL,
        config,
        MetricKind::CriticalEfficiency,
    )
}

/// Figure 6: speculative path execution efficiency of all benchmarks.
pub fn figure6(config: &ExperimentConfig) -> (Vec<SweepRow>, String) {
    metric_table(
        "Figure 6 — Speculative Path Execution Efficiency",
        &WorkloadKind::ALL,
        config,
        MetricKind::SpeculativeEfficiency,
    )
}

/// Figure 7: power efficiency of all benchmarks.
pub fn figure7(config: &ExperimentConfig) -> (Vec<SweepRow>, String) {
    metric_table(
        "Figure 7 — Power Efficiency",
        &WorkloadKind::ALL,
        config,
        MetricKind::PowerEfficiency,
    )
}

/// Phase breakdown of either execution path for one workload.
pub fn breakdown(
    kind: WorkloadKind,
    config: &ExperimentConfig,
    cpus_list: &[usize],
    speculative_path: bool,
) -> Vec<BreakdownRow> {
    let recording = record_workload(kind, config.scale);
    let phases: [Phase; 10] = Phase::ALL;
    let mut rows = Vec::new();
    for &cpus in cpus_list {
        let result = simulate_point(&recording, cpus, config.seed);
        let stats = if speculative_path {
            &result.report.speculative
        } else {
            &result.report.critical
        };
        let fractions = phases
            .iter()
            .map(|p| (p.label().to_string(), stats.fraction(*p)))
            .collect();
        rows.push(BreakdownRow {
            workload: kind.name().to_string(),
            cpus,
            fractions,
        });
    }
    rows
}

fn breakdown_text(title: &str, rows: &[BreakdownRow]) -> String {
    let cpus: Vec<usize> = rows.iter().map(|r| r.cpus).collect();
    let phases: Vec<&str> = rows
        .first()
        .map(|r| r.fractions.iter().map(|(p, _)| p.as_str()).collect())
        .unwrap_or_default();
    let values: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| r.fractions.iter().map(|(_, v)| *v).collect())
        .collect();
    format_breakdown_table(title, &cpus, &phases, &values)
}

/// Figure 8: critical path breakdown for fft and md.
pub fn figure8(config: &ExperimentConfig) -> (Vec<BreakdownRow>, String) {
    let cpus: Vec<usize> = BREAKDOWN_CPUS
        .iter()
        .copied()
        .filter(|c| config.cpus.iter().max().map(|&m| *c <= m).unwrap_or(true))
        .collect();
    let mut rows = breakdown(WorkloadKind::Fft, config, &cpus, false);
    let fft_text = breakdown_text("Figure 8a — Critical Path Breakdown: FFT", &rows);
    let md_rows = breakdown(WorkloadKind::Md, config, &cpus, false);
    let md_text = breakdown_text(
        "Figure 8b — Critical Path Breakdown: Molecular Dynamics",
        &md_rows,
    );
    rows.extend(md_rows);
    (rows, format!("{fft_text}\n{md_text}"))
}

/// Figure 9: speculative path breakdown for fft and matmult.
pub fn figure9(config: &ExperimentConfig) -> (Vec<BreakdownRow>, String) {
    let cpus: Vec<usize> = BREAKDOWN_CPUS
        .iter()
        .copied()
        .filter(|c| *c >= 2 && config.cpus.iter().max().map(|&m| *c <= m).unwrap_or(true))
        .collect();
    let mut rows = breakdown(WorkloadKind::Fft, config, &cpus, true);
    let fft_text = breakdown_text("Figure 9a — Speculative Path Breakdown: FFT", &rows);
    let mm_rows = breakdown(WorkloadKind::Matmult, config, &cpus, true);
    let mm_text = breakdown_text("Figure 9b — Speculative Path Breakdown: Matmult", &mm_rows);
    rows.extend(mm_rows);
    (rows, format!("{fft_text}\n{mm_text}"))
}

/// Figure 10: speedups of the in-order and out-of-order models normalized
/// to the mixed model, for the tree-form recursion benchmarks.
pub fn figure10(config: &ExperimentConfig) -> (Vec<(String, usize, f64)>, String) {
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for &kind in &WorkloadKind::TREE_RECURSION {
        let recording = record_workload(kind, config.scale);
        for model in [ForkModel::InOrder, ForkModel::OutOfOrder] {
            let mut values = Vec::new();
            for &cpus in &config.cpus {
                let mixed = simulate_point(&recording, cpus, config.seed).speedup();
                let other = simulate(
                    &recording,
                    SimConfig {
                        num_cpus: cpus,
                        fork_model: Some(model),
                        rollback_probability: 0.0,
                        seed: config.seed,
                        cost: Default::default(),
                        governor: Default::default(),
                    },
                )
                .speedup();
                let normalized = other / mixed.max(f64::MIN_POSITIVE);
                rows.push((
                    format!("{} {}", kind.name(), model.label()),
                    cpus,
                    normalized,
                ));
                values.push(normalized);
            }
            series.push((format!("{} {}", kind.name(), model.label()), values));
        }
    }
    let text = format_sweep_table(
        "Figure 10 — Comparison of Forking Models (speedup normalized to mixed)",
        &config.cpus,
        &series,
    );
    (rows, text)
}

/// Figure 11: rollback sensitivity — relative slowdown with respect to the
/// non-rollback run at the largest configured CPU count.
pub fn figure11(config: &ExperimentConfig) -> (Vec<(String, f64, f64)>, String) {
    let kinds = [
        WorkloadKind::Mandelbrot,
        WorkloadKind::Md,
        WorkloadKind::Fft,
        WorkloadKind::Matmult,
        WorkloadKind::Nqueen,
        WorkloadKind::Tsp,
        WorkloadKind::Bh,
    ];
    let cpus = config.cpus.iter().copied().max().unwrap_or(64);
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Figure 11 — Rollback Sensitivity at {cpus} CPUs (fraction of non-rollback speedup preserved)"),
        &["workload", "1%", "5%", "10%", "20%", "50%", "100%"],
    );
    for kind in kinds {
        let recording = record_workload(kind, config.scale);
        let baseline = simulate_point(&recording, cpus, config.seed).speedup();
        let mut row = vec![kind.name().to_string()];
        for &p in &ROLLBACK_PROBABILITIES {
            let degraded = simulate(
                &recording,
                SimConfig {
                    num_cpus: cpus,
                    fork_model: None,
                    rollback_probability: p,
                    seed: config.seed,
                    cost: Default::default(),
                    governor: Default::default(),
                },
            )
            .speedup();
            let sensitivity = degraded / baseline.max(f64::MIN_POSITIVE);
            rows.push((kind.name().to_string(), p, sensitivity));
            row.push(format!("{sensitivity:.2}"));
        }
        table.push_row(row);
    }
    (rows, table.render())
}

/// Injected rollback probability applied to the rollback-heavy workloads
/// (`tsp`, `bh`, `md`) in the adaptive-governor sweep, modelling the
/// conflict-heavy regime where throttling pays off.
pub const ADAPTIVE_ROLLBACK_PROBABILITY: f64 = 0.4;

/// The rollback-heavy workloads of the adaptive sweep.
pub const ROLLBACK_HEAVY: [WorkloadKind; 3] =
    [WorkloadKind::Tsp, WorkloadKind::Bh, WorkloadKind::Md];

/// One row of the adaptive-governor sweep.
#[derive(Debug, Clone, Serialize)]
pub struct AdaptiveRow {
    /// Benchmark name.
    pub workload: String,
    /// Governor policy label.
    pub policy: String,
    /// Injected rollback probability for this run.
    pub rollback_probability: f64,
    /// Absolute speedup `T_s / T_N`.
    pub speedup: f64,
    /// Committed speculative threads.
    pub committed: u64,
    /// Rolled-back speculative threads.
    pub rolled_back: u64,
    /// Work discarded by rollbacks (virtual cycles).
    pub wasted_work: u64,
    /// Fork requests suppressed by the governor.
    pub throttled_forks: u64,
}

/// Render a `RunReport`'s per-site governor profile as a table.
pub fn format_site_table(title: &str, report: &RunReport) -> String {
    let mut table = Table::new(
        title,
        &[
            "site",
            "forks",
            "throttled",
            "commits",
            "rollbacks",
            "overflows",
            "rollback rate",
            "wasted work",
        ],
    );
    for profile in &report.sites {
        let name = site_label(profile.site)
            .map(str::to_string)
            .unwrap_or_else(|| format!("site {}", profile.site));
        table.push_row(vec![
            name,
            profile.forks.to_string(),
            profile.throttled.to_string(),
            profile.commits.to_string(),
            profile.rollbacks.to_string(),
            profile.overflows.to_string(),
            format!("{:.2}", profile.rollback_rate),
            profile.wasted_work.to_string(),
        ]);
    }
    table.render()
}

/// Simulate `recording` under a governor policy.
fn simulate_governed(
    recording: &Recording,
    cpus: usize,
    seed: u64,
    rollback_probability: f64,
    policy: PolicyKind,
) -> SimResult {
    simulate(
        recording,
        SimConfig {
            num_cpus: cpus,
            fork_model: None,
            rollback_probability,
            seed,
            cost: Default::default(),
            governor: GovernorConfig::with_policy(policy),
        },
    )
}

/// Adaptive-governor sweep: Static vs Throttle vs ModelSelect across the
/// rollback-heavy workloads (run with injected rollbacks) plus the
/// remaining figure workloads (run clean), at the largest configured CPU
/// count.  Appends the per-site profile tables of the rollback-heavy
/// workloads under the throttle policy, showing which sites were
/// suppressed.
pub fn adaptive_sweep(config: &ExperimentConfig) -> (Vec<AdaptiveRow>, String) {
    let cpus = config.cpus.iter().copied().max().unwrap_or(16);
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Adaptive Governor Sweep at {cpus} CPUs (per-site throttling and model selection)"),
        &[
            "workload",
            "policy",
            "inj. rollback",
            "speedup",
            "committed",
            "rolled back",
            "wasted work",
            "throttled",
        ],
    );
    let mut site_tables = String::new();
    for kind in WorkloadKind::ALL {
        let heavy = ROLLBACK_HEAVY.contains(&kind);
        let p = if heavy {
            ADAPTIVE_ROLLBACK_PROBABILITY
        } else {
            0.0
        };
        let recording = record_workload(kind, config.scale);
        for policy in PolicyKind::ALL {
            let result = simulate_governed(&recording, cpus, config.seed, p, policy);
            let report = &result.report;
            let row = AdaptiveRow {
                workload: kind.name().to_string(),
                policy: policy.label().to_string(),
                rollback_probability: p,
                speedup: result.speedup(),
                committed: report.committed_threads,
                rolled_back: report.rolled_back_threads,
                wasted_work: report.wasted_work(),
                throttled_forks: report.throttled_forks(),
            };
            table.push_row(vec![
                row.workload.clone(),
                row.policy.clone(),
                format!("{:.0}%", p * 100.0),
                format!("{:.2}", row.speedup),
                row.committed.to_string(),
                row.rolled_back.to_string(),
                row.wasted_work.to_string(),
                row.throttled_forks.to_string(),
            ]);
            if heavy && policy == PolicyKind::Throttle {
                site_tables.push_str(&format_site_table(
                    &format!(
                        "Per-site profile — {} under throttle ({}% injected rollbacks)",
                        kind.name(),
                        p * 100.0
                    ),
                    report,
                ));
                site_tables.push('\n');
            }
            rows.push(row);
        }
    }
    let text = format!("{}\n{site_tables}", table.render());
    (rows, text)
}

/// Table II: the benchmark suite, with the measured memory-access density
/// of each recording added as evidence for the computation/memory
/// classification.
pub fn table2(config: &ExperimentConfig) -> (HashMap<String, f64>, String) {
    let mut table = Table::new(
        "Table II — Benchmarks",
        &[
            "benchmark",
            "description",
            "amount of data (paper)",
            "pattern",
            "class",
            "measured mem density",
        ],
    );
    let mut densities = HashMap::new();
    for kind in WorkloadKind::ALL {
        let d = descriptor(kind);
        let recording = record_workload(kind, config.scale);
        let density = recording.memory_density();
        densities.insert(kind.name().to_string(), density);
        table.push_row(vec![
            d.name.to_string(),
            d.description.to_string(),
            d.amount_of_data.to_string(),
            d.pattern.to_string(),
            match d.class {
                mutls_workloads::WorkloadClass::ComputationIntensive => "computation".to_string(),
                mutls_workloads::WorkloadClass::MemoryIntensive => "memory".to_string(),
            },
            format!("{density:.3}"),
        ]);
    }
    (densities, table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig::quick()
    }

    #[test]
    fn figure3_reports_scaling_compute_workloads() {
        let (rows, text) = figure3(&quick());
        assert!(text.contains("Figure 3"));
        // Speedup at 64 CPUs should be much larger than at 1 CPU for 3x+1.
        let s1 = rows
            .iter()
            .find(|r| r.workload == "3x+1" && r.cpus == 1)
            .unwrap()
            .speedup;
        let s64 = rows
            .iter()
            .find(|r| r.workload == "3x+1" && r.cpus == 64)
            .unwrap()
            .speedup;
        assert!(s64 > s1, "s64 {s64} vs s1 {s1}");
    }

    #[test]
    fn figure10_out_of_order_loses_on_tree_recursion() {
        let (rows, _) = figure10(&quick());
        let max_cpus = quick().cpus.into_iter().max().unwrap();
        let normalized = |kind: &str| {
            rows.iter()
                .find(|(name, cpus, _)| name == &format!("{kind} outoforder") && *cpus == max_cpus)
                .map(|(_, _, v)| *v)
                .unwrap()
        };
        // At tiny scale fft shows the divide-and-conquer gap clearly; the
        // DFS benchmarks have so little work per subtree that the models
        // converge, but out-of-order must never *beat* mixed.
        assert!(
            normalized("fft") < 1.0,
            "fft: out-of-order should trail mixed, got {}",
            normalized("fft")
        );
        for kind in ["matmult", "nqueen", "tsp"] {
            assert!(
                normalized(kind) <= 1.05,
                "{kind}: out-of-order should not beat mixed, got {}",
                normalized(kind)
            );
        }
    }

    #[test]
    fn figure11_sensitivity_is_monotone_in_probability() {
        let config = ExperimentConfig {
            scale: Scale::Tiny,
            cpus: vec![16],
            seed: 3,
        };
        let (rows, _) = figure11(&config);
        let fft: Vec<f64> = rows
            .iter()
            .filter(|(name, _, _)| name == "fft")
            .map(|(_, _, v)| *v)
            .collect();
        assert_eq!(fft.len(), ROLLBACK_PROBABILITIES.len());
        assert!(fft.first().unwrap() >= fft.last().unwrap());
    }

    #[test]
    fn table2_densities_separate_classes() {
        let (densities, text) = table2(&quick());
        assert!(text.contains("Table II"));
        let compute_max = ["3x+1", "mandelbrot"]
            .iter()
            .map(|k| densities[*k])
            .fold(0.0f64, f64::max);
        let memory_min = ["fft", "matmult"]
            .iter()
            .map(|k| densities[*k])
            .fold(f64::INFINITY, f64::min);
        assert!(
            compute_max < memory_min,
            "computation-intensive density {compute_max} should be below memory-intensive {memory_min}"
        );
    }

    #[test]
    fn adaptive_sweep_covers_all_workloads_and_policies() {
        let (rows, text) = adaptive_sweep(&quick());
        assert!(text.contains("Adaptive Governor Sweep"));
        assert!(text.contains("Per-site profile"));
        assert_eq!(rows.len(), WorkloadKind::ALL.len() * PolicyKind::ALL.len());
        // The rollback-heavy workloads run with injected rollbacks.
        for kind in ROLLBACK_HEAVY {
            assert!(rows
                .iter()
                .any(|r| r.workload == kind.name() && r.rollback_probability > 0.0));
        }
        // The static policy never throttles (seed behaviour).
        assert!(rows
            .iter()
            .filter(|r| r.policy == "static")
            .all(|r| r.throttled_forks == 0));
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let rows = breakdown(WorkloadKind::Fft, &quick(), &[4], false);
        let total: f64 = rows[0].fractions.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
