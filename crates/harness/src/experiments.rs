//! Experiment definitions, one per table/figure of the paper's evaluation,
//! plus the native-runtime conflict and buffer-overflow sweeps that
//! validate the adaptive governor on *real* rollback causes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use parking_lot::Mutex;
use serde::Serialize;

use mutls_adaptive::{GovernorConfig, PolicyKind};
use mutls_membuf::{
    BufferConfig, CommitLogConfig, GlobalMemory, RollbackReason, LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2,
    WORD_GRAIN_LOG2,
};
use mutls_metrics::{MetricsConfig, MetricsSeries, MetricsSnapshot, PromWriter};
use mutls_runtime::{ForkModel, Phase, RecoveryConfig, RunReport, Runtime, RuntimeConfig};
use mutls_simcpu::{record_region, simulate, Recording, SimConfig, SimResult};
use mutls_trace::{
    chrome_trace_json, LatencyPhase, LatencyReport, TraceConfig, TraceEvent, TraceRun,
};
use mutls_workloads::{
    arena_bytes, conflict, descriptor, reference_checksum, run_speculative, setup, site_label,
    Scale, WorkloadKind,
};

use crate::report::{
    format_breakdown_table, format_latency_table, format_rollback_cell, format_sweep_table, Table,
};

/// Map `f` over `items` across host threads, preserving input order in the
/// result.  The discrete-event simulator is single-threaded, so the
/// independent points of a sweep (workload × CPU count × policy) scale
/// with host cores; output stays deterministic because each result lands
/// in its input slot.
fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(&items[i]);
                *slots[i].lock() = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled"))
        .collect()
}

/// CPU counts used by the paper's breakdown figures 8 and 9.
pub const BREAKDOWN_CPUS: [usize; 15] = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 15, 20, 32, 48, 64];

/// Rollback probabilities of figure 11.
pub const ROLLBACK_PROBABILITIES: [f64; 6] = [0.01, 0.05, 0.10, 0.20, 0.50, 1.00];

/// Schema version stamped on every machine-readable benchmark row and on
/// the `--json` document wrapper.  Bump when row shapes change: v1 was
/// the PR 4/5 shape; v2 adds `schema_version` itself plus the `latency`,
/// `regrains` and `reader_spills` columns; v3 (the lock-free commit
/// path) adds the wall-clock `commits_per_sec` and `cas_retries` columns
/// to the grain rows and the `commitbench` experiment's rows; v4 (the
/// mvcc commit log) adds the `precise_passes`/`ring_overflows` columns
/// and the mvcc engine to the recovery rows, a `grain_log2` dimension to
/// the recovery replay, and the `recovery` + `precise_passes` columns to
/// the graincontrol rows (swept over the single-version and mvcc
/// engines); v5 (the Time Warp parallel simulator) adds the
/// `sim_threads` column to every row — the effective simulator worker
/// count the row ran under (always stamped, also on native-runtime rows,
/// so a replayed baseline records how it was produced) — plus the
/// `parsim` experiment's rows; v6 (the live telemetry plane) adds the
/// derived `rollback_amplification` column (wasted work over committed
/// work, the headline efficiency figure of the metrics plane) to every
/// rollback-bearing row, the `ring_overflows` column to the grain rows,
/// the `advances_computed` column to the parsim rows, and the `metrics`
/// scenario's rows.
pub const BENCH_SCHEMA_VERSION: u32 = 6;

/// Collects per-run flight-recorder streams across a sweep so the binary
/// can export one Chrome trace-event document (`--trace <path>`).
///
/// Sweeps record each traced run under a unique label; runs fanned out
/// across host threads land in arrival order, so [`TraceSink::chrome_json`]
/// sorts by label to keep the export deterministic.
#[derive(Debug, Default)]
pub struct TraceSink {
    runs: Mutex<Vec<TraceRun>>,
}

impl TraceSink {
    /// A new, empty sink, shared across sweep workers.
    pub fn new() -> Arc<TraceSink> {
        Arc::new(TraceSink::default())
    }

    /// Record one run's drained event stream and drop count.
    pub fn record(&self, label: impl Into<String>, events: Vec<TraceEvent>, dropped: u64) {
        let mut runs = self.runs.lock();
        runs.push(TraceRun {
            label: label.into(),
            events,
            dropped,
        });
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.runs.lock().len()
    }

    /// True when no run has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render every recorded run as one Chrome trace-event JSON document
    /// (one Perfetto process per run, label-sorted so the export is
    /// deterministic regardless of worker arrival order).
    pub fn chrome_json(&self) -> String {
        let mut runs = self.runs.lock().clone();
        runs.sort_by(|a, b| a.label.cmp(&b.label));
        chrome_trace_json(&runs)
    }
}

/// One run's metrics capture recorded into a [`MetricsSink`]: the
/// sampler-filled time series plus the final end-of-run scrape (which may
/// carry export-only labeled gauges, e.g. the Time Warp shard counters,
/// that are deliberately kept out of the byte-compared series).
#[derive(Debug, Clone, Serialize)]
pub struct MetricsRun {
    /// Unique run label (`<experiment>/<workload>/...`).
    pub label: String,
    /// The bounded time series collected while the run was live.
    pub series: MetricsSeries,
    /// The final scrape taken after the run completed.
    pub last: MetricsSnapshot,
}

/// Collects per-run metrics captures across a sweep so the binary can
/// export one Prometheus text exposition or JSON time-series document
/// (`--metrics <path>`).  Runs fanned out across host threads land in
/// arrival order, so both exporters sort by label to keep the output
/// deterministic.
#[derive(Debug, Default)]
pub struct MetricsSink {
    runs: Mutex<Vec<MetricsRun>>,
}

impl MetricsSink {
    /// A new, empty sink, shared across sweep workers.
    pub fn new() -> Arc<MetricsSink> {
        Arc::new(MetricsSink::default())
    }

    /// Record one run's series and final scrape.
    pub fn record(&self, label: impl Into<String>, series: MetricsSeries, last: MetricsSnapshot) {
        let mut runs = self.runs.lock();
        runs.push(MetricsRun {
            label: label.into(),
            series,
            last,
        });
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.runs.lock().len()
    }

    /// True when no run has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Label-sorted clone of the recorded runs.
    fn sorted_runs(&self) -> Vec<MetricsRun> {
        let mut runs = self.runs.lock().clone();
        runs.sort_by(|a, b| a.label.cmp(&b.label));
        runs
    }

    /// Render every run's *final* scrape as one Prometheus text
    /// exposition, each run distinguished by a `run="<label>"` label.
    pub fn prometheus_text(&self) -> String {
        let mut writer = PromWriter::new();
        for run in self.sorted_runs() {
            writer.append(&run.last, &[("run".to_string(), run.label.clone())]);
        }
        writer.finish()
    }

    /// Render every run's full time series (plus final scrape) as one
    /// JSON document, label-sorted.
    pub fn json(&self) -> String {
        let runs = self.sorted_runs();
        let mut out = format!(
            "{{\"schema\":\"mutls-metrics-v{BENCH_SCHEMA_VERSION}\",\"schema_version\":{BENCH_SCHEMA_VERSION},\"runs\":"
        );
        runs.serialize_json(&mut out);
        out.push_str("}\n");
        out
    }
}

/// Shared configuration for all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Problem-size preset.
    pub scale: Scale,
    /// CPU counts for sweep figures (3–7).
    pub cpus: Vec<usize>,
    /// RNG seed (rollback injection).
    pub seed: u64,
    /// Simulator threads per simulation run ([`SimConfig::sim_threads`]):
    /// 1 (the default) keeps every replay on the sequential event loop,
    /// preserving the exact code path the committed baselines were
    /// generated under; higher values engage the Time Warp shard workers.
    /// The parallel simulator is byte-identical to sequential at any
    /// value, so results never depend on this knob — only wall-clock
    /// does.  Sweeps that fan simulation points across host threads cap
    /// the per-point value via [`ExperimentConfig::budgeted_sim_threads`]
    /// so the host is never oversubscribed.
    pub sim_threads: usize,
    /// When set, the sweeps enable their flight recorders and drain each
    /// run's lifecycle events into this sink (the binary's
    /// `--trace <path>` export).  `None` keeps recording disabled — the
    /// zero-overhead default.
    pub trace: Option<Arc<TraceSink>>,
    /// When set, the sweeps enable the live metrics plane and record each
    /// run's time series plus final scrape into this sink (the binary's
    /// `--metrics <path>` export).  `None` keeps the registry disabled —
    /// the one-branch no-op default.
    pub metrics: Option<Arc<MetricsSink>>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: Scale::Scaled,
            cpus: vec![1, 2, 4, 8, 16, 32, 48, 64],
            seed: 0xAB5C155A,
            sim_threads: 1,
            trace: None,
            metrics: None,
        }
    }
}

impl ExperimentConfig {
    /// A fast preset used by tests and smoke benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: Scale::Tiny,
            cpus: vec![1, 4, 16, 64],
            seed: 7,
            sim_threads: 1,
            trace: None,
            metrics: None,
        }
    }

    /// Attach a trace sink: native sweeps enable their flight recorders
    /// and the deterministic replays emit virtual-time events into it.
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Attach a metrics sink: native sweeps enable the sampler-backed
    /// registry and the deterministic replays mirror it off the virtual
    /// clock, all recording into the sink.
    pub fn with_metrics(mut self, sink: Arc<MetricsSink>) -> Self {
        self.metrics = Some(sink);
        self
    }

    /// Set the per-simulation thread count (floored at 1).
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.sim_threads = sim_threads.max(1);
        self
    }

    /// The effective per-simulation thread count: the configured value
    /// floored at 1.  This is the number stamped into every benchmark
    /// row and the value serial (non-fanned) replays run at.
    pub fn effective_sim_threads(&self) -> usize {
        self.sim_threads.max(1)
    }

    /// The per-point thread budget when `points` independent simulations
    /// are fanned across host threads by `par_map`.
    ///
    /// Oversubscription policy: `par_map` runs `min(host, points)` sweep
    /// workers, each driving one simulation at a time, so the total
    /// worker-thread count is `sweep_workers × per_point_sim_threads`.
    /// This caps the per-point value at `host / sweep_workers` (floored
    /// at 1) so that product never exceeds host parallelism — a sweep
    /// wide enough to saturate the host runs its points sequentially
    /// (`sim_threads = 1`), and the Time Warp shards only spin up when
    /// sweep-level parallelism leaves cores idle.  Byte-identity makes
    /// the cap invisible in the results.
    pub fn budgeted_sim_threads(&self, points: usize) -> usize {
        let requested = self.effective_sim_threads();
        if requested == 1 || points <= 1 {
            return requested;
        }
        let host = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        let sweep_workers = host.min(points);
        requested.min((host / sweep_workers).max(1))
    }

    /// The native-runtime recorder configuration implied by `trace`.
    fn trace_config(&self) -> TraceConfig {
        if self.trace.is_some() {
            TraceConfig::enabled()
        } else {
            TraceConfig::default()
        }
    }

    /// Whether simulator replays should emit virtual-time events.
    fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Record one traced run into the sink, if one is attached.
    fn record_trace(&self, label: String, events: Vec<TraceEvent>, dropped: u64) {
        if let Some(sink) = &self.trace {
            sink.record(label, events, dropped);
        }
    }

    /// The native-runtime metrics configuration implied by `metrics`
    /// (millisecond sampling so even tiny-scale runs catch live samples).
    fn metrics_config(&self) -> MetricsConfig {
        if self.metrics.is_some() {
            MetricsConfig::enabled().sample_interval_ms(1)
        } else {
            MetricsConfig::default()
        }
    }

    /// The simulator metrics configuration implied by `metrics`: same
    /// plane, but sampled off the virtual clock (deterministic).
    fn sim_metrics_config(&self) -> MetricsConfig {
        if self.metrics.is_some() {
            MetricsConfig::enabled()
        } else {
            MetricsConfig::default()
        }
    }

    /// Record one run's metrics capture into the sink, if one is attached.
    fn record_metrics(&self, label: String, series: MetricsSeries, last: MetricsSnapshot) {
        if let Some(sink) = &self.metrics {
            sink.record(label, series, last);
        }
    }
}

/// One data point of a sweep figure.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRow {
    /// Benchmark name.
    pub workload: String,
    /// Number of speculative CPUs.
    pub cpus: usize,
    /// Absolute speedup `T_s / T_N`.
    pub speedup: f64,
    /// Critical path efficiency.
    pub critical_efficiency: f64,
    /// Speculative path efficiency.
    pub speculative_efficiency: f64,
    /// Power efficiency.
    pub power_efficiency: f64,
    /// Parallel execution coverage.
    pub coverage: f64,
    /// Committed speculative threads.
    pub committed: u64,
    /// Rolled-back speculative threads.
    pub rolled_back: u64,
}

/// One row of a breakdown figure (per-phase fractions at a CPU count).
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    /// Benchmark name.
    pub workload: String,
    /// Number of speculative CPUs.
    pub cpus: usize,
    /// Phase label → fraction of the path's runtime.
    pub fractions: Vec<(String, f64)>,
}

/// Which metric a sweep figure reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Absolute speedup (figures 3 and 4).
    Speedup,
    /// Critical path efficiency (figure 5).
    CriticalEfficiency,
    /// Speculative path efficiency (figure 6).
    SpeculativeEfficiency,
    /// Power efficiency (figure 7).
    PowerEfficiency,
}

/// Record a workload's speculation trace at the given scale.
pub fn record_workload(kind: WorkloadKind, scale: Scale) -> Recording {
    let memory = Arc::new(GlobalMemory::new(arena_bytes(kind, scale)));
    let data = setup(kind, scale, &memory);
    record_region(memory, |ctx| run_speculative(ctx, &data))
}

fn simulate_point(recording: &Recording, cpus: usize, seed: u64, sim_threads: usize) -> SimResult {
    let config = SimConfig {
        num_cpus: cpus,
        fork_model: None,
        rollback_probability: 0.0,
        seed,
        cost: Default::default(),
        governor: Default::default(),
        sim_threads,
        ..Default::default()
    };
    simulate(recording, config)
}

fn sweep_row(kind: WorkloadKind, cpus: usize, result: &SimResult) -> SweepRow {
    SweepRow {
        workload: kind.name().to_string(),
        cpus,
        speedup: result.speedup(),
        critical_efficiency: result.report.critical_path_efficiency(),
        speculative_efficiency: result.report.speculative_path_efficiency(),
        power_efficiency: result.power_efficiency(),
        coverage: result.report.coverage(),
        committed: result.report.committed_threads,
        rolled_back: result.report.rolled_back_threads,
    }
}

/// Sweep a set of workloads over the configured CPU counts.  Recordings
/// and the independent simulation points both fan out across host
/// threads; row order is deterministic regardless.
pub fn speedup_sweep(kinds: &[WorkloadKind], config: &ExperimentConfig) -> Vec<SweepRow> {
    let recordings = par_map(kinds, |&kind| record_workload(kind, config.scale));
    let points: Vec<(usize, usize)> = (0..kinds.len())
        .flat_map(|ki| config.cpus.iter().map(move |&cpus| (ki, cpus)))
        .collect();
    let sim_threads = config.budgeted_sim_threads(points.len());
    par_map(&points, |&(ki, cpus)| {
        let result = simulate_point(&recordings[ki], cpus, config.seed, sim_threads);
        sweep_row(kinds[ki], cpus, &result)
    })
}

fn metric_table(
    title: &str,
    kinds: &[WorkloadKind],
    config: &ExperimentConfig,
    metric: MetricKind,
) -> (Vec<SweepRow>, String) {
    let rows = speedup_sweep(kinds, config);
    let series: Vec<(String, Vec<f64>)> = kinds
        .iter()
        .map(|kind| {
            let values = config
                .cpus
                .iter()
                .map(|&cpus| {
                    rows.iter()
                        .find(|r| r.workload == kind.name() && r.cpus == cpus)
                        .map(|r| match metric {
                            MetricKind::Speedup => r.speedup,
                            MetricKind::CriticalEfficiency => r.critical_efficiency,
                            MetricKind::SpeculativeEfficiency => r.speculative_efficiency,
                            MetricKind::PowerEfficiency => r.power_efficiency,
                        })
                        .unwrap_or(f64::NAN)
                })
                .collect();
            (kind.name().to_string(), values)
        })
        .collect();
    let text = format_sweep_table(title, &config.cpus, &series);
    (rows, text)
}

/// Figure 3: speedup of the computation-intensive applications.
pub fn figure3(config: &ExperimentConfig) -> (Vec<SweepRow>, String) {
    metric_table(
        "Figure 3 — Performance of Computation-Intensive Applications (absolute speedup)",
        &WorkloadKind::COMPUTATION_INTENSIVE,
        config,
        MetricKind::Speedup,
    )
}

/// Figure 4: speedup of the memory-intensive applications.
pub fn figure4(config: &ExperimentConfig) -> (Vec<SweepRow>, String) {
    metric_table(
        "Figure 4 — Performance of Memory-Intensive Applications (absolute speedup)",
        &WorkloadKind::MEMORY_INTENSIVE,
        config,
        MetricKind::Speedup,
    )
}

/// Figure 5: critical path execution efficiency of all benchmarks.
pub fn figure5(config: &ExperimentConfig) -> (Vec<SweepRow>, String) {
    metric_table(
        "Figure 5 — Critical Path Execution Efficiency",
        &WorkloadKind::ALL,
        config,
        MetricKind::CriticalEfficiency,
    )
}

/// Figure 6: speculative path execution efficiency of all benchmarks.
pub fn figure6(config: &ExperimentConfig) -> (Vec<SweepRow>, String) {
    metric_table(
        "Figure 6 — Speculative Path Execution Efficiency",
        &WorkloadKind::ALL,
        config,
        MetricKind::SpeculativeEfficiency,
    )
}

/// Figure 7: power efficiency of all benchmarks.
pub fn figure7(config: &ExperimentConfig) -> (Vec<SweepRow>, String) {
    metric_table(
        "Figure 7 — Power Efficiency",
        &WorkloadKind::ALL,
        config,
        MetricKind::PowerEfficiency,
    )
}

/// Phase breakdown of either execution path for one workload.
pub fn breakdown(
    kind: WorkloadKind,
    config: &ExperimentConfig,
    cpus_list: &[usize],
    speculative_path: bool,
) -> Vec<BreakdownRow> {
    let recording = record_workload(kind, config.scale);
    let phases: [Phase; 10] = Phase::ALL;
    let mut rows = Vec::new();
    for &cpus in cpus_list {
        let result = simulate_point(
            &recording,
            cpus,
            config.seed,
            config.effective_sim_threads(),
        );
        let stats = if speculative_path {
            &result.report.speculative
        } else {
            &result.report.critical
        };
        let fractions = phases
            .iter()
            .map(|p| (p.label().to_string(), stats.fraction(*p)))
            .collect();
        rows.push(BreakdownRow {
            workload: kind.name().to_string(),
            cpus,
            fractions,
        });
    }
    rows
}

fn breakdown_text(title: &str, rows: &[BreakdownRow]) -> String {
    let cpus: Vec<usize> = rows.iter().map(|r| r.cpus).collect();
    let phases: Vec<&str> = rows
        .first()
        .map(|r| r.fractions.iter().map(|(p, _)| p.as_str()).collect())
        .unwrap_or_default();
    let values: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| r.fractions.iter().map(|(_, v)| *v).collect())
        .collect();
    format_breakdown_table(title, &cpus, &phases, &values)
}

/// Figure 8: critical path breakdown for fft and md.
pub fn figure8(config: &ExperimentConfig) -> (Vec<BreakdownRow>, String) {
    let cpus: Vec<usize> = BREAKDOWN_CPUS
        .iter()
        .copied()
        .filter(|c| config.cpus.iter().max().map(|&m| *c <= m).unwrap_or(true))
        .collect();
    let mut rows = breakdown(WorkloadKind::Fft, config, &cpus, false);
    let fft_text = breakdown_text("Figure 8a — Critical Path Breakdown: FFT", &rows);
    let md_rows = breakdown(WorkloadKind::Md, config, &cpus, false);
    let md_text = breakdown_text(
        "Figure 8b — Critical Path Breakdown: Molecular Dynamics",
        &md_rows,
    );
    rows.extend(md_rows);
    (rows, format!("{fft_text}\n{md_text}"))
}

/// Figure 9: speculative path breakdown for fft and matmult.
pub fn figure9(config: &ExperimentConfig) -> (Vec<BreakdownRow>, String) {
    let cpus: Vec<usize> = BREAKDOWN_CPUS
        .iter()
        .copied()
        .filter(|c| *c >= 2 && config.cpus.iter().max().map(|&m| *c <= m).unwrap_or(true))
        .collect();
    let mut rows = breakdown(WorkloadKind::Fft, config, &cpus, true);
    let fft_text = breakdown_text("Figure 9a — Speculative Path Breakdown: FFT", &rows);
    let mm_rows = breakdown(WorkloadKind::Matmult, config, &cpus, true);
    let mm_text = breakdown_text("Figure 9b — Speculative Path Breakdown: Matmult", &mm_rows);
    rows.extend(mm_rows);
    (rows, format!("{fft_text}\n{mm_text}"))
}

/// Figure 10: speedups of the in-order and out-of-order models normalized
/// to the mixed model, for the tree-form recursion benchmarks.
pub fn figure10(config: &ExperimentConfig) -> (Vec<(String, usize, f64)>, String) {
    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for &kind in &WorkloadKind::TREE_RECURSION {
        let recording = record_workload(kind, config.scale);
        for model in [ForkModel::InOrder, ForkModel::OutOfOrder] {
            let mut values = Vec::new();
            for &cpus in &config.cpus {
                let sim_threads = config.effective_sim_threads();
                let mixed = simulate_point(&recording, cpus, config.seed, sim_threads).speedup();
                let other = simulate(
                    &recording,
                    SimConfig {
                        num_cpus: cpus,
                        fork_model: Some(model),
                        rollback_probability: 0.0,
                        seed: config.seed,
                        cost: Default::default(),
                        governor: Default::default(),
                        sim_threads,
                        ..Default::default()
                    },
                )
                .speedup();
                let normalized = other / mixed.max(f64::MIN_POSITIVE);
                rows.push((
                    format!("{} {}", kind.name(), model.label()),
                    cpus,
                    normalized,
                ));
                values.push(normalized);
            }
            series.push((format!("{} {}", kind.name(), model.label()), values));
        }
    }
    let text = format_sweep_table(
        "Figure 10 — Comparison of Forking Models (speedup normalized to mixed)",
        &config.cpus,
        &series,
    );
    (rows, text)
}

/// Figure 11: rollback sensitivity — relative slowdown with respect to the
/// non-rollback run at the largest configured CPU count.
pub fn figure11(config: &ExperimentConfig) -> (Vec<(String, f64, f64)>, String) {
    let kinds = [
        WorkloadKind::Mandelbrot,
        WorkloadKind::Md,
        WorkloadKind::Fft,
        WorkloadKind::Matmult,
        WorkloadKind::Nqueen,
        WorkloadKind::Tsp,
        WorkloadKind::Bh,
    ];
    let cpus = config.cpus.iter().copied().max().unwrap_or(64);
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Figure 11 — Rollback Sensitivity at {cpus} CPUs (fraction of non-rollback speedup preserved)"),
        &["workload", "1%", "5%", "10%", "20%", "50%", "100%"],
    );
    // One parallel task per workload: record, baseline, probability sweep.
    let sim_threads = config.budgeted_sim_threads(kinds.len());
    let per_kind = par_map(&kinds, |&kind| {
        let recording = record_workload(kind, config.scale);
        let baseline = simulate_point(&recording, cpus, config.seed, sim_threads).speedup();
        let sensitivities: Vec<(f64, f64)> = ROLLBACK_PROBABILITIES
            .iter()
            .map(|&p| {
                let degraded = simulate(
                    &recording,
                    SimConfig {
                        num_cpus: cpus,
                        fork_model: None,
                        rollback_probability: p,
                        seed: config.seed,
                        cost: Default::default(),
                        governor: Default::default(),
                        sim_threads,
                        ..Default::default()
                    },
                )
                .speedup();
                (p, degraded / baseline.max(f64::MIN_POSITIVE))
            })
            .collect();
        (kind, sensitivities)
    });
    for (kind, sensitivities) in per_kind {
        let mut row = vec![kind.name().to_string()];
        for (p, sensitivity) in sensitivities {
            rows.push((kind.name().to_string(), p, sensitivity));
            row.push(format!("{sensitivity:.2}"));
        }
        table.push_row(row);
    }
    (rows, table.render())
}

/// Injected rollback probability applied to the rollback-heavy workloads
/// (`tsp`, `bh`, `md`) in the adaptive-governor sweep, modelling the
/// conflict-heavy regime where throttling pays off.
pub const ADAPTIVE_ROLLBACK_PROBABILITY: f64 = 0.4;

/// The rollback-heavy workloads of the adaptive sweep.
pub const ROLLBACK_HEAVY: [WorkloadKind; 3] =
    [WorkloadKind::Tsp, WorkloadKind::Bh, WorkloadKind::Md];

/// One row of the adaptive-governor sweep.
#[derive(Debug, Clone, Serialize)]
pub struct AdaptiveRow {
    /// Schema version of this row ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Effective simulator worker threads the run used (schema v5).
    pub sim_threads: usize,
    /// Benchmark name.
    pub workload: String,
    /// Governor policy label.
    pub policy: String,
    /// Injected rollback probability for this run.
    pub rollback_probability: f64,
    /// Absolute speedup `T_s / T_N`.
    pub speedup: f64,
    /// Committed speculative threads.
    pub committed: u64,
    /// Rolled-back speculative threads.
    pub rolled_back: u64,
    /// Rollbacks split by cause, indexed by
    /// [`RollbackReason::index`](mutls_membuf::RollbackReason::index).
    pub rollback_reasons: [u64; RollbackReason::COUNT],
    /// Work discarded by rollbacks (virtual cycles).
    pub wasted_work: u64,
    /// Wasted cycles per committed cycle (schema v6).
    pub rollback_amplification: f64,
    /// Fork requests suppressed by the governor.
    pub throttled_forks: u64,
}

/// Render a `RunReport`'s per-site governor profile as a table, with the
/// rollback-cause split (conflicts / overflows / injected) per site and
/// the live commit-log grain the site's traffic last ran at (the
/// "grain" column shows what the adaptive-grain controller converged to
/// for each site's data; "-" = never observed).  The commit-path cost
/// counters (`cas_retries`, `ring_overflows`) are log-wide, not
/// per-site, so they render on a trailing `commit-log` summary row.
pub fn format_site_table(title: &str, report: &RunReport) -> String {
    let mut table = Table::new(
        title,
        &[
            "site",
            "forks",
            "throttled",
            "commits",
            "retries",
            "rollbacks",
            "conflicts",
            "false-share",
            "overflows",
            "injected",
            "rollback rate",
            "wasted work",
            "grain",
            "cas-retries",
            "ring-ovfl",
        ],
    );
    for profile in &report.sites {
        let name = site_label(profile.site)
            .map(str::to_string)
            .unwrap_or_else(|| format!("site {}", profile.site));
        table.push_row(vec![
            name,
            profile.forks.to_string(),
            profile.throttled.to_string(),
            profile.commits.to_string(),
            profile.retries.to_string(),
            profile.rollbacks.to_string(),
            profile.conflicts.to_string(),
            profile.false_sharing.to_string(),
            profile.overflows.to_string(),
            profile.injected.to_string(),
            format!("{:.2}", profile.rollback_rate),
            profile.wasted_work.to_string(),
            if profile.grain_log2 == 0 {
                "-".to_string()
            } else {
                grain_label(profile.grain_log2)
            },
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    let log = report.commit_log;
    let mut summary = vec!["commit-log".to_string()];
    summary.resize(13, "-".to_string());
    summary.push(log.cas_retries.to_string());
    summary.push(log.ring_overflows.to_string());
    table.push_row(summary);
    table.render()
}

/// Simulate `recording` under a governor policy.  Seed, tracing and
/// metrics cadence come from `config`; `sim_threads` is passed
/// separately because the caller budgets it against the sweep fan-out.
fn simulate_governed(
    recording: &Recording,
    config: &ExperimentConfig,
    cpus: usize,
    rollback_probability: f64,
    policy: PolicyKind,
    sim_threads: usize,
) -> SimResult {
    simulate(
        recording,
        SimConfig {
            num_cpus: cpus,
            fork_model: None,
            rollback_probability,
            seed: config.seed,
            cost: Default::default(),
            governor: GovernorConfig::with_policy(policy),
            trace: config.trace_enabled(),
            sim_threads,
            metrics: config.sim_metrics_config(),
            ..Default::default()
        },
    )
}

/// Adaptive-governor sweep: Static vs Throttle vs ModelSelect across the
/// rollback-heavy workloads (run with injected rollbacks) plus the
/// remaining figure workloads (run clean), at the largest configured CPU
/// count.  Appends the per-site profile tables of the rollback-heavy
/// workloads under the throttle policy, showing which sites were
/// suppressed.
pub fn adaptive_sweep(config: &ExperimentConfig) -> (Vec<AdaptiveRow>, String) {
    let cpus = config.cpus.iter().copied().max().unwrap_or(16);
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Adaptive Governor Sweep at {cpus} CPUs (per-site throttling and model selection)"),
        &[
            "workload",
            "policy",
            "inj. rollback",
            "speedup",
            "committed",
            "rolled back (C/O/I/X)",
            "wasted work",
            "throttled",
        ],
    );
    // One parallel task per workload; assembly below keeps input order.
    let sim_threads = config.budgeted_sim_threads(WorkloadKind::ALL.len());
    let per_kind = par_map(&WorkloadKind::ALL, |&kind| {
        let heavy = ROLLBACK_HEAVY.contains(&kind);
        let p = if heavy {
            ADAPTIVE_ROLLBACK_PROBABILITY
        } else {
            0.0
        };
        let recording = record_workload(kind, config.scale);
        let mut kind_rows = Vec::new();
        let mut site_tables = String::new();
        for policy in PolicyKind::ALL {
            let result = simulate_governed(&recording, config, cpus, p, policy, sim_threads);
            let report = &result.report;
            kind_rows.push(AdaptiveRow {
                schema_version: BENCH_SCHEMA_VERSION,
                sim_threads,
                workload: kind.name().to_string(),
                policy: policy.label().to_string(),
                rollback_probability: p,
                speedup: result.speedup(),
                committed: report.committed_threads,
                rolled_back: report.rolled_back_threads,
                rollback_reasons: report.rollback_reasons,
                wasted_work: report.wasted_work(),
                rollback_amplification: report.rollback_amplification(),
                throttled_forks: report.throttled_forks(),
            });
            if heavy && policy == PolicyKind::Throttle {
                site_tables.push_str(&format_site_table(
                    &format!(
                        "Per-site profile — {} under throttle ({}% injected rollbacks)",
                        kind.name(),
                        p * 100.0
                    ),
                    report,
                ));
                site_tables.push('\n');
            }
            let label = format!("adaptive/{}/{}", kind.name(), policy.label());
            config.record_trace(label.clone(), result.events, 0);
            if let Some(last) = result.metrics.latest().cloned() {
                config.record_metrics(label, result.metrics, last);
            }
        }
        (kind_rows, site_tables)
    });
    let mut site_tables = String::new();
    for (kind_rows, kind_tables) in per_kind {
        for row in kind_rows {
            table.push_row(vec![
                row.workload.clone(),
                row.policy.clone(),
                format!("{:.0}%", row.rollback_probability * 100.0),
                format!("{:.2}", row.speedup),
                row.committed.to_string(),
                format_rollback_cell(row.rolled_back, &row.rollback_reasons),
                row.wasted_work.to_string(),
                row.throttled_forks.to_string(),
            ]);
            rows.push(row);
        }
        site_tables.push_str(&kind_tables);
    }
    let text = format!("{}\n{site_tables}", table.render());
    (rows, text)
}

/// True-sharing rates (permille) swept by the conflict experiment.
pub const CONFLICT_SHARING_PERMILLE: [u32; 4] = [0, 250, 500, 1000];

/// The governor policies compared by the native-runtime sweeps.
pub const NATIVE_POLICIES: [PolicyKind; 2] = [PolicyKind::Static, PolicyKind::Throttle];

/// Compact `p50/p99/p999` cell for one latency phase of a *native* run,
/// where samples are nanoseconds (reported in µs); "-" when the phase
/// never fired.
fn latency_cell_us(report: &LatencyReport, phase: LatencyPhase) -> String {
    match report.row(phase) {
        Some(row) if row.count > 0 => format!(
            "{:.1}/{:.1}/{:.1}",
            row.p50 as f64 / 1e3,
            row.p99 as f64 / 1e3,
            row.p999 as f64 / 1e3
        ),
        _ => "-".to_string(),
    }
}

/// One row of a native-runtime sweep (conflict or buffer-overflow): the
/// rollback counts are *real* — no injection is configured — and split by
/// cause.
#[derive(Debug, Clone, Serialize)]
pub struct NativeRow {
    /// Schema version of this row ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Effective simulator worker threads configured for the invocation
    /// (schema v5; native rows record it for provenance — the native
    /// runtime itself is unaffected by the knob).
    pub sim_threads: usize,
    /// Benchmark name.
    pub workload: String,
    /// Governor policy label.
    pub policy: String,
    /// True-sharing rate in `[0, 1]` (conflict sweep; 0 for overflow rows).
    pub sharing: f64,
    /// Committed speculative threads.
    pub committed: u64,
    /// Successful value-predict retries (never counted as rollbacks).
    pub retries: u64,
    /// Rolled-back speculative threads.
    pub rolled_back: u64,
    /// Rollbacks split by cause, indexed by
    /// [`RollbackReason::index`](mutls_membuf::RollbackReason::index).
    pub rollback_reasons: [u64; RollbackReason::COUNT],
    /// Work discarded by rollbacks (nanoseconds of native execution).
    pub wasted_work_ns: u64,
    /// Derived rollback amplification (schema v6): wasted work over
    /// committed speculative work — the metrics plane's headline
    /// efficiency gauge, stamped per row so the trajectory is trackable.
    pub rollback_amplification: f64,
    /// Fork requests suppressed by the governor.
    pub throttled_forks: u64,
    /// Per-phase latency quantiles (log2-bucket lower bounds, ns).
    pub latency: LatencyReport,
    /// Whether the final memory state matched the sequential reference.
    pub checksum_ok: bool,
}

impl NativeRow {
    fn from_report(
        workload: &str,
        policy: PolicyKind,
        sharing: f64,
        checksum_ok: bool,
        report: &RunReport,
        sim_threads: usize,
    ) -> Self {
        NativeRow {
            schema_version: BENCH_SCHEMA_VERSION,
            sim_threads,
            workload: workload.to_string(),
            policy: policy.label().to_string(),
            sharing,
            committed: report.committed_threads,
            retries: report.retries(),
            rolled_back: report.rolled_back_threads,
            rollback_reasons: report.rollback_reasons,
            wasted_work_ns: report.wasted_work(),
            rollback_amplification: report.rollback_amplification(),
            throttled_forks: report.throttled_forks(),
            latency: report.latency.clone(),
            checksum_ok,
        }
    }

    fn table_row(&self) -> Vec<String> {
        vec![
            self.workload.clone(),
            format!("{:.0}%", self.sharing * 100.0),
            self.policy.clone(),
            self.committed.to_string(),
            self.retries.to_string(),
            format_rollback_cell(self.rolled_back, &self.rollback_reasons),
            format!("{:.1}", self.wasted_work_ns as f64 / 1_000.0),
            self.throttled_forks.to_string(),
            latency_cell_us(&self.latency, LatencyPhase::ForkToCommit),
            if self.checksum_ok { "ok" } else { "MISMATCH" }.to_string(),
        ]
    }
}

/// Number of speculative CPUs used by the native sweeps (real OS threads,
/// so capped independently of the simulated CPU counts).
fn native_cpus(config: &ExperimentConfig) -> usize {
    config.cpus.iter().copied().max().unwrap_or(8).min(8)
}

/// One configured conflict-family case: resolves the per-kind config once
/// so the sequential reference is computed once per (kind, sharing-rate)
/// point and shared by every policy run.
enum ConflictCase {
    Chain(conflict::ChainConfig),
    Hist(conflict::HistConfig),
}

impl ConflictCase {
    fn new(kind: WorkloadKind, scale: Scale, permille: u32) -> Self {
        match kind {
            WorkloadKind::ConflictChain => ConflictCase::Chain(
                conflict::ChainConfig::for_scale(scale).sharing_permille(permille),
            ),
            WorkloadKind::HistShared => ConflictCase::Hist(
                conflict::HistConfig::for_scale(scale).sharing_permille(permille),
            ),
            other => unreachable!("{} is not a conflict-family workload", other.name()),
        }
    }

    fn reference(&self) -> u64 {
        match self {
            ConflictCase::Chain(cfg) => conflict::chain_reference(*cfg),
            ConflictCase::Hist(cfg) => conflict::hist_reference(*cfg),
        }
    }

    /// Run the case natively, draining the run's flight recorder (empty
    /// unless the config enables tracing) and its metrics capture
    /// (series + final scrape; empty unless the config enables metrics).
    fn native_observed(
        &self,
        runtime_config: RuntimeConfig,
    ) -> (
        u64,
        RunReport,
        (Vec<TraceEvent>, u64),
        conflict::MetricsCapture,
    ) {
        match self {
            ConflictCase::Chain(cfg) => conflict::chain_native_observed(*cfg, runtime_config),
            ConflictCase::Hist(cfg) => conflict::hist_native_observed(*cfg, runtime_config),
        }
    }
}

/// Native-runtime conflict sweep: the conflict-generating workloads across
/// true-sharing rates, Static vs Throttle, with **no injected rollbacks**
/// — every rollback in the table is a genuine dependence violation
/// detected through the speculative buffers and the commit log.  The
/// summary lines report Throttle's wasted-work reduction over Static at
/// each sharing rate, which is the governor validated end-to-end on real
/// conflicts.
///
/// Runs at **word grain** ([`CommitLogConfig::word_grain`]): this sweep
/// measures *true* sharing, and only word-granular tracking makes "zero
/// sharing ⇒ zero conflict rollbacks" structural — coarser grains add
/// false sharing, which the `grain` sweep prices separately.
pub fn conflict_sweep(config: &ExperimentConfig) -> (Vec<NativeRow>, String) {
    let cpus = native_cpus(config);
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!(
            "Conflict Sweep at {cpus} CPUs (native runtime, real dependence validation, no injection)"
        ),
        &[
            "workload",
            "sharing",
            "policy",
            "committed",
            "retries",
            "rolled back (C/O/I/X)",
            "wasted work (µs)",
            "throttled",
            "f2c p50/p99/p999 (µs)",
            "checksum",
        ],
    );
    let mut site_tables = String::new();
    let mut summary = String::from("# Throttle wasted-work reduction vs Static (real conflicts)\n");
    for kind in WorkloadKind::CONFLICT_FAMILY {
        for permille in CONFLICT_SHARING_PERMILLE {
            let sharing = permille as f64 / 1000.0;
            let case = ConflictCase::new(kind, config.scale, permille);
            let reference = case.reference();
            let mut wasted = HashMap::new();
            for policy in NATIVE_POLICIES {
                let (sum, report, (events, dropped), (series, last)) = case.native_observed(
                    RuntimeConfig::with_cpus(cpus)
                        .governor_policy(policy)
                        .commit_log(CommitLogConfig::word_grain())
                        .trace(config.trace_config())
                        .metrics(config.metrics_config()),
                );
                let label = format!(
                    "conflict/{}/sharing{permille:04}/{}",
                    kind.name(),
                    policy.label()
                );
                config.record_trace(label.clone(), events, dropped);
                config.record_metrics(label, series, last);
                let row = NativeRow::from_report(
                    kind.name(),
                    policy,
                    sharing,
                    sum == reference,
                    &report,
                    config.effective_sim_threads(),
                );
                table.push_row(row.table_row());
                wasted.insert(policy, row.wasted_work_ns);
                if permille == 1000 && policy == PolicyKind::Throttle {
                    site_tables.push_str(&format_site_table(
                        &format!(
                            "Per-site profile — {} under throttle (100% true sharing, rollbacks all real)",
                            kind.name()
                        ),
                        &report,
                    ));
                    site_tables.push('\n');
                    site_tables.push_str(&format_latency_table(
                        &format!(
                            "Phase latencies — {} under throttle (100% true sharing, ns)",
                            kind.name()
                        ),
                        &report.latency,
                    ));
                    site_tables.push('\n');
                }
                rows.push(row);
            }
            if permille > 0 {
                let stat = wasted[&PolicyKind::Static].max(1) as f64;
                let thr = wasted[&PolicyKind::Throttle].max(1) as f64;
                summary.push_str(&format!(
                    "{} at {:.0}% sharing: {:.1}x less wasted work under throttle\n",
                    kind.name(),
                    sharing * 100.0,
                    stat / thr,
                ));
            }
        }
    }
    let text = format!("{}\n{site_tables}{summary}", table.render());
    (rows, text)
}

/// Buffer-overflow pressure sweep: the memory-intensive benchmarks run on
/// the native runtime with [`BufferConfig::tiny`] buffers, so speculative
/// threads overflow and roll back with `RollbackReason::Overflow` — this
/// exercises the governor's overflow-rate threshold rather than its
/// rollback-rate one.
pub fn overflow_sweep(config: &ExperimentConfig) -> (Vec<NativeRow>, String) {
    let cpus = native_cpus(config);
    let kinds = [WorkloadKind::Fft, WorkloadKind::Matmult, WorkloadKind::Bh];
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!(
            "Buffer-Overflow Pressure Sweep at {cpus} CPUs (native runtime, BufferConfig::tiny)"
        ),
        &[
            "workload",
            "sharing",
            "policy",
            "committed",
            "retries",
            "rolled back (C/O/I/X)",
            "wasted work (µs)",
            "throttled",
            "f2c p50/p99/p999 (µs)",
            "checksum",
        ],
    );
    for kind in kinds {
        let reference = reference_checksum(kind, config.scale);
        for policy in NATIVE_POLICIES {
            let runtime = Runtime::new(
                RuntimeConfig::with_cpus(cpus)
                    .memory_bytes(arena_bytes(kind, config.scale))
                    .buffer(BufferConfig::tiny())
                    .governor_policy(policy)
                    .trace(config.trace_config())
                    .metrics(config.metrics_config()),
            );
            let memory = runtime.memory();
            let data = setup(kind, config.scale, &memory);
            let (_, report) = runtime.run(|ctx| run_speculative(ctx, &data));
            let label = format!("overflow/{}/{}", kind.name(), policy.label());
            config.record_trace(
                label.clone(),
                runtime.drain_trace_events(),
                runtime.trace_dropped(),
            );
            config.record_metrics(label, runtime.metrics_series(), runtime.metrics_snapshot());
            let checksum_ok = mutls_workloads::checksum(&memory, &data) == reference;
            let row = NativeRow::from_report(
                kind.name(),
                policy,
                0.0,
                checksum_ok,
                &report,
                config.effective_sim_threads(),
            );
            table.push_row(row.table_row());
            rows.push(row);
        }
    }
    let text = table.render();
    (rows, text)
}

/// Commit-log grains swept by the `grain` experiment (log2 bytes):
/// word, cache line, page.
pub const GRAIN_SWEEP_GRAINS: [u32; 3] = [WORD_GRAIN_LOG2, LINE_GRAIN_LOG2, PAGE_GRAIN_LOG2];

/// Commit-log shard counts swept by the `grain` experiment: a single
/// shard (the old global commit lock) vs the sharded default.
pub const GRAIN_SWEEP_SHARDS: [usize; 2] = [1, 8];

/// Human label for a tracking grain.
pub fn grain_label(grain_log2: u32) -> String {
    match grain_log2 {
        WORD_GRAIN_LOG2 => "word".to_string(),
        LINE_GRAIN_LOG2 => "line".to_string(),
        PAGE_GRAIN_LOG2 => "page".to_string(),
        g => format!("2^{g}B"),
    }
}

/// One row of the grain sweep: a native run at one (workload, grain,
/// shard-count) point, with the commit-log cost columns the coarser
/// grains and extra shards are meant to shrink.
#[derive(Debug, Clone, Serialize)]
pub struct GrainRow {
    /// Schema version of this row ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Effective simulator worker threads configured for the invocation
    /// (schema v5; provenance on native rows).
    pub sim_threads: usize,
    /// Benchmark name.
    pub workload: String,
    /// Commit-log tracking grain (log2 bytes).
    pub grain_log2: u32,
    /// Commit-log shard count.
    pub shards: usize,
    /// Committed speculative threads.
    pub committed: u64,
    /// Rolled-back speculative threads.
    pub rolled_back: u64,
    /// Rollbacks split by cause, indexed by
    /// [`RollbackReason::index`](mutls_membuf::RollbackReason::index).
    pub rollback_reasons: [u64; RollbackReason::COUNT],
    /// Conflict rollbacks classified as suspected false sharing.
    pub suspected_false_sharing: u64,
    /// Successful value-predict retries (coarse grains raise these in
    /// place of false-sharing rollbacks).
    pub retries: u64,
    /// Work discarded by rollbacks (nanoseconds of native execution).
    pub wasted_work_ns: u64,
    /// Commit batches recorded in the log.
    pub commits: u64,
    /// Range stamps written across all batches (cumulative log traffic —
    /// what a coarser grain shrinks).
    pub stamp_writes: u64,
    /// Estimated commit-serialization time (µs): waiting for plus
    /// holding commit-log shard locks, sampled (see
    /// `CommitLogStats::lock_ns`).
    pub commit_lock_us: f64,
    /// Commit throughput: batches per millisecond of lock time — higher
    /// is better; coarser grains and more shards both raise it.
    pub commit_throughput: f64,
    /// Wall-clock commit throughput: batches per second of end-to-end run
    /// time (schema v3; the cross-mode figure the `commitbench` sweep
    /// compares locked vs lock-free on).
    pub commits_per_sec: f64,
    /// CAS retries paid by the lock-free commit path (same-slot
    /// `compare_exchange` losses plus seqlock-forced re-stamps; schema
    /// v3, 0 in locked mode).
    pub cas_retries: u64,
    /// Ring probes whose observed version had already fallen off the
    /// mvcc version window (schema v6; 0 here — the grain sweep runs the
    /// single-version engine — but rendered so registry pressure is
    /// visible wherever `CommitLogStats` rows surface).
    pub ring_overflows: u64,
    /// Derived rollback amplification (schema v6): wasted work over
    /// committed speculative work.
    pub rollback_amplification: f64,
    /// Regions regrained by the adaptive controller (0 here: the grain
    /// sweep runs static grains; the column keeps the row shape shared
    /// with the `graincontrol` sweep).
    pub regrains: u64,
    /// Reader-registry entries spilled to the overflow list (registry
    /// pressure: spilled ranges fall back to scan-everyone dooming).
    pub reader_spills: u64,
    /// Whether the final memory state matched the sequential reference.
    pub checksum_ok: bool,
}

/// Native grain sweep: workload × tracking grain × shard count, Static
/// policy, no injection.  Correctness must hold at every point (the
/// differential oracle in `tests/differential.rs` asserts the same
/// registry-wide); the commit-log columns show coarser grains stamping
/// fewer ranges and spending less time under commit locks, while the
/// rollback columns price the false sharing they introduce.
pub fn grain_sweep(config: &ExperimentConfig) -> (Vec<GrainRow>, String) {
    let cpus = native_cpus(config);
    // mandelbrot writes disjoint rows (no cross-thread sharing at any
    // grain): the clean commit-path signal.  matmult/fft genuinely share
    // (partial-product accumulation), so coarser grains also buy
    // false-sharing rollbacks there; conflict_chain's commit structure
    // is deterministic, which the tests lean on.
    let kinds = [
        WorkloadKind::Mandelbrot,
        WorkloadKind::Matmult,
        WorkloadKind::Fft,
        WorkloadKind::ConflictChain,
    ];
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Commit-Log Grain Sweep at {cpus} CPUs (native runtime, static policy)"),
        &[
            "workload",
            "grain",
            "shards",
            "committed",
            "retries",
            "rolled back (C/O/I/X)",
            "false-share",
            "wasted (µs)",
            "commits",
            "stamps",
            "lock w+h (µs)",
            "commits/ms lock",
            "commits/s",
            "cas-retries",
            "ring-ovfl",
            "regrains",
            "spills",
            "checksum",
        ],
    );
    for kind in kinds {
        let reference = reference_checksum(kind, config.scale);
        for grain_log2 in GRAIN_SWEEP_GRAINS {
            for shards in GRAIN_SWEEP_SHARDS {
                let runtime = Runtime::new(
                    RuntimeConfig::with_cpus(cpus)
                        .memory_bytes(arena_bytes(kind, config.scale))
                        .commit_log(
                            CommitLogConfig::default()
                                .grain_log2(grain_log2)
                                .shards(shards),
                        )
                        .trace(config.trace_config())
                        .metrics(config.metrics_config()),
                );
                let memory = runtime.memory();
                let data = setup(kind, config.scale, &memory);
                let run_started = Instant::now();
                let (_, report) = runtime.run(|ctx| run_speculative(ctx, &data));
                let run_secs = run_started.elapsed().as_secs_f64().max(1e-9);
                let label = format!(
                    "grain/{}/{}/shards{shards}",
                    kind.name(),
                    grain_label(grain_log2)
                );
                config.record_trace(
                    label.clone(),
                    runtime.drain_trace_events(),
                    runtime.trace_dropped(),
                );
                config.record_metrics(label, runtime.metrics_series(), runtime.metrics_snapshot());
                let checksum_ok = mutls_workloads::checksum(&memory, &data) == reference;
                let log = report.commit_log;
                let lock_ms = (log.lock_ns as f64 / 1e6).max(1e-6);
                let row = GrainRow {
                    schema_version: BENCH_SCHEMA_VERSION,
                    sim_threads: config.effective_sim_threads(),
                    workload: kind.name().to_string(),
                    grain_log2,
                    shards,
                    committed: report.committed_threads,
                    rolled_back: report.rolled_back_threads,
                    rollback_reasons: report.rollback_reasons,
                    suspected_false_sharing: report.suspected_false_sharing(),
                    retries: report.retries(),
                    wasted_work_ns: report.wasted_work(),
                    commits: log.commits,
                    stamp_writes: log.stamp_writes,
                    commit_lock_us: log.lock_ns as f64 / 1e3,
                    commit_throughput: log.commits as f64 / lock_ms,
                    commits_per_sec: log.commits as f64 / run_secs,
                    cas_retries: log.cas_retries,
                    ring_overflows: log.ring_overflows,
                    rollback_amplification: report.rollback_amplification(),
                    regrains: log.regrains,
                    reader_spills: log.reader_spills,
                    checksum_ok,
                };
                table.push_row(vec![
                    row.workload.clone(),
                    grain_label(grain_log2),
                    shards.to_string(),
                    row.committed.to_string(),
                    row.retries.to_string(),
                    format_rollback_cell(row.rolled_back, &row.rollback_reasons),
                    row.suspected_false_sharing.to_string(),
                    format!("{:.1}", row.wasted_work_ns as f64 / 1e3),
                    row.commits.to_string(),
                    row.stamp_writes.to_string(),
                    format!("{:.1}", row.commit_lock_us),
                    format!("{:.0}", row.commit_throughput),
                    format!("{:.0}", row.commits_per_sec),
                    row.cas_retries.to_string(),
                    row.ring_overflows.to_string(),
                    row.regrains.to_string(),
                    row.reader_spills.to_string(),
                    if row.checksum_ok { "ok" } else { "MISMATCH" }.to_string(),
                ]);
                rows.push(row);
            }
        }
    }
    let text = table.render();
    (rows, text)
}

/// Thread counts swept by the `commitbench` commit-path stress.  The
/// sweep is capped by the [`COMMITBENCH_THREADS_ENV`] environment
/// variable (e.g. `COMMITBENCH_THREADS=64` keeps CI runners from
/// oversubscribing into noise).
pub const COMMITBENCH_THREADS: [usize; 5] = [8, 16, 32, 64, 128];

/// Environment variable capping the `commitbench` thread sweep at the
/// given count (points above it are skipped).
pub const COMMITBENCH_THREADS_ENV: &str = "COMMITBENCH_THREADS";

/// Address mixes stressed by `commitbench`: `disjoint` gives every
/// committer its own region (and thus its own shard stripe and version
/// slots — the lock-free fast path's zero-contention case), while
/// `overlapping` hammers one small slot window from every thread (the
/// same-slot CAS-retry worst case).
pub const COMMITBENCH_MIXES: [&str; 2] = ["disjoint", "overlapping"];

/// One `commitbench` data point: an address mix × thread count × commit
/// path (locked vs lock-free), stress-committing straight against an
/// `Arc<CommitLog>` from OS threads.
#[derive(Debug, Clone, Serialize)]
pub struct CommitBenchRow {
    /// Schema version of this row ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Effective simulator worker threads configured for the invocation
    /// (schema v5; provenance — the stress runs on OS threads).
    pub sim_threads: usize,
    /// Address mix (see [`COMMITBENCH_MIXES`]).
    pub mix: String,
    /// Number of committer OS threads.
    pub threads: usize,
    /// Commit path: `"locked"` or `"lock-free"`.
    pub mode: String,
    /// Total commit batches published across all threads.
    pub batches: u64,
    /// Range stamps written across all batches.
    pub stamp_writes: u64,
    /// CAS retries paid by the lock-free path (0 in locked mode).
    pub cas_retries: u64,
    /// Wall-clock duration of the stress (µs).
    pub elapsed_us: f64,
    /// Wall-clock commit throughput: batches per second — the headline
    /// scaling figure (lock-free should keep climbing past the point
    /// where the locked path plateaus on disjoint mixes).
    pub commits_per_sec: f64,
    /// Whether every post-run invariant held (all stamps visible,
    /// per-address `version_of <= snapshot`, batch count conserved).
    pub ok: bool,
}

/// Slots of one region, and words per batch, used by `commitbench`.
const COMMITBENCH_BATCH_WORDS: u64 = 16;

/// Repetitions per `commitbench` point; the best rep is reported.
const COMMITBENCH_REPS: u32 = 3;

/// The `commitbench` thread list after applying the environment cap.
fn commitbench_threads() -> Vec<usize> {
    let cap = std::env::var(COMMITBENCH_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(usize::MAX);
    let threads: Vec<usize> = COMMITBENCH_THREADS
        .iter()
        .copied()
        .filter(|&t| t <= cap)
        .collect();
    if threads.is_empty() {
        vec![cap.max(1)]
    } else {
        threads
    }
}

/// Commit-path stress sweep: address mix × thread count × locked vs
/// lock-free, hammering one shared `CommitLog` from OS threads (no
/// speculation machinery in the way — this isolates the tentpole).
/// Correctness invariants are asserted per point; the *scaling* claim
/// (lock-free strictly above locked on disjoint mixes at high thread
/// counts) is tracked by the committed `BENCH_PR7.json` baseline rather
/// than in-test margins, which would flake on small CI hosts.
pub fn commitbench(config: &ExperimentConfig) -> (Vec<CommitBenchRow>, String) {
    commitbench_with(config, &commitbench_threads())
}

/// [`commitbench`] over an explicit thread list (tests pin small counts).
pub fn commitbench_with(
    config: &ExperimentConfig,
    threads_list: &[usize],
) -> (Vec<CommitBenchRow>, String) {
    use mutls_membuf::{CommitLog, WORD_BYTES};

    let batches_per_thread: u64 = match config.scale {
        Scale::Tiny => 64,
        Scale::Scaled => 512,
        Scale::Paper => 4096,
    };
    let region_bytes: u64 = 1 << mutls_membuf::region_log2_for_grain(WORD_GRAIN_LOG2);
    let slots_per_region: u64 = region_bytes / WORD_BYTES;
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Commit-Path Stress (commitbench, {batches_per_thread} batches/thread × {COMMITBENCH_BATCH_WORDS} words)"),
        &[
            "mix",
            "threads",
            "mode",
            "batches",
            "stamps",
            "cas-retries",
            "elapsed (µs)",
            "commits/s",
            "invariants",
        ],
    );
    for mix in COMMITBENCH_MIXES {
        for &threads in threads_list {
            for (mode, log_config) in [
                ("locked", CommitLogConfig::word_grain().shards(64).locked()),
                (
                    "lock-free",
                    CommitLogConfig::word_grain().shards(64).lock_free(true),
                ),
            ] {
                let measure = || {
                    // Dense coverage for every region a thread touches, so the
                    // stress exercises the CAS-published slot array, not the
                    // sparse fallback.
                    let capacity = (threads as u64).max(1) * region_bytes;
                    let log = Arc::new(CommitLog::with_config(log_config, capacity));
                    let barrier = Arc::new(Barrier::new(threads + 1));
                    let mut started = Instant::now();
                    std::thread::scope(|scope| {
                        for t in 0..threads {
                            let log = Arc::clone(&log);
                            let barrier = Arc::clone(&barrier);
                            scope.spawn(move || {
                                let mut batch =
                                    Vec::with_capacity(COMMITBENCH_BATCH_WORDS as usize);
                                barrier.wait();
                                for b in 0..batches_per_thread {
                                    batch.clear();
                                    for i in 0..COMMITBENCH_BATCH_WORDS {
                                        let slot = match mix {
                                            // Own region: zero cross-thread
                                            // slot or shard sharing.
                                            "disjoint" => {
                                                (t as u64) * slots_per_region
                                                    + (b * COMMITBENCH_BATCH_WORDS + i)
                                                        % slots_per_region
                                            }
                                            // Everyone in one 32-slot window
                                            // of region 0: same-slot races.
                                            _ => (b + i) % 32,
                                        };
                                        batch.push(slot * WORD_BYTES);
                                    }
                                    log.record(batch.iter().copied());
                                }
                            });
                        }
                        // Start the clock *before* releasing the barrier: on a
                        // loaded host the workers can run to completion before
                        // the main thread is rescheduled out of `wait()`, so
                        // timing from after the release would undercount.
                        started = Instant::now();
                        barrier.wait();
                    });
                    let elapsed = started.elapsed();
                    let stats = log.stats();
                    let total_batches = threads as u64 * batches_per_thread;
                    // Post-run invariants: every batch counted, every touched
                    // word stamped and never ahead of its shard snapshot.
                    let mut ok = stats.commits == total_batches;
                    let touched_regions: u64 = if mix == "disjoint" { threads as u64 } else { 1 };
                    for region in 0..touched_regions {
                        let window = if mix == "disjoint" {
                            slots_per_region.min(batches_per_thread * COMMITBENCH_BATCH_WORDS)
                        } else {
                            32
                        };
                        for slot in 0..window {
                            let addr = region * region_bytes + slot * WORD_BYTES;
                            let version = log.version_of(addr);
                            ok &= version > 0;
                            ok &= version <= log.snapshot(addr);
                        }
                    }
                    let secs = elapsed.as_secs_f64().max(1e-9);
                    CommitBenchRow {
                        schema_version: BENCH_SCHEMA_VERSION,
                        sim_threads: config.effective_sim_threads(),
                        mix: mix.to_string(),
                        threads,
                        mode: mode.to_string(),
                        batches: stats.commits,
                        stamp_writes: stats.stamp_writes,
                        cas_retries: stats.cas_retries,
                        elapsed_us: secs * 1e6,
                        commits_per_sec: total_batches as f64 / secs,
                        ok,
                    }
                };
                // Best-of-N: scheduler noise (especially on small or
                // shared hosts) dwarfs the per-batch commit cost, and the
                // best rep is the closest observation of the path's true
                // cost.  The invariants must hold in *every* rep.
                let mut row = measure();
                for _ in 1..COMMITBENCH_REPS {
                    let rep = measure();
                    let ok = row.ok && rep.ok;
                    if rep.commits_per_sec > row.commits_per_sec {
                        row = rep;
                    }
                    row.ok = ok;
                }
                table.push_row(vec![
                    row.mix.clone(),
                    row.threads.to_string(),
                    row.mode.clone(),
                    row.batches.to_string(),
                    row.stamp_writes.to_string(),
                    row.cas_retries.to_string(),
                    format!("{:.1}", row.elapsed_us),
                    format!("{:.0}", row.commits_per_sec),
                    if row.ok { "ok" } else { "VIOLATED" }.to_string(),
                ]);
                rows.push(row);
            }
        }
    }
    let text = table.render();
    (rows, text)
}

/// True-sharing rates (permille) swept by the `recovery` experiment.
pub const RECOVERY_SWEEP_PERMILLE: [u32; 3] = [0, 500, 1000];

/// Commit-log grains swept by the `recovery` experiment: word (true
/// sharing only) and line (adds false sharing, the value-predict regime).
pub const RECOVERY_SWEEP_GRAINS: [u32; 2] = [WORD_GRAIN_LOG2, LINE_GRAIN_LOG2];

/// The recovery engines compared by the `recovery` sweep, cheapest-last:
/// the three single-version engines plus the mvcc engine, whose
/// version rings turn conservative same-range verdicts into precise
/// passes and whose retries time-travel to the version actually read.
pub fn recovery_sweep_modes() -> [RecoveryConfig; 4] {
    [
        RecoveryConfig::cascade_only(),
        RecoveryConfig::targeted(),
        RecoveryConfig::targeted_with_retry(),
        RecoveryConfig::mvcc(),
    ]
}

/// One row of the recovery sweep: a native run of a conflict-family
/// workload at one (grain, sharing rate, recovery engine) point.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryRow {
    /// Schema version of this row ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Effective simulator worker threads configured for the invocation
    /// (schema v5; provenance on native rows).
    pub sim_threads: usize,
    /// Benchmark name.
    pub workload: String,
    /// Commit-log tracking grain (log2 bytes).
    pub grain_log2: u32,
    /// Recovery-engine label (`cascade`, `targeted`, `targeted+retry`).
    pub recovery: String,
    /// True-sharing rate in `[0, 1]`.
    pub sharing: f64,
    /// Committed speculative threads.
    pub committed: u64,
    /// Successful value-predict retries (in-flight + join-time events).
    pub retries: u64,
    /// Rolled-back speculative threads.
    pub rolled_back: u64,
    /// Rollbacks split by cause, indexed by
    /// [`RollbackReason::index`](mutls_membuf::RollbackReason::index).
    pub rollback_reasons: [u64; RollbackReason::COUNT],
    /// Threads doomed surgically through the reader registry.
    pub targeted_dooms: u64,
    /// Conflict recoveries that used the full squash cascade.
    pub cascade_fallbacks: u64,
    /// Work discarded by rollbacks (nanoseconds of native execution) —
    /// the column the engines are compared on.
    pub wasted_work_ns: u64,
    /// Derived rollback amplification (schema v6): wasted work over
    /// committed speculative work.
    pub rollback_amplification: f64,
    /// Commit batches recorded in the log.
    pub commits: u64,
    /// Commit throughput: batches per millisecond of commit-lock time.
    pub commit_throughput: f64,
    /// Reader-registry entries spilled to the overflow list (registry
    /// pressure under the targeted engines; always 0 for cascade-only).
    pub reader_spills: u64,
    /// Validations a version-ring probe proved precise: a later
    /// same-range commit shown to have missed every word the thread
    /// read.  Always 0 for the single-version engines.
    pub precise_passes: u64,
    /// Ring probes whose observed version had already fallen off the
    /// version window, degrading that range to the single-version
    /// conservative verdict.
    pub ring_overflows: u64,
    /// Per-phase latency quantiles of the median run (ns).
    pub latency: LatencyReport,
    /// Whether the final memory state matched the sequential reference.
    pub checksum_ok: bool,
}

/// Repetitions per recovery-sweep point: native wasted-work figures are
/// wall-clock (thread-scheduling sensitive), so each point is run several
/// times and the **median**-wasted-work run is reported.
pub const RECOVERY_SWEEP_REPS: usize = 5;

/// Native recovery sweep: the conflict family × tracking grain ×
/// true-sharing rate, comparing the three recovery engines — cascade-only
/// (lazy join-time discovery, full squash), targeted (registry-driven
/// surgical dooming) and targeted+retry (plus value-predict-and-retry).
/// No injection: every rollback is a genuine dependence violation, every
/// retry a genuine value-predict repair, and correctness must hold at
/// every point and every repetition (the differential oracle asserts the
/// same registry-wide).  Each point reports its median-wasted-work run
/// over [`RECOVERY_SWEEP_REPS`] repetitions, so the engine comparison is
/// robust against scheduling noise.  The summary lines report each
/// engine's wasted work against the cascade baseline — targeted recovery
/// buying back the conflict window, retry erasing false-sharing squashes.
pub fn recovery_sweep(config: &ExperimentConfig) -> (Vec<RecoveryRow>, String) {
    let cpus = native_cpus(config);
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!(
            "Recovery Engine Sweep at {cpus} CPUs (native runtime, real conflicts, no injection)"
        ),
        &[
            "workload",
            "grain",
            "sharing",
            "recovery",
            "committed",
            "retries",
            "rolled back (C/O/I/X)",
            "dooms",
            "cascades",
            "wasted (µs)",
            "commits/ms lock",
            "spills",
            "precise/ovfl",
            "f2c p50/p99/p999 (µs)",
            "checksum",
        ],
    );
    let mut summary =
        String::from("# Wasted work vs the cascade-only baseline (same workload/grain/sharing)\n");
    for kind in WorkloadKind::CONFLICT_FAMILY {
        for grain_log2 in RECOVERY_SWEEP_GRAINS {
            for permille in RECOVERY_SWEEP_PERMILLE {
                let sharing = permille as f64 / 1000.0;
                let case = ConflictCase::new(kind, config.scale, permille);
                let reference = case.reference();
                let mut baseline_wasted = None;
                for recovery in recovery_sweep_modes() {
                    // Median-of-reps: run the point several times, keep
                    // the run with the median wasted work.  Correctness
                    // must hold in *every* repetition.
                    type Rep = (
                        u64,
                        bool,
                        RunReport,
                        (Vec<TraceEvent>, u64),
                        conflict::MetricsCapture,
                    );
                    let mut runs: Vec<Rep> = (0..RECOVERY_SWEEP_REPS)
                        .map(|_| {
                            let (sum, report, capture, metrics) = case.native_observed(
                                RuntimeConfig::with_cpus(cpus)
                                    .commit_log(CommitLogConfig::default().grain_log2(grain_log2))
                                    .recovery(recovery)
                                    .trace(config.trace_config())
                                    .metrics(config.metrics_config()),
                            );
                            (
                                report.wasted_work(),
                                sum == reference,
                                report,
                                capture,
                                metrics,
                            )
                        })
                        .collect();
                    let every_rep_correct = runs.iter().all(|(_, ok, _, _, _)| *ok);
                    runs.sort_by_key(|(wasted, _, _, _, _)| *wasted);
                    let (_, _, report, (events, dropped), (series, last)) =
                        runs.swap_remove(runs.len() / 2);
                    let label = format!(
                        "recovery/{}/{}/sharing{permille:04}/{}",
                        kind.name(),
                        grain_label(grain_log2),
                        recovery.label()
                    );
                    config.record_trace(label.clone(), events, dropped);
                    config.record_metrics(label, series, last);
                    let log = report.commit_log;
                    let lock_ms = (log.lock_ns as f64 / 1e6).max(1e-6);
                    let row = RecoveryRow {
                        schema_version: BENCH_SCHEMA_VERSION,
                        sim_threads: config.effective_sim_threads(),
                        workload: kind.name().to_string(),
                        grain_log2,
                        recovery: recovery.label().to_string(),
                        sharing,
                        committed: report.committed_threads,
                        retries: report.retries(),
                        rolled_back: report.rolled_back_threads,
                        rollback_reasons: report.rollback_reasons,
                        targeted_dooms: report.targeted_dooms(),
                        cascade_fallbacks: report.cascade_fallbacks(),
                        wasted_work_ns: report.wasted_work(),
                        rollback_amplification: report.rollback_amplification(),
                        commits: log.commits,
                        commit_throughput: log.commits as f64 / lock_ms,
                        reader_spills: log.reader_spills,
                        precise_passes: report.precise_passes(),
                        ring_overflows: log.ring_overflows,
                        latency: report.latency.clone(),
                        checksum_ok: every_rep_correct,
                    };
                    table.push_row(vec![
                        row.workload.clone(),
                        grain_label(grain_log2),
                        format!("{:.0}%", sharing * 100.0),
                        row.recovery.clone(),
                        row.committed.to_string(),
                        row.retries.to_string(),
                        format_rollback_cell(row.rolled_back, &row.rollback_reasons),
                        row.targeted_dooms.to_string(),
                        row.cascade_fallbacks.to_string(),
                        format!("{:.1}", row.wasted_work_ns as f64 / 1e3),
                        format!("{:.0}", row.commit_throughput),
                        row.reader_spills.to_string(),
                        format!("{}/{}", row.precise_passes, row.ring_overflows),
                        latency_cell_us(&row.latency, LatencyPhase::ForkToCommit),
                        if row.checksum_ok { "ok" } else { "MISMATCH" }.to_string(),
                    ]);
                    match baseline_wasted {
                        None => baseline_wasted = Some(row.wasted_work_ns),
                        Some(base) if permille > 0 => {
                            summary.push_str(&format!(
                                "{} {} {:.0}%: {} wasted {:.1} µs vs cascade {:.1} µs ({:.1}x less)\n",
                                kind.name(),
                                grain_label(grain_log2),
                                sharing * 100.0,
                                row.recovery,
                                row.wasted_work_ns as f64 / 1e3,
                                base as f64 / 1e3,
                                base.max(1) as f64 / row.wasted_work_ns.max(1) as f64,
                            ));
                        }
                        Some(_) => {}
                    }
                    rows.push(row);
                }
            }
        }
    }
    let text = format!("{}\n{summary}", table.render());
    (rows, text)
}

/// One row of the deterministic recovery replay: a conflict-family
/// recording simulated under one recovery engine (virtual cycles, fully
/// reproducible — the strict engine-vs-engine claims live here, the
/// native sweep provides the wall-clock evidence).
#[derive(Debug, Clone, Serialize)]
pub struct RecoverySimRow {
    /// Schema version of this row ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Simulator worker threads the replay actually ran at (schema v5).
    /// Replays are byte-identical across values, so every other column
    /// is independent of this one — the committed baselines replay
    /// counter-for-counter at any thread count.
    pub sim_threads: usize,
    /// Benchmark name.
    pub workload: String,
    /// Commit-log tracking grain (log2 bytes).  Word grain is the
    /// single-version regime (every range hit is a word hit, so the
    /// rings never fire); line grain adds the false sharing the mvcc
    /// engine turns into precise passes.
    pub grain_log2: u32,
    /// Recovery-engine label.
    pub recovery: String,
    /// True-sharing rate in `[0, 1]`.
    pub sharing: f64,
    /// Committed speculative fibers.
    pub committed: u64,
    /// Fibers whose conflict was repaired by value-predict-and-retry.
    pub retried: u64,
    /// Rolled-back speculative fibers.
    pub rolled_back: u64,
    /// Fibers doomed surgically at publish time.
    pub targeted_dooms: u64,
    /// Validations the simulated version rings proved precise.
    pub precise_passes: u64,
    /// Simulated ring probes that fell off the version window and
    /// degraded to the single-version conservative verdict.
    pub ring_overflows: u64,
    /// Work discarded by rollbacks (virtual cycles) — deterministic.
    pub wasted_cycles: u64,
    /// Derived rollback amplification (schema v6): wasted cycles over
    /// committed speculative cycles — deterministic in the replay.
    pub rollback_amplification: f64,
    /// Absolute speedup over the sequential trace cost.
    pub speedup: f64,
}

/// Record a conflict-family workload at an explicit sharing rate.
fn record_conflict(kind: WorkloadKind, scale: Scale, permille: u32) -> Recording {
    let memory = Arc::new(GlobalMemory::new(conflict::ARENA_BYTES));
    match kind {
        WorkloadKind::ConflictChain => {
            let config = conflict::ChainConfig::for_scale(scale).sharing_permille(permille);
            let data = conflict::chain_setup(&memory, &config);
            record_region(memory, |ctx| conflict::chain_run(ctx, data, config))
        }
        WorkloadKind::HistShared => {
            let config = conflict::HistConfig::for_scale(scale).sharing_permille(permille);
            let data = conflict::hist_setup(&memory, &config);
            record_region(memory, |ctx| conflict::hist_run(ctx, data, config))
        }
        other => unreachable!("{} is not a conflict-family workload", other.name()),
    }
}

/// Deterministic recovery replay: the conflict family recorded at each
/// sharing rate and replayed on the discrete-event simulator under every
/// recovery engine, at word and line grain.  Identical inputs, virtual
/// cycles — the targeted engine's doomed fibers stop at their next check
/// point instead of completing their conflict window, so its wasted-work
/// reduction over the cascade baseline is exact and reproducible, not a
/// wall-clock estimate.  The line-grain slice is where the mvcc engine
/// separates from targeted+retry: false-sharing conflicts become
/// ring-probed precise passes instead of dooms and retries (at word
/// grain the engines coincide structurally — every range hit is a word
/// hit, so the rings never fire).
pub fn recovery_replay(config: &ExperimentConfig) -> (Vec<RecoverySimRow>, String) {
    let cpus = native_cpus(config);
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Recovery Engine Replay at {cpus} CPUs (deterministic simulation)"),
        &[
            "workload",
            "grain",
            "sharing",
            "recovery",
            "committed",
            "retried",
            "rolled back",
            "dooms",
            "precise/ovfl",
            "wasted (cycles)",
            "speedup",
        ],
    );
    for kind in WorkloadKind::CONFLICT_FAMILY {
        for permille in RECOVERY_SWEEP_PERMILLE {
            let sharing = permille as f64 / 1000.0;
            let recording = record_conflict(kind, config.scale, permille);
            for grain_log2 in RECOVERY_SWEEP_GRAINS {
                for recovery in recovery_sweep_modes() {
                    let result = simulate(
                        &recording,
                        SimConfig {
                            num_cpus: cpus,
                            seed: config.seed,
                            recovery,
                            trace: config.trace_enabled(),
                            sim_threads: config.effective_sim_threads(),
                            metrics: config.sim_metrics_config(),
                            ..SimConfig::default()
                        }
                        .grain_log2(grain_log2),
                    );
                    let report = &result.report;
                    let row = RecoverySimRow {
                        schema_version: BENCH_SCHEMA_VERSION,
                        sim_threads: config.effective_sim_threads(),
                        workload: kind.name().to_string(),
                        grain_log2,
                        recovery: recovery.label().to_string(),
                        sharing,
                        committed: report.committed_threads,
                        retried: report.retried_threads,
                        rolled_back: report.rolled_back_threads,
                        targeted_dooms: report.targeted_dooms(),
                        precise_passes: report.precise_passes(),
                        ring_overflows: report.commit_log.ring_overflows,
                        wasted_cycles: report.wasted_work(),
                        rollback_amplification: report.rollback_amplification(),
                        speedup: result.speedup(),
                    };
                    table.push_row(vec![
                        row.workload.clone(),
                        grain_label(grain_log2),
                        format!("{:.0}%", sharing * 100.0),
                        row.recovery.clone(),
                        row.committed.to_string(),
                        row.retried.to_string(),
                        row.rolled_back.to_string(),
                        row.targeted_dooms.to_string(),
                        format!("{}/{}", row.precise_passes, row.ring_overflows),
                        row.wasted_cycles.to_string(),
                        format!("{:.2}", row.speedup),
                    ]);
                    rows.push(row);
                    let label = format!(
                        "recovery_replay/{}/{}/sharing{permille:04}/{}",
                        kind.name(),
                        grain_label(grain_log2),
                        recovery.label()
                    );
                    config.record_trace(label.clone(), result.events, 0);
                    if let Some(last) = result.metrics.latest().cloned() {
                        config.record_metrics(label, result.metrics, last);
                    }
                }
            }
        }
    }
    (rows, table.render())
}

/// One grain configuration compared by the `graincontrol` sweep: a
/// static grain (the PR 3 knob) or the online adaptive controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrainMode {
    /// Static commit-log grain (log2 bytes), controller off.
    Static(u32),
    /// Word-grain floor, regions start at page, the controller re-splits
    /// on false-sharing suspects and re-coarsens calm regions.
    Adaptive,
}

impl GrainMode {
    /// The grain modes the sweep compares, static ladder first.
    pub fn all() -> [GrainMode; 4] {
        [
            GrainMode::Static(WORD_GRAIN_LOG2),
            GrainMode::Static(LINE_GRAIN_LOG2),
            GrainMode::Static(PAGE_GRAIN_LOG2),
            GrainMode::Adaptive,
        ]
    }

    /// Table label.
    pub fn label(self) -> String {
        match self {
            GrainMode::Static(g) => grain_label(g),
            GrainMode::Adaptive => "adaptive".to_string(),
        }
    }

    fn grain_control(self) -> mutls_adaptive::GrainControlConfig {
        match self {
            GrainMode::Static(_) => mutls_adaptive::GrainControlConfig::default(),
            // tick_commits(2): tiny/CI-scale runs only issue a handful of
            // commit batches, so the controller must react within a
            // couple of them.
            GrainMode::Adaptive => mutls_adaptive::GrainControlConfig::adaptive().tick_commits(2),
        }
    }

    fn runtime_config(self, cpus: usize) -> RuntimeConfig {
        let base = RuntimeConfig::with_cpus(cpus);
        match self {
            GrainMode::Static(g) => base.commit_grain_log2(g),
            GrainMode::Adaptive => base
                .commit_grain_log2(WORD_GRAIN_LOG2)
                .grain_control(self.grain_control()),
        }
    }

    fn sim_config(self, cpus: usize, seed: u64) -> SimConfig {
        let grain = match self {
            GrainMode::Static(g) => g,
            GrainMode::Adaptive => WORD_GRAIN_LOG2,
        };
        SimConfig {
            num_cpus: cpus,
            seed,
            grain_control: self.grain_control(),
            ..SimConfig::default()
        }
        .grain_log2(grain)
    }
}

/// Render a run's final per-region grain census (`word:3 page:5`).
fn census_label(census: &[(u32, u64)]) -> String {
    if census.is_empty() {
        return "-".to_string();
    }
    census
        .iter()
        .map(|&(grain, regions)| format!("{}:{}", grain_label(grain), regions))
        .collect::<Vec<_>>()
        .join(" ")
}

/// True-sharing rates (permille) the `graincontrol` sweep runs the
/// conflict family at (mandelbrot has no sharing knob and runs once).
pub const GRAINCONTROL_SHARING_PERMILLE: [u32; 2] = [0, 1000];

/// The recovery engines the `graincontrol` sweep and replay compare at
/// every grain mode: the single-version engine the committed
/// `BENCH_PR5.json` trajectory was generated under (first — the
/// trace-overhead bench replays that subset counter-for-counter) and
/// the mvcc engine, whose rings interact with the controller (regrains
/// conservatively truncate a region's version history).
pub fn graincontrol_recoveries() -> [RecoveryConfig; 2] {
    [
        RecoveryConfig::targeted_with_retry(),
        RecoveryConfig::mvcc(),
    ]
}

/// Repetitions per native graincontrol point (median by wasted work, as
/// in the recovery sweep).
pub const GRAINCONTROL_REPS: usize = 3;

/// One row of the native `graincontrol` sweep.
#[derive(Debug, Clone, Serialize)]
pub struct GrainControlRow {
    /// Schema version of this row ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Effective simulator worker threads configured for the invocation
    /// (schema v5; provenance on native rows).
    pub sim_threads: usize,
    /// Benchmark name.
    pub workload: String,
    /// Grain-mode label (`word`, `line`, `page`, `adaptive`).
    pub mode: String,
    /// Recovery-engine label (`targeted+retry` or `mvcc`).
    pub recovery: String,
    /// True-sharing rate in `[0, 1]` (0 for workloads without the knob).
    pub sharing: f64,
    /// Committed speculative threads.
    pub committed: u64,
    /// Successful value-predict retries.
    pub retries: u64,
    /// Rolled-back speculative threads.
    pub rolled_back: u64,
    /// Rollbacks split by cause.
    pub rollback_reasons: [u64; RollbackReason::COUNT],
    /// Conflict rollbacks classified as suspected false sharing.
    pub suspected_false_sharing: u64,
    /// Range stamps written (the log-traffic column coarser grains and
    /// the controller shrink).
    pub stamp_writes: u64,
    /// Regions the controller regrained at runtime.
    pub regrains: u64,
    /// Reader-registry entries spilled to the overflow list.
    pub reader_spills: u64,
    /// Validations a version-ring probe proved precise (mvcc rows only).
    pub precise_passes: u64,
    /// Work discarded by rollbacks (nanoseconds, median run).
    pub wasted_work_ns: u64,
    /// Wasted cycles per committed cycle (schema v6).
    pub rollback_amplification: f64,
    /// Final per-region grain census (`(grain_log2, regions)` pairs).
    pub region_grains: Vec<(u32, u64)>,
    /// Whether every repetition matched the sequential reference.
    pub checksum_ok: bool,
}

/// One row of the deterministic `graincontrol` replay.
#[derive(Debug, Clone, Serialize)]
pub struct GrainControlSimRow {
    /// Schema version of this row ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Simulator worker threads the replay actually ran at (schema v5;
    /// byte-identity makes every other column independent of it).
    pub sim_threads: usize,
    /// Benchmark name.
    pub workload: String,
    /// Grain-mode label.
    pub mode: String,
    /// Recovery-engine label (`targeted+retry` or `mvcc`).
    pub recovery: String,
    /// True-sharing rate in `[0, 1]`.
    pub sharing: f64,
    /// Committed speculative fibers.
    pub committed: u64,
    /// Fibers repaired by value-predict-and-retry.
    pub retried: u64,
    /// Rolled-back speculative fibers.
    pub rolled_back: u64,
    /// Simulated range stamps (deterministic — the acceptance column for
    /// the stamp-traffic claim).
    pub stamp_writes: u64,
    /// Regions regrained by the simulated controller.
    pub regrains: u64,
    /// Validations the simulated version rings proved precise (mvcc
    /// rows only).
    pub precise_passes: u64,
    /// Work discarded by rollbacks (virtual cycles, deterministic — the
    /// acceptance column for the wasted-work claim).
    pub wasted_cycles: u64,
    /// Wasted cycles per committed cycle (schema v6).
    pub rollback_amplification: f64,
    /// Absolute speedup over the sequential trace cost.
    pub speedup: f64,
    /// Final per-region grain census.
    pub region_grains: Vec<(u32, u64)>,
}

/// The (workload, sharing permille) points of the graincontrol sweep:
/// mandelbrot is the stamp-traffic workload (disjoint rows, no sharing
/// knob), the conflict family prices false vs true sharing.
fn graincontrol_points() -> Vec<(WorkloadKind, u32)> {
    let mut points = vec![(WorkloadKind::Mandelbrot, 0)];
    for kind in WorkloadKind::CONFLICT_FAMILY {
        for permille in GRAINCONTROL_SHARING_PERMILLE {
            points.push((kind, permille));
        }
    }
    points
}

/// Native graincontrol sweep: workload × sharing × {static word, static
/// line, static page, adaptive}.  The adaptive mode runs a word-grain
/// floor with regions starting at page: calm dense-numeric regions keep
/// page-grain stamp traffic while conflicting regions re-split toward
/// word exactness — one binary serving both ends of the
/// dense-vs-pointer-chasing spectrum in the same run, which is the
/// mixed-model thesis applied to detection granularity.  Median of
/// [`GRAINCONTROL_REPS`] by wasted work; correctness must hold in every
/// repetition.  The quantitative adaptive-vs-static claims are asserted
/// on the deterministic replay ([`graincontrol_replay`]).
pub fn graincontrol_sweep(config: &ExperimentConfig) -> (Vec<GrainControlRow>, String) {
    let cpus = native_cpus(config);
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!(
            "Adaptive Grain Control Sweep at {cpus} CPUs (native runtime, real conflicts, no injection)"
        ),
        &[
            "workload",
            "sharing",
            "mode",
            "recovery",
            "committed",
            "retries",
            "rolled back (C/O/I/X)",
            "false-share",
            "stamps",
            "regrains",
            "spills",
            "precise",
            "wasted (µs)",
            "final grains",
            "checksum",
        ],
    );
    for (kind, permille) in graincontrol_points() {
        let sharing = permille as f64 / 1000.0;
        for mode in GrainMode::all() {
            for recovery in graincontrol_recoveries() {
                type Rep = (
                    u64,
                    bool,
                    RunReport,
                    (Vec<TraceEvent>, u64),
                    conflict::MetricsCapture,
                );
                let mut runs: Vec<Rep> = (0..GRAINCONTROL_REPS)
                    .map(|_| {
                        let runtime_config = mode
                            .runtime_config(cpus)
                            .recovery(recovery)
                            .trace(config.trace_config())
                            .metrics(config.metrics_config());
                        let (ok, report, capture, metrics) = match kind {
                            WorkloadKind::Mandelbrot => {
                                let runtime = Runtime::new(
                                    runtime_config.memory_bytes(arena_bytes(kind, config.scale)),
                                );
                                let memory = runtime.memory();
                                let data = setup(kind, config.scale, &memory);
                                let (_, report) = runtime.run(|ctx| run_speculative(ctx, &data));
                                let ok = mutls_workloads::checksum(&memory, &data)
                                    == reference_checksum(kind, config.scale);
                                let capture =
                                    (runtime.drain_trace_events(), runtime.trace_dropped());
                                let metrics =
                                    (runtime.metrics_series(), runtime.metrics_snapshot());
                                (ok, report, capture, metrics)
                            }
                            _ => {
                                let case = ConflictCase::new(kind, config.scale, permille);
                                let (sum, report, capture, metrics) =
                                    case.native_observed(runtime_config);
                                (sum == case.reference(), report, capture, metrics)
                            }
                        };
                        (report.wasted_work(), ok, report, capture, metrics)
                    })
                    .collect();
                let every_rep_correct = runs.iter().all(|(_, ok, _, _, _)| *ok);
                runs.sort_by_key(|(wasted, _, _, _, _)| *wasted);
                let (_, _, report, (events, dropped), (series, last)) =
                    runs.swap_remove(runs.len() / 2);
                let label = format!(
                    "graincontrol/{}/sharing{permille:04}/{}/{}",
                    kind.name(),
                    mode.label(),
                    recovery.label()
                );
                config.record_trace(label.clone(), events, dropped);
                config.record_metrics(label, series, last);
                let row = GrainControlRow {
                    schema_version: BENCH_SCHEMA_VERSION,
                    sim_threads: config.effective_sim_threads(),
                    workload: kind.name().to_string(),
                    mode: mode.label(),
                    recovery: recovery.label().to_string(),
                    sharing,
                    committed: report.committed_threads,
                    retries: report.retries(),
                    rolled_back: report.rolled_back_threads,
                    rollback_reasons: report.rollback_reasons,
                    suspected_false_sharing: report.suspected_false_sharing(),
                    stamp_writes: report.commit_log.stamp_writes,
                    regrains: report.commit_log.regrains,
                    reader_spills: report.commit_log.reader_spills,
                    precise_passes: report.precise_passes(),
                    wasted_work_ns: report.wasted_work(),
                    rollback_amplification: report.rollback_amplification(),
                    region_grains: report.region_grains.clone(),
                    checksum_ok: every_rep_correct,
                };
                table.push_row(vec![
                    row.workload.clone(),
                    format!("{:.0}%", sharing * 100.0),
                    row.mode.clone(),
                    row.recovery.clone(),
                    row.committed.to_string(),
                    row.retries.to_string(),
                    format_rollback_cell(row.rolled_back, &row.rollback_reasons),
                    row.suspected_false_sharing.to_string(),
                    row.stamp_writes.to_string(),
                    row.regrains.to_string(),
                    row.reader_spills.to_string(),
                    row.precise_passes.to_string(),
                    format!("{:.1}", row.wasted_work_ns as f64 / 1e3),
                    census_label(&row.region_grains),
                    if row.checksum_ok { "ok" } else { "MISMATCH" }.to_string(),
                ]);
                rows.push(row);
            }
        }
    }
    (rows, table.render())
}

/// Deterministic graincontrol replay: the same workload × sharing ×
/// grain-mode matrix on the discrete-event simulator — virtual cycles
/// and simulated stamp counts, fully reproducible.  This is where the
/// acceptance claims live: adaptive stamp traffic tracks the best static
/// grain on the calm workload (mandelbrot ≈ page) while adaptive wasted
/// work tracks the best static grain on the conflicting one
/// (conflict_chain ≈ word), in the *same* configuration.
pub fn graincontrol_replay(config: &ExperimentConfig) -> (Vec<GrainControlSimRow>, String) {
    let cpus = native_cpus(config);
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Adaptive Grain Control Replay at {cpus} CPUs (deterministic simulation)"),
        &[
            "workload",
            "sharing",
            "mode",
            "recovery",
            "committed",
            "retried",
            "rolled back",
            "stamps",
            "regrains",
            "precise",
            "wasted (cycles)",
            "speedup",
            "final grains",
        ],
    );
    for (kind, permille) in graincontrol_points() {
        let sharing = permille as f64 / 1000.0;
        let recording = match kind {
            WorkloadKind::Mandelbrot => record_workload(kind, config.scale),
            _ => record_conflict(kind, config.scale, permille),
        };
        for mode in GrainMode::all() {
            for recovery in graincontrol_recoveries() {
                let mut sim_config = mode
                    .sim_config(cpus, config.seed)
                    .trace(config.trace_enabled())
                    .sim_threads(config.effective_sim_threads());
                sim_config.recovery = recovery;
                sim_config.metrics = config.sim_metrics_config();
                let result = simulate(&recording, sim_config);
                let report = &result.report;
                let row = GrainControlSimRow {
                    schema_version: BENCH_SCHEMA_VERSION,
                    sim_threads: config.effective_sim_threads(),
                    workload: kind.name().to_string(),
                    mode: mode.label(),
                    recovery: recovery.label().to_string(),
                    sharing,
                    committed: report.committed_threads,
                    retried: report.retried_threads,
                    rolled_back: report.rolled_back_threads,
                    stamp_writes: report.commit_log.stamp_writes,
                    regrains: report.commit_log.regrains,
                    precise_passes: report.precise_passes(),
                    wasted_cycles: report.wasted_work(),
                    rollback_amplification: report.rollback_amplification(),
                    speedup: result.speedup(),
                    region_grains: report.region_grains.clone(),
                };
                table.push_row(vec![
                    row.workload.clone(),
                    format!("{:.0}%", sharing * 100.0),
                    row.mode.clone(),
                    row.recovery.clone(),
                    row.committed.to_string(),
                    row.retried.to_string(),
                    row.rolled_back.to_string(),
                    row.stamp_writes.to_string(),
                    row.regrains.to_string(),
                    row.precise_passes.to_string(),
                    row.wasted_cycles.to_string(),
                    format!("{:.2}", row.speedup),
                    census_label(&row.region_grains),
                ]);
                rows.push(row);
                let label = format!(
                    "graincontrol_replay/{}/sharing{permille:04}/{}/{}",
                    kind.name(),
                    mode.label(),
                    recovery.label()
                );
                config.record_trace(label.clone(), result.events, 0);
                if let Some(last) = result.metrics.latest().cloned() {
                    config.record_metrics(label, result.metrics, last);
                }
            }
        }
    }
    (rows, table.render())
}

/// One row of the `trace` scenario: lifecycle-event and latency totals of
/// one fully traced run (native runtime or deterministic replay).
#[derive(Debug, Clone, Serialize)]
pub struct TraceScenarioRow {
    /// Schema version of this row ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Effective simulator worker threads (schema v5; used by the replay
    /// half of the scenario, provenance on the native half).
    pub sim_threads: usize,
    /// Scenario label (`native/...` or `replay/...`).
    pub scenario: String,
    /// Events captured, after ring drops.
    pub events: u64,
    /// Events dropped by the bounded per-thread rings (native runs only;
    /// the replay's event vector is unbounded).
    pub dropped: u64,
    /// `ForkAttempt` events.
    pub forks: u64,
    /// `Commit` events.
    pub commits: u64,
    /// `Rollback` events.
    pub rollbacks: u64,
    /// `Doom` events.
    pub dooms: u64,
    /// Per-phase latency quantiles (ns native, virtual cycles replay).
    pub latency: LatencyReport,
}

/// The `trace` scenario: one native conflict-chain run and one
/// deterministic replay of the same workload at 100% true sharing, both
/// with the flight recorder forced on, reported as a per-kind event
/// census plus the full per-phase latency tables.  Also records both
/// streams into the config's trace sink when one is attached, so
/// `mutls-experiments trace --trace out.json` exports a ready-to-open
/// Perfetto document even without running a full sweep.
pub fn trace_scenario(config: &ExperimentConfig) -> (Vec<TraceScenarioRow>, String) {
    let cpus = native_cpus(config);
    let chain = conflict::ChainConfig::for_scale(config.scale).sharing_permille(1000);
    let (_, native_report, (native_events, native_dropped)) = conflict::chain_native_traced(
        chain,
        RuntimeConfig::with_cpus(cpus)
            .commit_log(CommitLogConfig::word_grain())
            .trace(TraceConfig::enabled()),
    );
    let recording = record_conflict(WorkloadKind::ConflictChain, config.scale, 1000);
    let replay = simulate(
        &recording,
        SimConfig {
            num_cpus: cpus,
            seed: config.seed,
            trace: true,
            sim_threads: config.effective_sim_threads(),
            ..SimConfig::default()
        },
    );
    let mut rows = Vec::new();
    let mut census = Table::new(
        format!("Flight Recorder Census at {cpus} CPUs (conflict_chain, 100% sharing)"),
        &["scenario", "event", "count"],
    );
    let scenarios: [(&str, &[TraceEvent], u64, &LatencyReport); 2] = [
        (
            "native/conflict_chain",
            &native_events,
            native_dropped,
            &native_report.latency,
        ),
        (
            "replay/conflict_chain",
            &replay.events,
            0,
            &replay.report.latency,
        ),
    ];
    for (scenario, events, dropped, latency) in scenarios {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for event in events {
            let name = event.kind.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        counts.sort_by_key(|&(name, _)| name);
        let count_of = |kind: &str| {
            counts
                .iter()
                .find(|(n, _)| *n == kind)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        };
        rows.push(TraceScenarioRow {
            schema_version: BENCH_SCHEMA_VERSION,
            sim_threads: config.effective_sim_threads(),
            scenario: scenario.to_string(),
            events: events.len() as u64,
            dropped,
            forks: count_of("ForkAttempt"),
            commits: count_of("Commit"),
            rollbacks: count_of("Rollback"),
            dooms: count_of("Doom"),
            latency: latency.clone(),
        });
        for (name, count) in &counts {
            census.push_row(vec![
                scenario.to_string(),
                name.to_string(),
                count.to_string(),
            ]);
        }
    }
    let mut text = census.render();
    text.push('\n');
    text.push_str(&format_latency_table(
        "Phase latencies — native conflict_chain (ns)",
        &native_report.latency,
    ));
    text.push('\n');
    text.push_str(&format_latency_table(
        "Phase latencies — replayed conflict_chain (virtual cycles)",
        &replay.report.latency,
    ));
    config.record_trace(
        "trace/native/conflict_chain".to_string(),
        native_events,
        native_dropped,
    );
    config.record_trace("trace/replay/conflict_chain".to_string(), replay.events, 0);
    (rows, text)
}

/// Thread counts swept by the `parsim` scenario (1 is the sequential
/// baseline the others are compared against).  The sweep is capped by
/// the [`PARSIM_THREADS_ENV`] environment variable, so small CI hosts
/// skip the counts they cannot physically run in parallel.
pub const PARSIM_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Environment variable capping the `parsim` thread sweep at the given
/// count (points above it are skipped; 1 always runs).
pub const PARSIM_THREADS_ENV: &str = "PARSIM_THREADS";

/// Repetitions per `parsim` point; the best (lowest) wall-clock rep is
/// reported, but byte-identity must hold in *every* rep.
const PARSIM_REPS: u32 = 3;

/// The `parsim` thread list after applying the environment cap.
fn parsim_threads() -> Vec<usize> {
    let cap = std::env::var(PARSIM_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(usize::MAX);
    PARSIM_THREADS
        .iter()
        .copied()
        .filter(|&t| t == 1 || t <= cap)
        .collect()
}

/// One `parsim` data point: a recording simulated at one thread count,
/// with wall clock, Time Warp shard counters and the byte-identity
/// verdict against the sequential run of the same recording.
#[derive(Debug, Clone, Serialize)]
pub struct ParSimRow {
    /// Schema version of this row ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Simulator worker threads this run used (1 = sequential baseline).
    pub sim_threads: usize,
    /// Benchmark name.
    pub workload: String,
    /// Shard policy label (`cpu-stripe` or `fiber-hash`).
    pub shard_policy: String,
    /// Recorded tasks in the recording (the problem size the wall clock
    /// is paid over).
    pub tasks: u64,
    /// Wall-clock time of the best rep (milliseconds) — the only
    /// non-deterministic column besides the advance split below.
    pub sim_wall_ms: f64,
    /// Sequential wall over this run's wall (>1 = parallel wins).
    pub wall_speedup: f64,
    /// Advance requests posted to shard workers (deterministic).
    pub requests: u64,
    /// Advances whose precomputed effects were applied (racy split with
    /// `advances_overtaken`: depends on worker progress, never on
    /// results).
    pub advances_applied: u64,
    /// Advances the driver overtook and recomputed inline (racy split).
    pub advances_overtaken: u64,
    /// Advances the shard workers actually precomputed, whether or not
    /// the driver got to apply them (schema v6; racy like the split
    /// above — it measures worker throughput, never results).
    pub advances_computed: u64,
    /// Shard rollbacks: advances invalidated by a cross-shard publish or
    /// regrain in their virtual past (deterministic — a pure function of
    /// the event schedule).
    pub shard_rollbacks: u64,
    /// Publish-log entries reclaimed by GVT fossil collection
    /// (deterministic).
    pub fossil_collected: u64,
    /// Whether every rep's serialized `RunReport` was byte-identical to
    /// the sequential baseline's.
    pub identical: bool,
}

/// The `parsim` scenario: the Time Warp parallel simulator against the
/// sequential event loop on the two ends of the workload spectrum — the
/// conflict-heavy `hist_shared` recording (publish-log scans dominate,
/// the work the shard workers offload) and the embarrassingly parallel
/// `mandelbrot` recording (scan-light; measures protocol overhead).
/// Every parallel run is asserted byte-identical to the sequential run
/// of the same recording; wall clock and shard counters are reported
/// per thread count.  `BENCH_PR9.json` tracks this table.
pub fn parsim(config: &ExperimentConfig) -> (Vec<ParSimRow>, String) {
    let cpus = config.cpus.iter().copied().max().unwrap_or(16);
    let threads_list = parsim_threads();
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!(
            "Time Warp Parallel Simulation at {cpus} simulated CPUs (best of {PARSIM_REPS} reps)"
        ),
        &[
            "workload",
            "threads",
            "policy",
            "wall (ms)",
            "speedup",
            "requests",
            "applied",
            "overtaken",
            "computed",
            "shard rollbacks",
            "fossils",
            "identical",
        ],
    );
    let cases = [
        (
            "hist_shared",
            record_conflict(WorkloadKind::HistShared, config.scale, 1000),
        ),
        (
            "mandelbrot",
            record_workload(WorkloadKind::Mandelbrot, config.scale),
        ),
    ];
    for (name, recording) in &cases {
        let tasks = recording.task_count() as u64;
        let mut sequential_json = None;
        let mut sequential_wall_ms = f64::NAN;
        for &sim_threads in &threads_list {
            let sim_config = SimConfig {
                num_cpus: cpus,
                seed: config.seed,
                sim_threads,
                ..SimConfig::default()
            };
            let mut best: Option<(f64, SimResult)> = None;
            let mut identical = true;
            for _ in 0..PARSIM_REPS {
                let started = Instant::now();
                let result = simulate(recording, sim_config.clone());
                let wall_ms = started.elapsed().as_secs_f64() * 1e3;
                let mut json = String::new();
                result.report.serialize_json(&mut json);
                match &sequential_json {
                    None => sequential_json = Some(json),
                    Some(reference) => identical &= *reference == json,
                }
                if best.as_ref().map(|(w, _)| wall_ms < *w).unwrap_or(true) {
                    best = Some((wall_ms, result));
                }
            }
            let (wall_ms, result) = best.expect("at least one rep ran");
            if sim_threads == 1 {
                sequential_wall_ms = wall_ms;
            }
            let warp = result.warp;
            let row = ParSimRow {
                schema_version: BENCH_SCHEMA_VERSION,
                sim_threads,
                workload: name.to_string(),
                shard_policy: sim_config.shard_policy.label().to_string(),
                tasks,
                sim_wall_ms: wall_ms,
                wall_speedup: sequential_wall_ms / wall_ms.max(1e-9),
                requests: warp.requests,
                advances_applied: warp.advances_applied,
                advances_overtaken: warp.advances_overtaken,
                advances_computed: warp.advances_computed,
                shard_rollbacks: warp.shard_rollbacks,
                fossil_collected: warp.fossil_collected,
                identical,
            };
            table.push_row(vec![
                row.workload.clone(),
                row.sim_threads.to_string(),
                row.shard_policy.clone(),
                format!("{:.2}", row.sim_wall_ms),
                format!("{:.2}", row.wall_speedup),
                row.requests.to_string(),
                row.advances_applied.to_string(),
                row.advances_overtaken.to_string(),
                row.advances_computed.to_string(),
                row.shard_rollbacks.to_string(),
                row.fossil_collected.to_string(),
                if row.identical { "ok" } else { "DIVERGED" }.to_string(),
            ]);
            assert!(
                row.identical,
                "{name} at {sim_threads} threads diverged from the sequential report"
            );
            rows.push(row);
        }
    }
    (rows, table.render())
}

/// One row of the `metrics` scenario: headline counters and derived
/// gauges read back from the *final exported snapshot* of one fully
/// instrumented run (native runtime or deterministic replay) — the
/// telemetry plane observing itself.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsRow {
    /// Schema version of this row ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Effective simulator worker threads (replay half; provenance on
    /// the native half).
    pub sim_threads: usize,
    /// Scenario label (`native/...` or `replay/...`).
    pub scenario: String,
    /// Snapshots the sampler retained (wall-clock cadence natively,
    /// virtual-cycle cadence in the replay).
    pub samples: u64,
    /// `mutls_forks_total` in the final snapshot.
    pub forks: u64,
    /// `mutls_commits_total` in the final snapshot.
    pub commits: u64,
    /// `mutls_rollbacks_total` in the final snapshot.
    pub rolled_back: u64,
    /// `mutls_retries_total` in the final snapshot.
    pub retries: u64,
    /// `mutls_wasted_cycles_total` in the final snapshot (ns native,
    /// virtual cycles replay).
    pub wasted_cycles: u64,
    /// Derived gauge: wasted over committed cycles.
    pub rollback_amplification: f64,
    /// Derived gauge: commits over forks.
    pub speculation_success_rate: f64,
    /// Derived gauge: precise validation passes over commits.
    pub precise_pass_fraction: f64,
}

/// The `metrics` scenario: one native conflict-chain run and one
/// deterministic replay of the same workload at 100% true sharing, both
/// with the metrics plane forced on, reported as the headline counters
/// and derived gauges of each final snapshot.  Also records both series
/// into the config's metrics sink when one is attached, so
/// `mutls-experiments metrics --metrics out.prom` exports a ready-made
/// Prometheus document even without running a full sweep.  The replay's
/// *exported* snapshot additionally carries the Time Warp shard counters
/// as `warp` labeled gauges; the sampled series never does, preserving
/// byte-identity across `sim_threads`.
pub fn metrics_scenario(config: &ExperimentConfig) -> (Vec<MetricsRow>, String) {
    let cpus = native_cpus(config);
    let chain = conflict::ChainConfig::for_scale(config.scale).sharing_permille(1000);
    let (_, _, _, (native_series, native_last)) = conflict::chain_native_observed(
        chain,
        RuntimeConfig::with_cpus(cpus)
            .commit_log(CommitLogConfig::word_grain())
            .metrics(MetricsConfig::enabled().sample_interval_ms(1)),
    );
    let recording = record_conflict(WorkloadKind::ConflictChain, config.scale, 1000);
    let replay = simulate(
        &recording,
        SimConfig {
            num_cpus: cpus,
            seed: config.seed,
            sim_threads: config.effective_sim_threads(),
            metrics: MetricsConfig::enabled(),
            ..SimConfig::default()
        },
    );
    let replay_series = replay.metrics;
    let mut replay_last = replay_series
        .latest()
        .cloned()
        .expect("replay metrics were enabled");
    replay_last.labeled.extend(replay.warp.metric_gauges());
    let mut rows = Vec::new();
    let mut table = Table::new(
        format!("Live Metrics Scenario at {cpus} CPUs (conflict_chain, 100% sharing)"),
        &[
            "scenario",
            "samples",
            "forks",
            "commits",
            "rolled back",
            "retries",
            "wasted",
            "rollback amp",
            "success rate",
            "precise",
        ],
    );
    let scenarios: [(&str, u64, &MetricsSnapshot); 2] = [
        (
            "native/conflict_chain",
            native_series.len() as u64,
            &native_last,
        ),
        (
            "replay/conflict_chain",
            replay_series.len() as u64,
            &replay_last,
        ),
    ];
    for (scenario, samples, snap) in scenarios {
        let counter = |name: &str| snap.counter(name).unwrap_or(0);
        let gauge = |name: &str| snap.gauge(name).unwrap_or(0.0);
        let row = MetricsRow {
            schema_version: BENCH_SCHEMA_VERSION,
            sim_threads: config.effective_sim_threads(),
            scenario: scenario.to_string(),
            samples,
            forks: counter("forks"),
            commits: counter("commits"),
            rolled_back: counter("rollbacks"),
            retries: counter("retries"),
            wasted_cycles: counter("wasted_cycles"),
            rollback_amplification: gauge("rollback_amplification"),
            speculation_success_rate: gauge("speculation_success_rate"),
            precise_pass_fraction: gauge("precise_pass_fraction"),
        };
        table.push_row(vec![
            row.scenario.clone(),
            row.samples.to_string(),
            row.forks.to_string(),
            row.commits.to_string(),
            row.rolled_back.to_string(),
            row.retries.to_string(),
            row.wasted_cycles.to_string(),
            format!("{:.3}", row.rollback_amplification),
            format!("{:.3}", row.speculation_success_rate),
            format!("{:.3}", row.precise_pass_fraction),
        ]);
        rows.push(row);
    }
    config.record_metrics(
        "metrics/native/conflict_chain".to_string(),
        native_series,
        native_last,
    );
    config.record_metrics(
        "metrics/replay/conflict_chain".to_string(),
        replay_series,
        replay_last,
    );
    (rows, table.render())
}

/// Table II: the benchmark suite, with the measured memory-access density
/// of each recording added as evidence for the computation/memory
/// classification.
pub fn table2(config: &ExperimentConfig) -> (HashMap<String, f64>, String) {
    let mut table = Table::new(
        "Table II — Benchmarks",
        &[
            "benchmark",
            "description",
            "amount of data (paper)",
            "pattern",
            "class",
            "measured mem density",
        ],
    );
    let mut densities = HashMap::new();
    for kind in WorkloadKind::ALL {
        let d = descriptor(kind);
        let recording = record_workload(kind, config.scale);
        let density = recording.memory_density();
        densities.insert(kind.name().to_string(), density);
        table.push_row(vec![
            d.name.to_string(),
            d.description.to_string(),
            d.amount_of_data.to_string(),
            d.pattern.to_string(),
            match d.class {
                mutls_workloads::WorkloadClass::ComputationIntensive => "computation".to_string(),
                mutls_workloads::WorkloadClass::MemoryIntensive => "memory".to_string(),
            },
            format!("{density:.3}"),
        ]);
    }
    (densities, table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig::quick()
    }

    #[test]
    fn figure3_reports_scaling_compute_workloads() {
        let (rows, text) = figure3(&quick());
        assert!(text.contains("Figure 3"));
        // Speedup at 64 CPUs should be much larger than at 1 CPU for 3x+1.
        let s1 = rows
            .iter()
            .find(|r| r.workload == "3x+1" && r.cpus == 1)
            .unwrap()
            .speedup;
        let s64 = rows
            .iter()
            .find(|r| r.workload == "3x+1" && r.cpus == 64)
            .unwrap()
            .speedup;
        assert!(s64 > s1, "s64 {s64} vs s1 {s1}");
    }

    #[test]
    fn figure10_out_of_order_loses_on_tree_recursion() {
        let (rows, _) = figure10(&quick());
        let max_cpus = quick().cpus.into_iter().max().unwrap();
        let normalized = |kind: &str| {
            rows.iter()
                .find(|(name, cpus, _)| name == &format!("{kind} outoforder") && *cpus == max_cpus)
                .map(|(_, _, v)| *v)
                .unwrap()
        };
        // At tiny scale fft shows the divide-and-conquer gap clearly; the
        // DFS benchmarks have so little work per subtree that the models
        // converge, but out-of-order must never *beat* mixed.
        assert!(
            normalized("fft") < 1.0,
            "fft: out-of-order should trail mixed, got {}",
            normalized("fft")
        );
        for kind in ["matmult", "nqueen", "tsp"] {
            assert!(
                normalized(kind) <= 1.05,
                "{kind}: out-of-order should not beat mixed, got {}",
                normalized(kind)
            );
        }
    }

    #[test]
    fn figure11_sensitivity_is_monotone_in_probability() {
        let config = ExperimentConfig {
            scale: Scale::Tiny,
            cpus: vec![16],
            seed: 3,
            sim_threads: 1,
            trace: None,
            metrics: None,
        };
        let (rows, _) = figure11(&config);
        let fft: Vec<f64> = rows
            .iter()
            .filter(|(name, _, _)| name == "fft")
            .map(|(_, _, v)| *v)
            .collect();
        assert_eq!(fft.len(), ROLLBACK_PROBABILITIES.len());
        assert!(fft.first().unwrap() >= fft.last().unwrap());
    }

    #[test]
    fn table2_densities_separate_classes() {
        let (densities, text) = table2(&quick());
        assert!(text.contains("Table II"));
        let compute_max = ["3x+1", "mandelbrot"]
            .iter()
            .map(|k| densities[*k])
            .fold(0.0f64, f64::max);
        let memory_min = ["fft", "matmult"]
            .iter()
            .map(|k| densities[*k])
            .fold(f64::INFINITY, f64::min);
        assert!(
            compute_max < memory_min,
            "computation-intensive density {compute_max} should be below memory-intensive {memory_min}"
        );
    }

    #[test]
    fn adaptive_sweep_covers_all_workloads_and_policies() {
        let (rows, text) = adaptive_sweep(&quick());
        assert!(text.contains("Adaptive Governor Sweep"));
        assert!(text.contains("Per-site profile"));
        assert_eq!(rows.len(), WorkloadKind::ALL.len() * PolicyKind::ALL.len());
        // The rollback-heavy workloads run with injected rollbacks.
        for kind in ROLLBACK_HEAVY {
            assert!(rows
                .iter()
                .any(|r| r.workload == kind.name() && r.rollback_probability > 0.0));
        }
        // The static policy never throttles (seed behaviour).
        assert!(rows
            .iter()
            .filter(|r| r.policy == "static")
            .all(|r| r.throttled_forks == 0));
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let rows = breakdown(WorkloadKind::Fft, &quick(), &[4], false);
        let total: f64 = rows[0].fractions.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(par_map(&[] as &[u64], |&x| x), Vec::<u64>::new());
    }

    #[test]
    fn conflict_sweep_detects_real_conflicts_and_stays_correct() {
        let (rows, text) = conflict_sweep(&quick());
        assert!(text.contains("Conflict Sweep"));
        assert!(text.contains("wasted-work reduction"));
        assert_eq!(
            rows.len(),
            WorkloadKind::CONFLICT_FAMILY.len()
                * CONFLICT_SHARING_PERMILLE.len()
                * NATIVE_POLICIES.len()
        );
        let conflict_idx = RollbackReason::Conflict.index();
        let injected_idx = RollbackReason::Injected.index();
        for row in &rows {
            // Correctness holds at every sharing rate and policy, and no
            // rollback is ever injected.
            assert!(row.checksum_ok, "{} {} diverged", row.workload, row.policy);
            assert_eq!(
                row.rollback_reasons[injected_idx], 0,
                "{}: injected rollbacks without opting in",
                row.workload
            );
            // Zero sharing → zero conflicts, structurally.
            if row.sharing == 0.0 {
                assert_eq!(
                    row.rollback_reasons[conflict_idx], 0,
                    "{} {}: conflicts without sharing",
                    row.workload, row.policy
                );
            }
        }
        // Full sharing under the static policy produces genuine conflicts…
        assert!(
            rows.iter()
                .filter(|r| r.sharing == 1.0 && r.policy == "static")
                .any(|r| r.rollback_reasons[conflict_idx] > 0),
            "no real conflicts detected at 100% sharing"
        );
        // …and the throttle governor reacts to them by suppressing forks.
        // The targeted recovery engine resolves conflicts with far less
        // re-fork churn than the old cascade, so at tiny scale the
        // governor sometimes runs out of fork decisions before its
        // warm-up samples fill; engagement is therefore asserted across
        // every >= 50%-sharing throttle row, with a bounded number of
        // re-runs to absorb scheduling races.
        let throttle_engaged = |rows: &[NativeRow]| {
            rows.iter()
                .filter(|r| r.sharing >= 0.5 && r.policy == "throttle")
                .any(|r| r.throttled_forks > 0)
        };
        let mut engaged = throttle_engaged(&rows);
        for _ in 0..2 {
            if engaged {
                break;
            }
            engaged = throttle_engaged(&conflict_sweep(&quick()).0);
        }
        assert!(engaged, "throttle never engaged on real conflicts");
    }

    #[test]
    fn grain_sweep_stays_correct_and_coarser_grains_stamp_less() {
        let (rows, text) = grain_sweep(&quick());
        assert!(text.contains("Grain Sweep"));
        assert_eq!(
            rows.len(),
            4 * GRAIN_SWEEP_GRAINS.len() * GRAIN_SWEEP_SHARDS.len()
        );
        for row in &rows {
            // False sharing may add rollbacks but never corrupts state.
            assert!(
                row.checksum_ok,
                "{} at grain 2^{} x{} shards diverged",
                row.workload, row.grain_log2, row.shards
            );
        }
        let row_at = |kind: &str, grain: u32| {
            rows.iter()
                .find(|r| r.workload == kind && r.grain_log2 == grain && r.shards == 8)
                .unwrap()
        };
        // Robust per-row sanity: every batch stamps at least one range.
        for row in &rows {
            assert!(
                row.stamp_writes >= row.commits,
                "{} at grain 2^{}: fewer stamps than batches",
                row.workload,
                row.grain_log2
            );
        }
        // mandelbrot's speculative chunks only *store* (empty read sets),
        // so validation can never fail: zero rollbacks at every grain is
        // structural, not scheduling-dependent.
        for grain in GRAIN_SWEEP_GRAINS {
            assert_eq!(
                row_at("mandelbrot", grain).rolled_back,
                0,
                "mandelbrot has no cross-thread reads to conflict on"
            );
        }
        // The strict "coarser grain ⇒ fewer stamps per identical batch"
        // guarantee is asserted deterministically in mutls-membuf's
        // commit-log tests; the native sweep's batch structure depends on
        // scheduling (rollback re-execution converts absorbed batches
        // into rank-0 single-word commits), so no cross-run stamp-total
        // ordering is asserted here.
    }

    #[test]
    fn commitbench_rows_hold_invariants_at_small_thread_counts() {
        let (rows, text) = commitbench_with(&quick(), &[2, 4]);
        assert!(text.contains("Commit-Path Stress"));
        // mixes × thread counts × {locked, lock-free}.
        assert_eq!(rows.len(), COMMITBENCH_MIXES.len() * 2 * 2);
        for row in &rows {
            assert_eq!(row.schema_version, BENCH_SCHEMA_VERSION);
            assert!(
                row.ok,
                "{} x{} {}: post-run invariants violated",
                row.mix, row.threads, row.mode
            );
            assert!(row.batches > 0 && row.stamp_writes >= row.batches);
            assert!(row.commits_per_sec > 0.0);
            if row.mode == "locked" {
                assert_eq!(
                    row.cas_retries, 0,
                    "locked commit path must never CAS-retry"
                );
            }
        }
        // The overlapping mix hammers one 32-slot window from every
        // thread, so lock-free committers should observe same-slot CAS
        // retries.  A genuinely single-core host can serialize the
        // threads perfectly, so only insist on contention when the host
        // can actually run committers in parallel — and retry a few
        // times to ride out unlucky scheduling.
        let overlap_retries = |rows: &[CommitBenchRow]| -> u64 {
            rows.iter()
                .filter(|r| r.mix == "overlapping" && r.mode == "lock-free")
                .map(|r| r.cas_retries)
                .sum()
        };
        let parallel_host = std::thread::available_parallelism()
            .map(|p| p.get() > 1)
            .unwrap_or(false);
        if parallel_host {
            let mut contended = overlap_retries(&rows);
            let mut tries = 0;
            while contended == 0 && tries < 20 {
                contended = overlap_retries(&commitbench_with(&quick(), &[4]).0);
                tries += 1;
            }
            assert!(contended > 0, "overlapping lock-free stress never raced");
        }
    }

    #[test]
    fn recovery_sweep_targeted_retry_beats_cascade_on_shared_chains() {
        let (rows, text) = recovery_sweep(&quick());
        assert!(text.contains("Recovery Engine Sweep"));
        assert!(text.contains("vs the cascade-only baseline"));
        assert_eq!(
            rows.len(),
            WorkloadKind::CONFLICT_FAMILY.len()
                * RECOVERY_SWEEP_GRAINS.len()
                * RECOVERY_SWEEP_PERMILLE.len()
                * recovery_sweep_modes().len()
        );
        let injected_idx = RollbackReason::Injected.index();
        for row in &rows {
            // Correctness holds for every engine at every point, and
            // nothing is ever injected.
            assert!(
                row.checksum_ok,
                "{} {} at grain 2^{} / {:.0}% sharing diverged",
                row.workload,
                row.recovery,
                row.grain_log2,
                row.sharing * 100.0
            );
            assert_eq!(row.rollback_reasons[injected_idx], 0);
            // The cascade baseline never dooms or retries.
            if row.recovery == "cascade" {
                assert_eq!(row.targeted_dooms, 0, "{}: cascade doomed", row.workload);
                assert_eq!(row.retries, 0, "{}: cascade retried", row.workload);
            }
        }
        // The single-version engines never ring-probe.
        for row in &rows {
            if row.recovery != "mvcc" {
                assert_eq!(
                    (row.precise_passes, row.ring_overflows),
                    (0, 0),
                    "{} {}: single-version engine reported ring activity",
                    row.workload,
                    row.recovery
                );
            }
        }
        // Structural assertions only: native wasted-work magnitudes are
        // wall-clock (scheduling-sensitive, wildly stretched in debug
        // builds under parallel test load), so the quantitative
        // engine-vs-engine claims are asserted on the deterministic
        // replay below instead.  Engagement itself is also
        // scheduling-sensitive at tiny scale (a starved conflict window
        // retires before anyone observes it), so each claim gets a
        // bounded number of re-runs before the engine is declared dead.
        //
        // Targeted dooming actually engages…
        let dooms_engaged = |rows: &[RecoveryRow]| {
            rows.iter()
                .filter(|r| r.recovery != "cascade" && r.sharing >= 0.5)
                .any(|r| r.targeted_dooms > 0)
        };
        // …and value prediction repairs conflicts in place (most visibly
        // the spurious dooms and false sharing of the RMW histogram).
        let retry_engaged = |rows: &[RecoveryRow]| {
            rows.iter()
                .filter(|r| r.recovery == "targeted+retry" || r.recovery == "mvcc")
                .any(|r| r.retries > 0)
        };
        let mut doomed = dooms_engaged(&rows);
        let mut retried = retry_engaged(&rows);
        for _ in 0..2 {
            if doomed && retried {
                break;
            }
            let (again, _) = recovery_sweep(&quick());
            doomed = doomed || dooms_engaged(&again);
            retried = retried || retry_engaged(&again);
        }
        assert!(doomed, "targeted recovery never doomed anyone");
        assert!(retried, "value prediction never repaired a conflict");
        let _ = LINE_GRAIN_LOG2;
    }

    #[test]
    fn recovery_replay_strictly_reduces_wasted_work_deterministically() {
        // The deterministic half of the recovery acceptance: on the
        // simulator (virtual cycles, identical recordings) the targeted
        // engines strictly reduce wasted work vs cascade-only wherever a
        // doomed fiber is stopped with work left in its conflict window —
        // the shared histogram at >= 50% sharing is the canonical case.
        let (rows, text) = recovery_replay(&quick());
        assert!(text.contains("Recovery Engine Replay"));
        let wasted = |kind: &str, sharing: f64, recovery: &str| {
            rows.iter()
                .find(|r| {
                    r.workload == kind
                        && r.grain_log2 == WORD_GRAIN_LOG2
                        && r.sharing == sharing
                        && r.recovery == recovery
                })
                .unwrap()
                .wasted_cycles
        };
        for sharing in [0.5, 1.0] {
            let cascade = wasted("hist_shared", sharing, "cascade");
            let targeted = wasted("hist_shared", sharing, "targeted");
            let repaired = wasted("hist_shared", sharing, "targeted+retry");
            assert!(
                targeted < cascade && repaired < cascade,
                "hist_shared at {sharing}: cascade {cascade} vs targeted {targeted} / \
                 targeted+retry {repaired} cycles"
            );
            // The engines never *add* waste on the chain either.
            let chain_cascade = wasted("conflict_chain", sharing, "cascade");
            let chain_repaired = wasted("conflict_chain", sharing, "targeted+retry");
            assert!(
                chain_repaired <= chain_cascade,
                "conflict_chain at {sharing}: targeted+retry {chain_repaired} vs \
                 cascade {chain_cascade} cycles"
            );
        }
        // Determinism: a second replay is identical (the mvcc rows too —
        // zero divergence is the acceptance bar for the ring probes).
        let (again, _) = recovery_replay(&quick());
        let key = |r: &RecoverySimRow| {
            (
                r.wasted_cycles,
                r.rolled_back,
                r.targeted_dooms,
                r.precise_passes,
                r.ring_overflows,
            )
        };
        assert!(
            rows.iter().map(key).eq(again.iter().map(key)),
            "recovery replay is nondeterministic"
        );
    }

    #[test]
    fn recovery_replay_mvcc_beats_single_version_at_line_grain() {
        // The PR's acceptance claim, on the deterministic simulator: at
        // line grain and >= 50% sharing the version rings strictly
        // reduce the fibers squashed or sent through a value-predict
        // repair against the strongest single-version engine on both
        // conflict workloads, because false-sharing conflicts become
        // ring-probed precise passes instead.  Surgical *dooms* may grow
        // in exchange — a precise-passing fiber survives to its real
        // conflict, where dooming it early is exactly the engine's job —
        // so the doomed fiber's budget is asserted through wasted cycles
        // (never worse pointwise) rather than doom counts.  At word
        // grain the two engines must coincide counter-for-counter: every
        // range hit is a word hit there, so the rings never fire and
        // mvcc degenerates to targeted+retry structurally.
        let (rows, _) = recovery_replay(&quick());
        let at = |kind: &str, grain: u32, sharing: f64, recovery: &str| {
            rows.iter()
                .find(|r| {
                    r.workload == kind
                        && r.grain_log2 == grain
                        && r.sharing == sharing
                        && r.recovery == recovery
                })
                .unwrap()
        };
        let traffic = |r: &RecoverySimRow| r.rolled_back + r.retried;
        for kind in ["hist_shared", "conflict_chain"] {
            let mut single_version = 0;
            let mut mvcc = 0;
            let mut precise = 0;
            for sharing in [0.5, 1.0] {
                let legacy = at(kind, LINE_GRAIN_LOG2, sharing, "targeted+retry");
                let ringed = at(kind, LINE_GRAIN_LOG2, sharing, "mvcc");
                single_version += traffic(legacy);
                mvcc += traffic(ringed);
                precise += ringed.precise_passes;
                assert_eq!(
                    legacy.precise_passes, 0,
                    "{kind}: single-version engine ring-probed"
                );
                assert!(
                    ringed.wasted_cycles <= legacy.wasted_cycles,
                    "{kind} at {sharing}: mvcc wasted {} vs single-version {}",
                    ringed.wasted_cycles,
                    legacy.wasted_cycles
                );
                assert!(
                    ringed.committed >= legacy.committed,
                    "{kind} at {sharing}: mvcc committed fewer fibers"
                );
            }
            assert!(
                mvcc < single_version,
                "{kind} at line grain: mvcc squash+retry traffic {mvcc} \
                 vs single-version {single_version} — the rings bought nothing"
            );
            assert!(
                precise > 0,
                "{kind} at line grain: no precise passes despite shared lines"
            );
        }
        // Word grain: the engines coincide exactly.
        for kind in ["hist_shared", "conflict_chain"] {
            for sharing in [0.0, 0.5, 1.0] {
                let legacy = at(kind, WORD_GRAIN_LOG2, sharing, "targeted+retry");
                let ringed = at(kind, WORD_GRAIN_LOG2, sharing, "mvcc");
                assert_eq!(
                    ringed.precise_passes, 0,
                    "{kind}: rings fired at word grain"
                );
                assert_eq!(
                    (ringed.rolled_back, ringed.retried, ringed.wasted_cycles),
                    (legacy.rolled_back, legacy.retried, legacy.wasted_cycles),
                    "{kind} at {sharing}: mvcc diverged from targeted+retry at word grain"
                );
            }
        }
    }

    #[test]
    fn graincontrol_sweep_stays_correct_and_the_controller_engages() {
        let (rows, text) = graincontrol_sweep(&quick());
        assert!(text.contains("Adaptive Grain Control Sweep"));
        assert_eq!(
            rows.len(),
            (1 + WorkloadKind::CONFLICT_FAMILY.len() * GRAINCONTROL_SHARING_PERMILLE.len())
                * GrainMode::all().len()
                * graincontrol_recoveries().len()
        );
        for row in &rows {
            assert!(
                row.checksum_ok,
                "{} {} at {:.0}% sharing diverged",
                row.workload,
                row.mode,
                row.sharing * 100.0
            );
            // Static modes never regrain; their census is a single entry
            // at the configured grain.
            if row.mode != "adaptive" {
                assert_eq!(row.regrains, 0, "{} {} regrained", row.workload, row.mode);
            }
        }
        // The controller actually moves grains somewhere in the sweep
        // (the conflict family at full sharing splits away from page).
        assert!(
            rows.iter()
                .filter(|r| r.mode == "adaptive" && r.sharing >= 0.5)
                .any(|r| r.regrains > 0),
            "the adaptive controller never regrained a contended region"
        );
    }

    #[test]
    fn graincontrol_replay_adaptive_tracks_the_best_static_grain() {
        // The PR's acceptance claims, on the deterministic simulator
        // (virtual cycles and simulated stamp counts — exact and
        // reproducible):
        //
        // 1. mandelbrot (disjoint rows, zero conflicts): adaptive stamp
        //    traffic within 10% of the *page*-grain optimum — calm
        //    regions keep the coarse grain.
        // 2. conflict_chain at 100% sharing: adaptive wasted work within
        //    10% of the *word*-grain optimum — contended regions re-split
        //    to exactness.
        //
        // One configuration serving both ends of the spectrum is the
        // mixed-model thesis applied to detection granularity.
        let (rows, text) = graincontrol_replay(&quick());
        assert!(text.contains("Adaptive Grain Control Replay"));
        // The historical claims are asserted on the single-version rows
        // (the regime the committed BENCH_PR5.json trajectory pinned).
        let row = |kind: &str, sharing: f64, mode: &str| {
            rows.iter()
                .find(|r| {
                    r.workload == kind
                        && r.sharing == sharing
                        && r.mode == mode
                        && r.recovery == "targeted+retry"
                })
                .unwrap()
        };
        let mandel_adaptive = row("mandelbrot", 0.0, "adaptive");
        let mandel_page = row("mandelbrot", 0.0, "page");
        assert!(
            mandel_adaptive.stamp_writes as f64 <= mandel_page.stamp_writes as f64 * 1.1,
            "mandelbrot: adaptive stamps {} vs page {}",
            mandel_adaptive.stamp_writes,
            mandel_page.stamp_writes
        );
        assert!(
            mandel_adaptive.stamp_writes * 2 < row("mandelbrot", 0.0, "word").stamp_writes,
            "adaptive must stay far below word-grain stamp traffic"
        );

        let chain_adaptive = row("conflict_chain", 1.0, "adaptive");
        let chain_word = row("conflict_chain", 1.0, "word");
        assert!(
            chain_adaptive.wasted_cycles as f64 <= chain_word.wasted_cycles as f64 * 1.1,
            "conflict_chain: adaptive wasted {} vs word {}",
            chain_adaptive.wasted_cycles,
            chain_word.wasted_cycles
        );
        assert!(
            chain_adaptive.regrains > 0
                && chain_adaptive
                    .region_grains
                    .iter()
                    .all(|&(grain, _)| grain == WORD_GRAIN_LOG2),
            "the contended chain region must converge to word grain, got {:?}",
            chain_adaptive.region_grains
        );

        // Bonus coverage: on the shared histogram (where the coarse
        // grain genuinely costs wasted work in replay) adaptive must beat
        // both coarse statics — it splits mid-run.
        let hist_adaptive = row("hist_shared", 1.0, "adaptive");
        for static_mode in ["line", "page"] {
            let static_row = row("hist_shared", 1.0, static_mode);
            if static_row.wasted_cycles > row("hist_shared", 1.0, "word").wasted_cycles {
                assert!(
                    hist_adaptive.wasted_cycles < static_row.wasted_cycles,
                    "hist_shared: adaptive wasted {} vs {} {}",
                    hist_adaptive.wasted_cycles,
                    static_mode,
                    static_row.wasted_cycles
                );
            }
        }

        // The mvcc dimension never hurts: at every (workload, mode,
        // sharing) point the ringed run's recovery traffic stays at or
        // below the single-version run's, and the single-version rows
        // never ring-probe.
        for legacy in rows.iter().filter(|r| r.recovery == "targeted+retry") {
            assert_eq!(legacy.precise_passes, 0);
            let ringed = rows
                .iter()
                .find(|r| {
                    r.workload == legacy.workload
                        && r.mode == legacy.mode
                        && r.sharing == legacy.sharing
                        && r.recovery == "mvcc"
                })
                .unwrap();
            assert!(
                ringed.rolled_back + ringed.retried <= legacy.rolled_back + legacy.retried,
                "{} {} at {:.0}%: mvcc recovery traffic grew ({} vs {})",
                legacy.workload,
                legacy.mode,
                legacy.sharing * 100.0,
                ringed.rolled_back + ringed.retried,
                legacy.rolled_back + legacy.retried
            );
        }

        // Determinism: the replay reproduces itself exactly.
        let (again, _) = graincontrol_replay(&quick());
        let key = |r: &GrainControlSimRow| {
            (
                r.stamp_writes,
                r.wasted_cycles,
                r.regrains,
                r.precise_passes,
            )
        };
        assert!(
            rows.iter().map(key).eq(again.iter().map(key)),
            "graincontrol replay is nondeterministic"
        );
    }

    #[test]
    fn overflow_sweep_exercises_overflow_rollbacks() {
        let (rows, text) = overflow_sweep(&quick());
        assert!(text.contains("Buffer-Overflow Pressure"));
        let overflow_idx = RollbackReason::Overflow.index();
        for row in &rows {
            assert!(row.checksum_ok, "{} {} diverged", row.workload, row.policy);
        }
        assert!(
            rows.iter()
                .filter(|r| r.policy == "static")
                .any(|r| r.rollback_reasons[overflow_idx] > 0),
            "tiny buffers never overflowed"
        );
    }

    /// Golden render of the per-site profile table: exact output, so any
    /// accidental column/format drift fails loudly.
    #[test]
    fn site_table_renders_golden() {
        use mutls_runtime::SiteProfile;
        let report = RunReport {
            sites: vec![
                SiteProfile {
                    site: mutls_workloads::matmult::SITE_QUADRANT,
                    forks: 12,
                    throttled: 1,
                    commits: 10,
                    rollbacks: 2,
                    overflows: 1,
                    conflicts: 1,
                    false_sharing: 0,
                    retries: 3,
                    injected: 0,
                    committed_work: 0,
                    wasted_work: 420,
                    stall: 0,
                    rollback_rate: 0.25,
                    grain_log2: WORD_GRAIN_LOG2,
                },
                SiteProfile {
                    site: 999,
                    forks: 4,
                    commits: 4,
                    ..SiteProfile::default()
                },
            ],
            ..RunReport::default()
        };
        let text = format_site_table("Per-site profile — golden", &report);
        let expected = "\
# Per-site profile — golden
site              forks  throttled  commits  retries  rollbacks  conflicts  false-share  overflows  injected  rollback rate  wasted work  grain  cas-retries  ring-ovfl
-------------------------------------------------------------------------------------------------------------------------------------------------------------------------\n\
matmult/quadrant  12     1          10       3        2          1          0            1          0         0.25           420          word   -            -        \n\
site 999          4      0          4        0        0          0          0            0          0         0.00           0            -      -            -        \n\
commit-log        -      -          -        -        -          -          -            -          -         -              -            -      0            0        \n";
        assert_eq!(text, expected);
    }

    /// Golden render of the per-phase latency table.
    #[test]
    fn latency_table_renders_golden() {
        let recorder = mutls_trace::LatencyRecorder::new();
        recorder.record(LatencyPhase::ForkToCommit, 1000);
        recorder.record(LatencyPhase::ForkToCommit, 5000);
        recorder.record(LatencyPhase::Validation, 100);
        let text = format_latency_table("Phase latencies — golden (ns)", &recorder.report());
        let expected = "\
# Phase latencies — golden (ns)
phase             samples  p50  p99   p999
--------------------------------------------
fork-to-commit    2        512  4096  4096
validation        1        64   64    64  \n\
commit-lock-wait  0        0    0     0   \n\
commit-cas-retry  0        0    0     0   \n\
repair-retry      0        0    0     0   \n\
repair-doomset    0        0    0     0   \n\
repair-cascade    0        0    0     0   \n";
        assert_eq!(text, expected);
    }

    /// Golden render of the grain-census cell and grain labels used by the
    /// grain/graincontrol tables.
    #[test]
    fn grain_census_renders_golden() {
        assert_eq!(grain_label(WORD_GRAIN_LOG2), "word");
        assert_eq!(grain_label(LINE_GRAIN_LOG2), "line");
        assert_eq!(grain_label(PAGE_GRAIN_LOG2), "page");
        assert_eq!(grain_label(8), "2^8B");
        assert_eq!(census_label(&[]), "-");
        assert_eq!(
            census_label(&[(WORD_GRAIN_LOG2, 3), (PAGE_GRAIN_LOG2, 5)]),
            "word:3 page:5"
        );
        assert_eq!(census_label(&[(8, 1)]), "2^8B:1");
    }

    #[test]
    fn trace_sink_collects_and_sorts_runs() {
        let sink = TraceSink::new();
        assert!(sink.is_empty());
        let ev = TraceEvent {
            ts: 10,
            rank: 1,
            site: 2,
            epoch: 3,
            kind: mutls_trace::EventKind::Commit,
        };
        sink.record("b/run", vec![ev], 0);
        sink.record("a/run", vec![], 4);
        assert_eq!(sink.len(), 2);
        let json = sink.chrome_json();
        // Deterministic export: sorted by label regardless of insertion
        // order, and structurally valid Chrome trace-event JSON.
        assert!(json.find("a/run").unwrap() < json.find("b/run").unwrap());
        let value = serde_json::parse(&json).expect("chrome trace JSON parses");
        let obj = value.as_object().expect("top level is an object");
        assert!(obj.iter().any(|(k, _)| k == "traceEvents"));
    }

    #[test]
    fn trace_scenario_captures_the_full_lifecycle() {
        let sink = TraceSink::new();
        let config = quick().with_trace(Arc::clone(&sink));
        let (rows, text) = trace_scenario(&config);
        assert!(text.contains("Flight Recorder Census"));
        assert_eq!(rows.len(), 2, "one native + one replay scenario row");
        for row in &rows {
            assert_eq!(row.schema_version, BENCH_SCHEMA_VERSION);
            assert!(row.events > 0, "{}: no events traced", row.scenario);
            assert!(row.forks > 0, "{}: no forks traced", row.scenario);
            assert!(row.commits > 0, "{}: no commits traced", row.scenario);
        }
        // The 100%-sharing chain must surface real conflict lifecycle
        // events, not just forks and commits.
        assert!(
            rows.iter().any(|r| r.rollbacks + r.dooms > 0),
            "full-sharing chain produced no rollback/doom events"
        );
        assert_eq!(sink.len(), 2, "both runs recorded to the sink");
        assert!(serde_json::parse(&sink.chrome_json()).is_ok());
    }
}
