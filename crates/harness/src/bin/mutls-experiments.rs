//! `mutls-experiments` — regenerate the MUTLS paper's tables and figures.
//!
//! ```text
//! mutls-experiments <fig3|...|fig11|table2|adaptive|conflict|overflow|grain|all> \
//!     [--scale tiny|scaled|paper] [--cpus 1,2,4,...]
//! ```

use std::process::ExitCode;

use mutls_harness::{
    adaptive_sweep, conflict_sweep, figure10, figure11, figure3, figure4, figure5, figure6,
    figure7, figure8, figure9, grain_sweep, overflow_sweep, table2, ExperimentConfig,
};
use mutls_workloads::Scale;

fn parse_args() -> Result<(Vec<String>, ExperimentConfig), String> {
    let mut config = ExperimentConfig::default();
    let mut selected = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                config.scale = match value.as_str() {
                    "tiny" => Scale::Tiny,
                    "scaled" => Scale::Scaled,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale: {other}")),
                };
            }
            "--cpus" => {
                let value = args.next().ok_or("--cpus needs a value")?;
                config.cpus = value
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                config.seed = value.parse().map_err(|_| "bad seed".to_string())?;
            }
            other if !other.starts_with("--") => selected.push(other.to_string()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if selected.is_empty() {
        selected.push("all".to_string());
    }
    Ok((selected, config))
}

fn run_one(name: &str, config: &ExperimentConfig) -> Result<(), String> {
    match name {
        "table2" => println!("{}", table2(config).1),
        "fig3" => println!("{}", figure3(config).1),
        "fig4" => println!("{}", figure4(config).1),
        "fig5" => println!("{}", figure5(config).1),
        "fig6" => println!("{}", figure6(config).1),
        "fig7" => println!("{}", figure7(config).1),
        "fig8" => println!("{}", figure8(config).1),
        "fig9" => println!("{}", figure9(config).1),
        "fig10" => println!("{}", figure10(config).1),
        "fig11" => println!("{}", figure11(config).1),
        "adaptive" => println!("{}", adaptive_sweep(config).1),
        "conflict" => println!("{}", conflict_sweep(config).1),
        "overflow" => println!("{}", overflow_sweep(config).1),
        "grain" => println!("{}", grain_sweep(config).1),
        "all" => {
            for exp in [
                "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                "adaptive", "conflict", "overflow", "grain",
            ] {
                run_one(exp, config)?;
            }
        }
        other => return Err(format!("unknown experiment: {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let (selected, config) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: mutls-experiments <fig3..fig11|table2|adaptive|conflict|overflow|grain|all> [--scale tiny|scaled|paper] [--cpus 1,2,4,...] [--seed N]"
            );
            return ExitCode::FAILURE;
        }
    };
    for name in &selected {
        if let Err(e) = run_one(name, &config) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
