//! `mutls-experiments` — regenerate the MUTLS paper's tables and figures.
//!
//! ```text
//! mutls-experiments <fig3|...|fig11|table2|adaptive|conflict|overflow|grain|recovery|graincontrol|all> \
//!     [--scale tiny|scaled|paper] [--cpus 1,2,4,...] [--json <path>]
//! ```
//!
//! With `--json <path>` the native sweeps (recovery, grain, conflict,
//! overflow, adaptive) additionally write their per-point rows — wasted
//! work, commit throughput, retry/doom counts — as one JSON document, so
//! the perf trajectory can be tracked across PRs (e.g. `BENCH_PR4.json`).

use std::process::ExitCode;

use serde::Serialize;

use mutls_harness::{
    adaptive_sweep, conflict_sweep, figure10, figure11, figure3, figure4, figure5, figure6,
    figure7, figure8, figure9, grain_sweep, graincontrol_replay, graincontrol_sweep,
    overflow_sweep, recovery_replay, recovery_sweep, table2, ExperimentConfig,
};
use mutls_workloads::Scale;

/// Collects the machine-readable rows of the experiments that produce
/// them, keyed by experiment name (insertion order preserved).
#[derive(Default)]
struct JsonSink {
    entries: Vec<(String, String)>,
}

impl JsonSink {
    fn push<T: Serialize>(&mut self, name: &str, rows: &[T]) {
        let mut out = String::new();
        rows.serialize_json(&mut out);
        // An experiment selected twice (e.g. `all recovery`) must not
        // emit duplicate JSON keys; the latest rows win.
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| n == name) {
            entry.1 = out;
        } else {
            self.entries.push((name.to_string(), out));
        }
    }

    fn render(&self) -> String {
        let mut out = String::from("{\"schema\":\"mutls-bench-v1\",\"experiments\":{");
        for (i, (name, rows)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(rows);
        }
        out.push_str("}}\n");
        out
    }
}

fn parse_args() -> Result<(Vec<String>, ExperimentConfig, Option<String>), String> {
    let mut config = ExperimentConfig::default();
    let mut selected = Vec::new();
    let mut json_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                config.scale = match value.as_str() {
                    "tiny" => Scale::Tiny,
                    "scaled" => Scale::Scaled,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale: {other}")),
                };
            }
            "--cpus" => {
                let value = args.next().ok_or("--cpus needs a value")?;
                config.cpus = value
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                config.seed = value.parse().map_err(|_| "bad seed".to_string())?;
            }
            "--json" => {
                json_path = Some(args.next().ok_or("--json needs a path")?);
            }
            other if !other.starts_with("--") => selected.push(other.to_string()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if selected.is_empty() {
        selected.push("all".to_string());
    }
    Ok((selected, config, json_path))
}

fn run_one(name: &str, config: &ExperimentConfig, sink: &mut JsonSink) -> Result<(), String> {
    match name {
        "table2" => println!("{}", table2(config).1),
        "fig3" => println!("{}", figure3(config).1),
        "fig4" => println!("{}", figure4(config).1),
        "fig5" => println!("{}", figure5(config).1),
        "fig6" => println!("{}", figure6(config).1),
        "fig7" => println!("{}", figure7(config).1),
        "fig8" => println!("{}", figure8(config).1),
        "fig9" => println!("{}", figure9(config).1),
        "fig10" => println!("{}", figure10(config).1),
        "fig11" => println!("{}", figure11(config).1),
        "adaptive" => {
            let (rows, text) = adaptive_sweep(config);
            sink.push("adaptive", &rows);
            println!("{text}");
        }
        "conflict" => {
            let (rows, text) = conflict_sweep(config);
            sink.push("conflict", &rows);
            println!("{text}");
        }
        "overflow" => {
            let (rows, text) = overflow_sweep(config);
            sink.push("overflow", &rows);
            println!("{text}");
        }
        "grain" => {
            let (rows, text) = grain_sweep(config);
            sink.push("grain", &rows);
            println!("{text}");
        }
        "recovery" => {
            let (rows, text) = recovery_sweep(config);
            sink.push("recovery", &rows);
            println!("{text}");
            let (sim_rows, sim_text) = recovery_replay(config);
            sink.push("recovery_replay", &sim_rows);
            println!("{sim_text}");
        }
        "graincontrol" => {
            let (rows, text) = graincontrol_sweep(config);
            sink.push("graincontrol", &rows);
            println!("{text}");
            let (sim_rows, sim_text) = graincontrol_replay(config);
            sink.push("graincontrol_replay", &sim_rows);
            println!("{sim_text}");
        }
        "all" => {
            for exp in [
                "table2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "adaptive",
                "conflict",
                "overflow",
                "grain",
                "recovery",
                "graincontrol",
            ] {
                run_one(exp, config, sink)?;
            }
        }
        other => return Err(format!("unknown experiment: {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let (selected, config, json_path) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: mutls-experiments <fig3..fig11|table2|adaptive|conflict|overflow|grain|recovery|graincontrol|all> [--scale tiny|scaled|paper] [--cpus 1,2,4,...] [--seed N] [--json <path>]"
            );
            return ExitCode::FAILURE;
        }
    };
    let mut sink = JsonSink::default();
    for name in &selected {
        if let Err(e) = run_one(name, &config, &mut sink) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, sink.render()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote machine-readable rows to {path}");
    }
    ExitCode::SUCCESS
}
