//! `mutls-experiments` — regenerate the MUTLS paper's tables and figures.
//!
//! ```text
//! mutls-experiments <fig3|...|fig11|table2|adaptive|conflict|overflow|grain|recovery|graincontrol|trace|commitbench|parsim|metrics|all> \
//!     [--scale tiny|scaled|paper] [--cpus 1,2,4,...] [--sim-threads N] \
//!     [--json <path>] [--trace <path>] [--metrics <path>]
//! ```
//!
//! With `--json <path>` the native sweeps (recovery, grain, conflict,
//! overflow, adaptive, trace) additionally write their per-point rows —
//! wasted work, commit throughput, retry/doom counts, latency quantiles —
//! as one JSON document, so the perf trajectory can be tracked across PRs
//! (e.g. `BENCH_PR4.json`).  With `--trace <path>` the sweeps enable the
//! speculation flight recorder and the drained lifecycle events of every
//! run are exported as one Chrome trace-event document (open it at
//! <https://ui.perfetto.dev>).  With `--metrics <path>` the sweeps enable
//! the live metrics plane and every run's final snapshot (plus its
//! sampled time series for `.json` paths) is exported — Prometheus text
//! exposition by default, JSON time series when the path ends in
//! `.json`.

use std::process::ExitCode;

use serde::Serialize;

use mutls_harness::{
    adaptive_sweep, commitbench, conflict_sweep, figure10, figure11, figure3, figure4, figure5,
    figure6, figure7, figure8, figure9, grain_sweep, graincontrol_replay, graincontrol_sweep,
    metrics_scenario, overflow_sweep, parsim, recovery_replay, recovery_sweep, table2,
    trace_scenario, ExperimentConfig, MetricsSink, TraceSink, BENCH_SCHEMA_VERSION,
};
use mutls_workloads::Scale;

/// Collects the machine-readable rows of the experiments that produce
/// them, keyed by experiment name (insertion order preserved).
#[derive(Default)]
struct JsonSink {
    entries: Vec<(String, String)>,
}

impl JsonSink {
    fn push<T: Serialize>(&mut self, name: &str, rows: &[T]) {
        let mut out = String::new();
        rows.serialize_json(&mut out);
        // An experiment selected twice (e.g. `all recovery`) must not
        // emit duplicate JSON keys; the latest rows win.
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| n == name) {
            entry.1 = out;
        } else {
            self.entries.push((name.to_string(), out));
        }
    }

    fn render(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"mutls-bench-v{BENCH_SCHEMA_VERSION}\",\"schema_version\":{BENCH_SCHEMA_VERSION},\"experiments\":{{"
        );
        for (i, (name, rows)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(rows);
        }
        out.push_str("}}\n");
        out
    }
}

/// Parsed command line: experiments to run, shared config, `--json` path,
/// `--trace` path, `--metrics` path.
type ParsedArgs = (
    Vec<String>,
    ExperimentConfig,
    Option<String>,
    Option<String>,
    Option<String>,
);

/// Environment variable overriding the default simulator thread count
/// (the `--sim-threads` flag beats it).
const SIM_THREADS_ENV: &str = "SIM_THREADS";

fn parse_args() -> Result<ParsedArgs, String> {
    let mut config = ExperimentConfig::default();
    if let Some(threads) = std::env::var(SIM_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        config.sim_threads = threads.max(1);
    }
    let mut selected = Vec::new();
    let mut json_path = None;
    let mut trace_path = None;
    let mut metrics_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().ok_or("--scale needs a value")?;
                config.scale = match value.as_str() {
                    "tiny" => Scale::Tiny,
                    "scaled" => Scale::Scaled,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale: {other}")),
                };
            }
            "--cpus" => {
                let value = args.next().ok_or("--cpus needs a value")?;
                config.cpus = value
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                config.seed = value.parse().map_err(|_| "bad seed".to_string())?;
            }
            "--sim-threads" => {
                let value = args.next().ok_or("--sim-threads needs a value")?;
                let threads: usize = value
                    .parse()
                    .map_err(|_| "bad --sim-threads value".to_string())?;
                config.sim_threads = threads.max(1);
            }
            "--json" => {
                json_path = Some(args.next().ok_or("--json needs a path")?);
            }
            "--trace" => {
                trace_path = Some(args.next().ok_or("--trace needs a path")?);
            }
            "--metrics" => {
                metrics_path = Some(args.next().ok_or("--metrics needs a path")?);
            }
            other if !other.starts_with("--") => selected.push(other.to_string()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok((selected, config, json_path, trace_path, metrics_path))
}

fn run_one(name: &str, config: &ExperimentConfig, sink: &mut JsonSink) -> Result<(), String> {
    match name {
        "table2" => println!("{}", table2(config).1),
        "fig3" => println!("{}", figure3(config).1),
        "fig4" => println!("{}", figure4(config).1),
        "fig5" => println!("{}", figure5(config).1),
        "fig6" => println!("{}", figure6(config).1),
        "fig7" => println!("{}", figure7(config).1),
        "fig8" => println!("{}", figure8(config).1),
        "fig9" => println!("{}", figure9(config).1),
        "fig10" => println!("{}", figure10(config).1),
        "fig11" => println!("{}", figure11(config).1),
        "adaptive" => {
            let (rows, text) = adaptive_sweep(config);
            sink.push("adaptive", &rows);
            println!("{text}");
        }
        "conflict" => {
            let (rows, text) = conflict_sweep(config);
            sink.push("conflict", &rows);
            println!("{text}");
        }
        "overflow" => {
            let (rows, text) = overflow_sweep(config);
            sink.push("overflow", &rows);
            println!("{text}");
        }
        "grain" => {
            let (rows, text) = grain_sweep(config);
            sink.push("grain", &rows);
            println!("{text}");
        }
        "recovery" => {
            let (rows, text) = recovery_sweep(config);
            sink.push("recovery", &rows);
            println!("{text}");
            let (sim_rows, sim_text) = recovery_replay(config);
            sink.push("recovery_replay", &sim_rows);
            println!("{sim_text}");
        }
        "graincontrol" => {
            let (rows, text) = graincontrol_sweep(config);
            sink.push("graincontrol", &rows);
            println!("{text}");
            let (sim_rows, sim_text) = graincontrol_replay(config);
            sink.push("graincontrol_replay", &sim_rows);
            println!("{sim_text}");
        }
        "trace" => {
            let (rows, text) = trace_scenario(config);
            sink.push("trace", &rows);
            println!("{text}");
        }
        "commitbench" => {
            let (rows, text) = commitbench(config);
            sink.push("commitbench", &rows);
            println!("{text}");
        }
        "parsim" => {
            let (rows, text) = parsim(config);
            sink.push("parsim", &rows);
            println!("{text}");
        }
        "metrics" => {
            let (rows, text) = metrics_scenario(config);
            sink.push("metrics", &rows);
            println!("{text}");
        }
        "all" => {
            for exp in [
                "table2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "adaptive",
                "conflict",
                "overflow",
                "grain",
                "recovery",
                "graincontrol",
                "trace",
                "commitbench",
                "parsim",
                "metrics",
            ] {
                run_one(exp, config, sink)?;
            }
        }
        other => return Err(format!("unknown experiment: {other}")),
    }
    Ok(())
}

fn usage() {
    eprintln!(
        "usage: mutls-experiments <experiment> [<experiment> ...] [options]\n\
         \n\
         experiments:\n\
         \x20 table2          benchmark suite with measured memory densities\n\
         \x20 fig3..fig11     the paper's evaluation figures (simulator)\n\
         \x20 adaptive        governor policy sweep (simulator)\n\
         \x20 conflict        native conflict sweep, real dependence validation\n\
         \x20 overflow        native buffer-overflow pressure sweep\n\
         \x20 grain           native commit-log grain x shard sweep\n\
         \x20 recovery        native recovery-engine sweep + deterministic replay\n\
         \x20 graincontrol    adaptive grain-control sweep + deterministic replay\n\
         \x20 trace           flight-recorder scenario: event census + latency tables\n\
         \x20 commitbench     commit-path stress: locked vs lock-free scaling\n\
         \x20                 (cap the thread sweep with COMMITBENCH_THREADS=N)\n\
         \x20 parsim          Time Warp parallel-simulation scaling + byte-identity\n\
         \x20                 (cap the thread sweep with PARSIM_THREADS=N)\n\
         \x20 metrics         live-metrics scenario: instrumented native run + replay,\n\
         \x20                 headline counters and derived gauges\n\
         \x20 all             everything above\n\
         \n\
         options:\n\
         \x20 --scale tiny|scaled|paper   problem-size preset (default scaled)\n\
         \x20 --cpus 1,2,4,...            CPU counts for the sweep figures\n\
         \x20 --seed N                    RNG seed (rollback injection)\n\
         \x20 --sim-threads N             simulator threads per simulation (default 1 =\n\
         \x20                             sequential; SIM_THREADS env is the fallback;\n\
         \x20                             results are byte-identical at any value)\n\
         \x20 --json <path>               write machine-readable rows (schema v{BENCH_SCHEMA_VERSION})\n\
         \x20 --trace <path>              enable the flight recorder and export\n\
         \x20                             Chrome trace-event JSON (Perfetto)\n\
         \x20 --metrics <path>            enable the live metrics plane and export every\n\
         \x20                             run's final snapshot — Prometheus text, or the\n\
         \x20                             full JSON time series if the path ends in .json"
    );
}

fn main() -> ExitCode {
    let (selected, mut config, json_path, trace_path, metrics_path) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    if selected.is_empty() {
        eprintln!("error: no experiment selected");
        usage();
        return ExitCode::FAILURE;
    }
    let trace_sink = trace_path.as_ref().map(|_| TraceSink::new());
    if let Some(sink) = &trace_sink {
        config = config.with_trace(sink.clone());
    }
    let metrics_sink = metrics_path.as_ref().map(|_| MetricsSink::new());
    if let Some(sink) = &metrics_sink {
        config = config.with_metrics(sink.clone());
    }
    let mut sink = JsonSink::default();
    for name in &selected {
        if let Err(e) = run_one(name, &config, &mut sink) {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, sink.render()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote machine-readable rows to {path}");
    }
    if let (Some(path), Some(trace)) = (trace_path, trace_sink) {
        if let Err(e) = std::fs::write(&path, trace.chrome_json()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} traced runs to {path} (open at https://ui.perfetto.dev)",
            trace.len()
        );
    }
    if let (Some(path), Some(metrics)) = (metrics_path, metrics_sink) {
        let (body, format) = if path.ends_with(".json") {
            (metrics.json(), "JSON time series")
        } else {
            (metrics.prometheus_text(), "Prometheus text")
        };
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote metrics of {} instrumented runs to {path} ({format})",
            metrics.len()
        );
    }
    ExitCode::SUCCESS
}
