//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

use mutls_membuf::RollbackReason;
use mutls_trace::LatencyReport;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Render as an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

/// Format a rolled-back thread count together with its per-reason
/// breakdown (`total (C…/O…/I…/X…)` = conflict / overflow / injected /
/// other), so tables surface *why* speculation failed instead of a single
/// opaque rollback count.
pub fn format_rollback_cell(total: u64, reasons: &[u64; RollbackReason::COUNT]) -> String {
    format!(
        "{total} (C{}/O{}/I{}/X{})",
        reasons[RollbackReason::Conflict.index()],
        reasons[RollbackReason::Overflow.index()],
        reasons[RollbackReason::Injected.index()],
        reasons[RollbackReason::Other.index()],
    )
}

/// Render a speedup/efficiency sweep as a table: one row per CPU count and
/// one column per workload.
pub fn format_sweep_table(title: &str, cpus: &[usize], series: &[(String, Vec<f64>)]) -> String {
    let mut headers = vec!["CPUs".to_string()];
    headers.extend(series.iter().map(|(name, _)| name.clone()));
    let mut table = Table {
        title: title.to_string(),
        headers,
        rows: Vec::new(),
    };
    for (i, &n) in cpus.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for (_, values) in series {
            row.push(format!("{:.2}", values.get(i).copied().unwrap_or(f64::NAN)));
        }
        table.push_row(row);
    }
    table.render()
}

/// Render a per-phase breakdown (one row per CPU count, one column per
/// phase, values are percentages).
pub fn format_breakdown_table(
    title: &str,
    cpus: &[usize],
    phases: &[&str],
    rows: &[Vec<f64>],
) -> String {
    let mut headers = vec!["CPUs".to_string()];
    headers.extend(phases.iter().map(|p| p.to_string()));
    let mut table = Table {
        title: title.to_string(),
        headers,
        rows: Vec::new(),
    };
    for (i, &n) in cpus.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for value in &rows[i] {
            row.push(format!("{:5.1}%", value * 100.0));
        }
        table.push_row(row);
    }
    table.render()
}

/// Render a [`LatencyReport`] as a table: one row per lifecycle phase
/// with the sample count and log2-bucket p50/p99/p999 quantile floors.
/// Values are in the run's native unit — nanoseconds for the native
/// runtime, virtual cycles for the simulator — so the caller should say
/// which in `title`.
pub fn format_latency_table(title: &str, report: &LatencyReport) -> String {
    let mut table = Table::new(title, &["phase", "samples", "p50", "p99", "p999"]);
    for row in &report.phases {
        table.push_row(vec![
            row.phase.clone(),
            row.count.to_string(),
            row.p50.to_string(),
            row.p99.to_string(),
            row.p999.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["fft".into(), "3.72".into()]);
        t.push_row(vec!["matmult".into(), "2.01".into()]);
        let text = t.render();
        assert!(text.contains("# demo"));
        assert!(text.contains("fft"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn sweep_table_has_one_row_per_cpu() {
        let text = format_sweep_table(
            "speedup",
            &[1, 2, 4],
            &[("fft".to_string(), vec![1.0, 1.8, 3.1])],
        );
        assert_eq!(text.lines().count(), 3 + 3);
        assert!(text.contains("3.10"));
    }

    #[test]
    fn rollback_cell_orders_reasons_stably() {
        let mut reasons = [0u64; RollbackReason::COUNT];
        reasons[RollbackReason::Conflict.index()] = 3;
        reasons[RollbackReason::Injected.index()] = 2;
        assert_eq!(format_rollback_cell(5, &reasons), "5 (C3/O0/I2/X0)");
    }

    #[test]
    fn breakdown_table_formats_percentages() {
        let text =
            format_breakdown_table("breakdown", &[2], &["work", "idle"], &[vec![0.75, 0.25]]);
        assert!(text.contains("75.0%"));
        assert!(text.contains("25.0%"));
    }
}
