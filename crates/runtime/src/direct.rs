//! [`DirectContext`] — a no-speculation implementation of [`TlsContext`].
//!
//! Every fork is denied and every task closure is executed inline at its
//! join point; loads and stores go straight to the shared memory arena.
//! This is the *sequential baseline* of every experiment: running the same
//! speculative source through a `DirectContext` performs exactly the same
//! arithmetic in exactly the same order as the original sequential
//! program, so its results are the reference the speculative versions are
//! validated against, and its runtime is the `T_s` of every speedup.

use std::sync::Arc;

use mutls_membuf::{Addr, GlobalMemory, MainMemory};

use crate::fork_model::ForkModel;
use crate::task::{JoinOutcome, Rank, SpecAbort, SpecResult, TaskRef, TlsContext};

/// Handle type of [`DirectContext`]: simply carries the continuation for
/// inline execution at the join point.
pub struct DirectHandle {
    task: TaskRef<DirectContext>,
}

/// Sequential, non-speculative execution context.
pub struct DirectContext {
    memory: Arc<GlobalMemory>,
    work_units: u64,
    loads: u64,
    stores: u64,
}

impl DirectContext {
    /// Create a direct context over `memory`.
    pub fn new(memory: Arc<GlobalMemory>) -> Self {
        DirectContext {
            memory,
            work_units: 0,
            loads: 0,
            stores: 0,
        }
    }

    /// The shared memory arena.
    pub fn memory(&self) -> &Arc<GlobalMemory> {
        &self.memory
    }

    /// Total abstract work units charged so far.
    pub fn work_units(&self) -> u64 {
        self.work_units
    }

    /// Total loads and stores issued so far.
    pub fn memory_ops(&self) -> u64 {
        self.loads + self.stores
    }
}

impl TlsContext for DirectContext {
    type Handle = DirectHandle;

    fn work(&mut self, units: u64) -> SpecResult<()> {
        self.work_units += units;
        Ok(())
    }

    fn load_word(&mut self, addr: Addr) -> SpecResult<u64> {
        self.loads += 1;
        Ok(self.memory.read_word(addr))
    }

    fn store_word(&mut self, addr: Addr, value: u64) -> SpecResult<()> {
        self.stores += 1;
        self.memory.write_word(addr, value);
        Ok(())
    }

    fn fork(&mut self, _point: u32, task: TaskRef<Self>) -> SpecResult<DirectHandle> {
        Ok(DirectHandle { task })
    }

    fn fork_with_model(
        &mut self,
        point: u32,
        _model: ForkModel,
        task: TaskRef<Self>,
    ) -> SpecResult<DirectHandle> {
        self.fork(point, task)
    }

    fn join(&mut self, handle: DirectHandle) -> SpecResult<JoinOutcome> {
        match (handle.task)(self) {
            Ok(()) | Err(SpecAbort::BarrierReached) => Ok(JoinOutcome::NotSpeculated),
            Err(other) => Err(other),
        }
    }

    fn barrier(&mut self) -> SpecResult<()> {
        Err(SpecAbort::BarrierReached)
    }

    fn check_point(&mut self) -> SpecResult<()> {
        Ok(())
    }

    fn is_speculative(&self) -> bool {
        false
    }

    fn rank(&self) -> Rank {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::task;

    #[test]
    fn direct_context_runs_everything_inline() {
        let memory = Arc::new(GlobalMemory::new(1 << 12));
        let cells = memory.alloc::<i64>(2);
        let mut ctx = DirectContext::new(Arc::clone(&memory));
        let cont = task(move |ctx: &mut DirectContext| {
            ctx.store(&cells, 1, 2)?;
            ctx.barrier()
        });
        let h = ctx.fork(0, cont).unwrap();
        ctx.store(&cells, 0, 1).unwrap();
        ctx.work(10).unwrap();
        assert_eq!(ctx.join(h).unwrap(), JoinOutcome::NotSpeculated);
        assert_eq!(memory.get(&cells, 0), 1);
        assert_eq!(memory.get(&cells, 1), 2);
        assert_eq!(ctx.work_units(), 10);
        assert_eq!(ctx.memory_ops(), 2);
        assert!(!ctx.is_speculative());
        assert_eq!(ctx.rank(), 0);
    }
}
