//! [`SpecContext`] — the execution context handed to speculative and
//! non-speculative code in the native runtime.
//!
//! It plays the role of the instrumented code produced by the speculator
//! pass plus the per-thread runtime state: loads and stores are redirected
//! through the thread's [`GlobalBuffer`] when
//! speculative, forks acquire a virtual CPU and dispatch the continuation,
//! and joins perform the synchronize/validate/commit-or-rollback protocol
//! of paper §IV-E/F.

use std::sync::Arc;
use std::time::Instant;

use mutls_membuf::{
    Addr, BufferError, GPtr, GlobalBuffer, GlobalMemory, LocalBuffer, MainMemory, RegisterValue,
    RollbackReason, SpecFailure, WORD_BYTES,
};

use mutls_adaptive::{ForkDecision, SiteOutcome};
use mutls_metrics::CounterId;
use mutls_trace::{DenyPolicy, DoomSource, EventKind, LatencyPhase};

use crate::config::RecoveryMode;
use crate::fork_model::ForkModel;
use crate::manager::{SpecOutcome, SpecRequest, ThreadBuffers, ThreadManager};
use crate::stats::{Phase, ThreadStats};
use crate::task::{
    failure, JoinOutcome, Rank, SpecAbort, SpecResult, TaskRef, TaskStatus, TlsContext, Word,
};

/// How often speculative memory operations poll the abort flag.
const ABORT_POLL_INTERVAL: u32 = 256;

/// Handle returned by a fork point and consumed by the matching join point.
pub struct SpecHandle {
    point: u32,
    task: TaskRef<SpecContext>,
    child: Option<Rank>,
    /// Forking model the child was launched under (governor feedback).
    model: ForkModel,
    /// True when the governor suppressed speculation at this fork point.
    throttled: bool,
}

impl SpecHandle {
    /// Fork/join point id this handle belongs to.
    pub fn point(&self) -> u32 {
        self.point
    }

    /// True if a speculative thread was actually launched.
    pub fn speculated(&self) -> bool {
        self.child.is_some()
    }

    /// True if the adaptive governor suppressed speculation here.
    pub fn throttled(&self) -> bool {
        self.throttled
    }
}

/// Per-thread execution context of the native runtime.
pub struct SpecContext {
    mgr: Arc<ThreadManager>,
    rank: Rank,
    /// Global buffer — present only for speculative contexts; the
    /// non-speculative thread writes main memory directly.
    global: Option<GlobalBuffer>,
    /// Local (register/stack) buffer; present for every context so the
    /// regvar transfer API is uniform.
    local: LocalBuffer,
    children: Vec<Rank>,
    stats: ThreadStats,
    last_mark: Instant,
    op_counter: u32,
    /// Depth of rollback-triggered inline re-executions currently on the
    /// stack.  While positive, this thread's *buffered* stores hard-doom
    /// their registered readers: any child it re-forked that reads a
    /// range this thread rewrites is doomed from birth (it reads main
    /// memory underneath the uncommitted overlay) and should stop now.
    reexec_depth: u32,
}

impl SpecContext {
    /// Create the non-speculative (rank 0) context.
    pub(crate) fn non_speculative(mgr: Arc<ThreadManager>) -> Self {
        let local = LocalBuffer::new(mgr.config().local_buffer);
        SpecContext {
            mgr,
            rank: 0,
            global: None,
            local,
            children: Vec::new(),
            stats: ThreadStats::new(),
            last_mark: Instant::now(),
            op_counter: 0,
            reexec_depth: 0,
        }
    }

    /// Create a speculative context for virtual CPU `rank`, installing the
    /// register variables transferred from the parent.
    pub(crate) fn speculative(
        mgr: Arc<ThreadManager>,
        rank: Rank,
        regvars: Vec<(usize, RegisterValue)>,
    ) -> Self {
        let buffers = mgr.make_buffers(rank);
        let mut local = buffers.local;
        for (offset, value) in regvars {
            // Offsets were validated on the parent side; ignore overflow.
            let _ = local.set_regvar(offset, value);
        }
        SpecContext {
            mgr,
            rank,
            global: Some(buffers.global),
            local,
            children: Vec::new(),
            stats: ThreadStats::new(),
            last_mark: Instant::now(),
            op_counter: 0,
            reexec_depth: 0,
        }
    }

    /// Consume the context into the outcome deposited for the joiner.
    pub(crate) fn into_outcome(mut self, status: TaskStatus, started: Instant) -> SpecOutcome {
        let total = started.elapsed().as_nanos() as u64;
        let overhead = self.stats.total();
        self.stats.add(Phase::Work, total.saturating_sub(overhead));
        SpecOutcome {
            status,
            buffers: ThreadBuffers {
                global: self
                    .global
                    .unwrap_or_else(|| GlobalBuffer::new(self.mgr.config().buffer)),
                local: self.local,
            },
            children: self.children,
            stats: self.stats,
            finished_at: Instant::now(),
        }
    }

    /// Finish the non-speculative root context: drain any unjoined
    /// children and return the critical-path statistics.
    pub(crate) fn finish(mut self, started: Instant) -> (ThreadStats, Vec<Rank>) {
        let total = started.elapsed().as_nanos() as u64;
        let overhead = self.stats.total();
        self.stats.add(Phase::Work, total.saturating_sub(overhead));
        (self.stats, std::mem::take(&mut self.children))
    }

    /// Shared memory arena.
    pub fn memory(&self) -> Arc<GlobalMemory> {
        Arc::clone(self.mgr.memory())
    }

    /// Allocate `count` elements of `T` from the shared arena and register
    /// the range in the global address space.
    ///
    /// # Panics
    /// Panics when called from a speculative context: speculative threads
    /// may not allocate memory (paper §IV-G1).
    pub fn alloc<T: Word>(&mut self, count: usize) -> GPtr<T> {
        assert!(
            self.rank == 0,
            "speculative threads may not allocate memory"
        );
        let ptr = self.mgr.memory().alloc::<T>(count);
        self.mgr
            .register_range(ptr.base_addr(), (count as u64) * WORD_BYTES);
        ptr
    }

    /// Store a register variable in the current frame so it is transferred
    /// to children forked from this point on (`MUTLS_set_regvar_*`).
    pub fn set_regvar(&mut self, offset: usize, value: RegisterValue) -> SpecResult<()> {
        self.local
            .set_regvar(offset, value)
            .map_err(|_| failure(SpecFailure::LocalBufferOverflow))
    }

    /// Fetch a register variable transferred from the parent
    /// (`MUTLS_get_regvar_*`).
    pub fn get_regvar(&self, offset: usize) -> Option<RegisterValue> {
        self.local.get_regvar(offset)
    }

    /// Per-thread statistics gathered so far (primarily for tests).
    pub fn stats(&self) -> &ThreadStats {
        &self.stats
    }

    // ----- speculative memory routing ---------------------------------

    /// Read one word of shared program data.
    ///
    /// This is the single entry point all workload memory traffic goes
    /// through (the `MUTLS_load_*` call the speculator pass would emit).
    /// Speculatively it redirects into the thread's [`GlobalBuffer`],
    /// stamping new read-set entries with the commit-log epoch so
    /// join-time validation can detect writes committed by logical
    /// predecessors *after* this read; non-speculatively it reads main
    /// memory directly.
    pub fn spec_read(&mut self, addr: Addr) -> SpecResult<u64> {
        self.stats.counters.loads += 1;
        self.poll_abort()?;
        match self.global.as_mut() {
            None => Ok(self.mgr.memory().read_word(addr)),
            Some(buffer) => {
                if !self.mgr.range_registered(addr, WORD_BYTES) {
                    return Err(failure(SpecFailure::UnregisteredAddress));
                }
                buffer
                    .load_logged(
                        self.mgr.memory().as_ref(),
                        Some(self.mgr.commit_log()),
                        addr,
                        WORD_BYTES,
                    )
                    .map_err(Self::map_buffer_error)
            }
        }
    }

    /// Write one word of shared program data.
    ///
    /// Speculatively the store lands in the thread's write-set and stays
    /// private until the join commits it; non-speculatively the store is
    /// published immediately **and recorded in the commit log**, which is
    /// what dooms any in-flight logical successor that already read the
    /// address (the store is a commit by definition — the non-speculative
    /// thread is always logically earliest).
    pub fn spec_write(&mut self, addr: Addr, value: u64) -> SpecResult<()> {
        self.stats.counters.stores += 1;
        self.poll_abort()?;
        match self.global.as_mut() {
            None => {
                // Memory first, then the version bump (see `CommitLog`'s
                // ordering protocol).
                self.mgr.memory().write_word(addr, value);
                self.mgr.commit_log().record_word(addr);
                // The store is a commit by definition (rank 0 is always
                // logically earliest): doom its registered readers now —
                // surgically, instead of letting them burn their whole
                // conflict window before failing validation.
                self.stats.counters.targeted_dooms += self.mgr.doom_readers([addr], self.rank);
                Ok(())
            }
            Some(buffer) => {
                if !self.mgr.range_registered(addr, WORD_BYTES) {
                    return Err(failure(SpecFailure::UnregisteredAddress));
                }
                buffer
                    .store(addr, value, WORD_BYTES)
                    .map_err(Self::map_buffer_error)?;
                // A *blind* store (the thread never read this word) made
                // during a rollback re-execution: any registered reader
                // of the word is reading main memory underneath this
                // uncommitted overlay and can never validate against it
                // — hard-doom it now, before it wastes its window.
                // Three gates keep the doom surgical: it only fires
                // while re-executing (`reexec_depth > 0`, where the
                // registered readers are the doomed-from-birth threads
                // that speculated past the rolled-back join — outside a
                // re-execution a registered reader may be a logical
                // *predecessor* whose read is perfectly valid, e.g. a
                // thread that read the word and then forked this very
                // continuation); RMW words (read before written) are
                // skipped for the same predecessor reason; and only at
                // **word** grain, where reader and writer provably touch
                // the same word — at coarser grains a registered
                // "reader" may only share the range (false sharing) and
                // could still validate.  The grain is a live per-region
                // property under the adaptive-grain controller, so the
                // word-exactness gate asks the log for *this address's*
                // current grain, not the static config.
                if self.reexec_depth > 0
                    && self.mgr.commit_log().grain_of(addr) == mutls_membuf::WORD_GRAIN_LOG2
                    && !buffer.has_read(addr)
                {
                    let doomed = self.mgr.doom_readers_hard([addr], self.rank);
                    self.stats.counters.targeted_dooms += doomed;
                    if doomed > 0 {
                        self.mgr.trace_event(
                            self.rank,
                            0,
                            EventKind::Doom {
                                source: DoomSource::Buffered,
                            },
                        );
                    }
                }
                Ok(())
            }
        }
    }

    /// Ranks of children forked but not yet joined.
    pub fn pending_children(&self) -> &[Rank] {
        &self.children
    }

    // ----- internal helpers -------------------------------------------

    /// Charge the time since the last phase boundary to `Work` and return
    /// the instant at which the overhead phase starts.
    fn begin_overhead(&mut self) -> Instant {
        let now = Instant::now();
        let nanos = now.duration_since(self.last_mark).as_nanos() as u64;
        self.stats.add(Phase::Work, nanos);
        now
    }

    /// Charge the overhead phase and reset the work marker.
    fn end_overhead(&mut self, phase: Phase, started: Instant) {
        let now = Instant::now();
        self.stats
            .add(phase, now.duration_since(started).as_nanos() as u64);
        self.last_mark = now;
    }

    fn check_abort(&mut self) -> SpecResult<()> {
        if self.rank != 0 {
            if self.mgr.abort_requested(self.rank) {
                return Err(failure(SpecFailure::Cascaded));
            }
            if self.mgr.hard_doom_requested(self.rank) {
                // A speculative writer's *buffered* store overlaps this
                // thread's reads: the conflicting value is invisible in
                // main memory, so no revalidation can help — stop now.
                return Err(failure(SpecFailure::ReadConflict));
            }
            if self.mgr.doom_requested(self.rank) {
                // A committing writer found this thread in the reader
                // registry: its reads are (range-conservatively) stale.
                // In-flight value-predict retry first: the registry is
                // range-granular, so the doom may be false sharing — if
                // every conflicting word still holds its first-read
                // value, re-stamp, shrug the doom off and keep running.
                if self.mgr.config().recovery.value_predict {
                    if let Some(buffer) = self.global.as_mut() {
                        let memory = self.mgr.memory();
                        let retry_started = Instant::now();
                        if buffer.revalidate_by_value(self.mgr.commit_log(), memory.as_ref()) {
                            self.mgr.clear_doom(self.rank);
                            self.stats.counters.retries_succeeded += 1;
                            self.mgr.recorder().latency().record(
                                LatencyPhase::RepairRetry,
                                retry_started.elapsed().as_nanos() as u64,
                            );
                            self.mgr.trace_event(self.rank, 0, EventKind::RetryInFlight);
                            return Ok(());
                        }
                    }
                }
                // Genuinely stale: stop now instead of burning the rest
                // of the conflict window; the join classifies this as a
                // conflict rollback.
                return Err(failure(SpecFailure::ReadConflict));
            }
        }
        Ok(())
    }

    fn poll_abort(&mut self) -> SpecResult<()> {
        self.op_counter = self.op_counter.wrapping_add(1);
        if self.op_counter.is_multiple_of(ABORT_POLL_INTERVAL) {
            self.check_abort()?;
        }
        Ok(())
    }

    fn map_buffer_error(err: BufferError) -> SpecAbort {
        match err {
            BufferError::OverflowFull => failure(SpecFailure::BufferOverflow),
            BufferError::LocalBufferFull => failure(SpecFailure::LocalBufferOverflow),
            BufferError::UnregisteredAddress => failure(SpecFailure::UnregisteredAddress),
            // OverflowPending is handled inside the buffer; alignment and
            // size problems indicate a misuse of the typed API and map to
            // a rollback so the parent re-executes safely.
            BufferError::OverflowPending
            | BufferError::Misaligned
            | BufferError::UnsupportedSize => failure(SpecFailure::BufferOverflow),
        }
    }

    /// Execute a task inline (the parent running the continuation itself).
    fn run_inline(&mut self, task: &TaskRef<SpecContext>) -> SpecResult<()> {
        match task(self) {
            Ok(()) | Err(SpecAbort::BarrierReached) => Ok(()),
            Err(other) => Err(other),
        }
    }

    /// Join a speculative child: synchronize, validate, commit (possibly
    /// via value-predict retry) or roll back, and release its CPU.
    /// Returns the decision.  `site` and `model` identify the fork point
    /// for governor feedback.
    fn join_child(
        &mut self,
        child: Rank,
        site: u32,
        model: ForkModel,
    ) -> Result<crate::manager::CommitKind, SpecFailure> {
        // Children-stack discipline (paper §IV-F): pop until the expected
        // child is found; anything popped in between violated the
        // mixed-model ordering assumption and is discarded (NOSYNC).
        loop {
            match self.children.pop() {
                Some(rank) if rank == child => break,
                Some(other) => self.mgr.reap_subtree(other),
                None => {
                    // The child was already discarded (e.g. by a cascading
                    // rollback); treat as a rollback so the caller
                    // re-executes inline.
                    return Err(SpecFailure::NoSync);
                }
            }
        }

        // Wait for the child to stop (its closure completed, reached a
        // barrier or failed); this is idle time on the joining thread.
        // A *speculative* joiner keeps watching its own doom flags while
        // blocked: if a committing writer dooms it mid-wait, waiting out
        // the child's (equally doomed) subtree would waste the whole
        // window, so the join is abandoned and the subtree reaped now.
        let wait_started = Instant::now();
        let outcome = if self.rank == 0 {
            Some(self.mgr.wait_outcome(child))
        } else {
            let mgr = Arc::clone(&self.mgr);
            let rank = self.rank;
            let global = &mut self.global;
            let stats = &mut self.stats;
            mgr.wait_outcome_where(child, || {
                if mgr.abort_requested(rank) || mgr.hard_doom_requested(rank) {
                    return true;
                }
                if !mgr.doom_requested(rank) {
                    return false;
                }
                // In-flight value-predict retry, as in `check_abort`.
                if mgr.config().recovery.value_predict {
                    if let Some(buffer) = global.as_mut() {
                        let memory = mgr.memory();
                        let retry_started = Instant::now();
                        if buffer.revalidate_by_value(mgr.commit_log(), memory.as_ref()) {
                            mgr.clear_doom(rank);
                            stats.counters.retries_succeeded += 1;
                            mgr.recorder().latency().record(
                                LatencyPhase::RepairRetry,
                                retry_started.elapsed().as_nanos() as u64,
                            );
                            mgr.trace_event(rank, 0, EventKind::RetryInFlight);
                            return false;
                        }
                    }
                }
                true
            })
        };
        self.stats
            .add(Phase::Idle, wait_started.elapsed().as_nanos() as u64);
        let Some(mut outcome) = outcome else {
            // Doomed (or aborted) while blocked: reap the child's subtree
            // and unwind; the joiner's own joiner re-executes.
            self.mgr.reap_subtree(child);
            let reason = if self.mgr.abort_requested(self.rank) {
                SpecFailure::Cascaded
            } else {
                SpecFailure::ReadConflict
            };
            return Err(reason);
        };
        // Time the child spent waiting to be joined is speculative idle.
        outcome.stats.add(
            Phase::Idle,
            Instant::now()
                .duration_since(outcome.finished_at)
                .as_nanos() as u64,
        );

        let verdict = self
            .mgr
            .validate_and_commit(child, &mut outcome, self.global.as_mut());
        // Observed before the buffers are cleared: the live grain of the
        // child's written/read region, for the per-site grain column.
        let observed_grain = self.mgr.observed_grain(&outcome);

        // Finalize the child's buffers (clearing cost is charged to the
        // speculative path, as in the paper's breakdown).
        let finalize_started = Instant::now();
        outcome.buffers.global.clear();
        outcome.stats.add(
            Phase::Finalize,
            finalize_started.elapsed().as_nanos() as u64,
        );

        // The unjoined children of a finished child: when the child
        // *committed*, its state already reached the commit log (or the
        // parent's overlay), so the grandchildren ran on top of valid
        // state — adopt the completed ones into this joiner instead of
        // re-speculating their work (see README "Recovery pipeline").
        // A child that rolled back invalidates the subtree as before.
        for grandchild in std::mem::take(&mut outcome.children) {
            if verdict.is_ok() {
                let adopted = self.mgr.adopt_subtree(grandchild, self.global.as_mut());
                self.stats.counters.adopted_threads += adopted;
                self.mgr
                    .metrics()
                    .registry()
                    .add(self.rank, CounterId::AdoptedThreads, adopted);
            } else {
                self.mgr.reap_subtree(grandchild);
            }
        }

        let committed = verdict.is_ok();
        if !committed {
            outcome.stats.mark_work_wasted();
        }
        // Feed the join outcome back into the governor's site profile,
        // carrying the false-sharing classification and the retry verdict
        // `validate_and_commit` recorded, so Throttle can back off
        // differently on grain-induced conflicts and treat a retried
        // conflict as the cheap repair it is.
        let site_outcome = match verdict {
            Ok(kind) => SiteOutcome::committed(
                outcome.stats.get(Phase::Work),
                outcome.stats.get(Phase::Idle),
                model,
            )
            .with_retry(kind.retried())
            .with_grain(observed_grain),
            Err(reason) => SiteOutcome::rolled_back(
                reason,
                outcome.stats.get(Phase::WastedWork),
                outcome.stats.get(Phase::Idle),
                model,
            )
            .with_false_sharing(outcome.stats.counters.false_sharing_suspects > 0)
            .with_grain(observed_grain),
        };
        self.mgr.governor().record_outcome(site, &site_outcome);
        self.mgr.record_speculative(
            &outcome.stats,
            verdict.err(),
            verdict
                .map(crate::manager::CommitKind::retried)
                .unwrap_or(false),
        );
        self.mgr.release_cpu(child, self.rank);
        verdict
    }
}

impl TlsContext for SpecContext {
    type Handle = SpecHandle;

    fn work(&mut self, _units: u64) -> SpecResult<()> {
        // Real time is measured directly; this is only a poll opportunity.
        self.poll_abort()
    }

    fn load_word(&mut self, addr: Addr) -> SpecResult<u64> {
        self.spec_read(addr)
    }

    fn store_word(&mut self, addr: Addr, value: u64) -> SpecResult<()> {
        self.spec_write(addr, value)
    }

    fn fork(&mut self, point: u32, task: TaskRef<Self>) -> SpecResult<SpecHandle> {
        self.fork_with_model(point, self.mgr.config().fork_model, task)
    }

    fn fork_with_model(
        &mut self,
        point: u32,
        model: ForkModel,
        task: TaskRef<Self>,
    ) -> SpecResult<SpecHandle> {
        self.check_abort()?;
        self.mgr
            .trace_event(self.rank, point, EventKind::ForkAttempt);

        // A *speculative* parent re-executing a continuation after a
        // rollback must not re-speculate: its accumulated write-set is
        // invisible in main memory, so any child it forked would read
        // stale values underneath the overlay and be doomed from birth —
        // re-forking here is what turns one conflict into a cascade of
        // garbage subtrees.  The re-execution is pinned inline instead.
        // (Rank 0 re-executions keep forking: their stores publish
        // immediately, so re-forked children read fresh values and the
        // reader registry surgically dooms the genuinely stale ones.)
        if self.rank != 0 && self.reexec_depth > 0 {
            self.stats.counters.failed_forks += 1;
            self.mgr
                .metrics()
                .registry()
                .add(self.rank, CounterId::FailedForks, 1);
            self.mgr.trace_event(
                self.rank,
                point,
                EventKind::ForkDenied {
                    policy: DenyPolicy::Reexec,
                },
            );
            return Ok(SpecHandle {
                point,
                task,
                child: None,
                model,
                throttled: false,
            });
        }

        // Ask the adaptive governor whether this fork site may speculate
        // (and under which model) before spending any fork overhead.
        let model = match self.mgr.governor().decide(point, model) {
            ForkDecision::Allow(chosen) => {
                self.mgr.trace_event(
                    self.rank,
                    point,
                    EventKind::GovernorDecision { allowed: true },
                );
                chosen
            }
            ForkDecision::Deny => {
                self.stats.counters.throttled_forks += 1;
                self.mgr
                    .metrics()
                    .registry()
                    .add(self.rank, CounterId::ThrottledForks, 1);
                self.mgr.trace_event(
                    self.rank,
                    point,
                    EventKind::GovernorDecision { allowed: false },
                );
                self.mgr.trace_event(
                    self.rank,
                    point,
                    EventKind::ForkDenied {
                        policy: DenyPolicy::Governor,
                    },
                );
                return Ok(SpecHandle {
                    point,
                    task,
                    child: None,
                    model,
                    throttled: true,
                });
            }
        };

        let find_started = self.begin_overhead();
        let child = self.mgr.try_acquire_cpu(self.rank, model);
        self.end_overhead(Phase::FindCpu, find_started);

        let Some(child) = child else {
            self.stats.counters.failed_forks += 1;
            self.mgr
                .metrics()
                .registry()
                .add(self.rank, CounterId::FailedForks, 1);
            let policy = if self.mgr.model_allows_fork(self.rank, model) {
                DenyPolicy::NoCpu
            } else {
                DenyPolicy::Model
            };
            self.mgr
                .trace_event(self.rank, point, EventKind::ForkDenied { policy });
            return Ok(SpecHandle {
                point,
                task,
                child: None,
                model,
                throttled: false,
            });
        };

        let fork_started = self.begin_overhead();
        // Transfer the current frame's register variables to the child
        // (MUTLS_save_local / set_regvar on the parent side).
        let regvars: Vec<(usize, RegisterValue)> =
            self.local.current_frame().registers.iter().collect();
        // Emitted on the child's lane *before* the dispatch: the channel
        // send orders this write before anything the child emits, keeping
        // the ring single-producer.
        self.mgr.trace_event(
            child,
            point,
            EventKind::SpecStart {
                parent: self.rank as u32,
            },
        );
        self.mgr.dispatch(
            child,
            point,
            model,
            SpecRequest {
                task: Arc::clone(&task),
                regvars,
            },
        );
        self.children.push(child);
        self.stats.counters.forks += 1;
        self.end_overhead(Phase::Fork, fork_started);

        Ok(SpecHandle {
            point,
            task,
            child: Some(child),
            model,
            throttled: false,
        })
    }

    fn join(&mut self, handle: SpecHandle) -> SpecResult<JoinOutcome> {
        self.check_abort()?;
        let SpecHandle {
            point,
            task,
            child,
            model,
            ..
        } = handle;

        let Some(child) = child else {
            // Speculation never happened: execute the continuation inline.
            self.run_inline(&task)?;
            return Ok(JoinOutcome::NotSpeculated);
        };

        let join_started = self.begin_overhead();
        let verdict = self.join_child(child, point, model);
        self.end_overhead(Phase::Join, join_started);

        match verdict {
            Ok(_kind) => {
                self.stats.counters.commits += 1;
                Ok(JoinOutcome::Committed)
            }
            Err(reason) => {
                self.stats
                    .counters
                    .record_rollback(RollbackReason::from(reason));
                // Rollback (squash): the parent re-executes the
                // continuation inline; the squash already cascaded into
                // the child's own speculative subtree above.  While the
                // re-execution runs, this thread's buffered stores
                // hard-doom their registered readers (see `spec_write`).
                self.reexec_depth += 1;
                let repair_started = Instant::now();
                let inline_result = self.run_inline(&task);
                let phase = if self.mgr.config().recovery.mode == RecoveryMode::Targeted {
                    LatencyPhase::RepairDoomSet
                } else {
                    LatencyPhase::RepairCascade
                };
                self.mgr
                    .recorder()
                    .latency()
                    .record(phase, repair_started.elapsed().as_nanos() as u64);
                self.reexec_depth -= 1;
                inline_result?;
                Ok(JoinOutcome::RolledBack(reason))
            }
        }
    }

    fn barrier(&mut self) -> SpecResult<()> {
        // Everything up to here is valid; stop executing the closure on
        // both the speculative and the inline path so the code after the
        // barrier runs exactly once (in the parent, after its join).
        Err(SpecAbort::BarrierReached)
    }

    fn check_point(&mut self) -> SpecResult<()> {
        self.check_abort()
    }

    fn is_speculative(&self) -> bool {
        self.rank != 0
    }

    fn rank(&self) -> Rank {
        self.rank
    }
}
