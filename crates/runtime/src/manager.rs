//! The `ThreadManager` (paper §IV-B): virtual CPUs, speculative thread
//! dispatch, the join/validation/commit protocol and the tree-form mixed
//! forking model bookkeeping.
//!
//! Each virtual CPU (rank 1..=N) is backed by one worker OS thread and owns
//! a *slot* holding its dispatch channel, status flags and — once its task
//! finishes — the resulting buffers, statistics and list of unjoined
//! children.  Rank 0 is the non-speculative thread (the caller).
//!
//! The synchronization protocol mirrors the paper's flag-based barrier:
//! the joining thread signals the child (`sync_status` ≙ the `abort` /
//! result handshake here) and then waits for the child's outcome
//! (`valid_status` ≙ the deposited [`SpecOutcome`]), after which validation
//! and commit/rollback are performed and charged to the speculative
//! thread's statistics.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mutls_adaptive::{Governor, SiteId, SiteOutcome};
use mutls_membuf::{
    Addr, AddressSpace, CommitLog, GlobalBuffer, GlobalMemory, LocalBuffer, MainMemory,
    RollbackReason, SpecFailure, Validation,
};

use crate::config::{RollbackSource, RuntimeConfig};
use crate::context::SpecContext;
use crate::fork_model::ForkModel;
use crate::stats::{Phase, ThreadStats};
use crate::task::{Rank, SpecAbort, TaskRef, TaskStatus};

/// Buffers owned by one speculative thread.
#[derive(Debug)]
pub struct ThreadBuffers {
    /// Buffered global (static/heap) accesses.
    pub global: GlobalBuffer,
    /// Buffered local (register/stack) variables and frame chain.
    pub local: LocalBuffer,
}

/// Everything a finished speculative task deposits for its joiner.
pub struct SpecOutcome {
    /// How the task stopped.
    pub status: TaskStatus,
    /// The task's buffers (taken by the joiner for validation/commit).
    pub buffers: ThreadBuffers,
    /// Ranks of children the task forked but never joined.
    pub children: Vec<Rank>,
    /// The task's accumulated statistics.
    pub stats: ThreadStats,
    /// When the task stopped (used to charge the waiting-to-be-joined time
    /// as speculative idle).
    pub finished_at: Instant,
}

/// Message sent to a worker thread.
pub enum WorkerMsg {
    /// Run a speculative task.
    Run(SpecRequest),
    /// Shut the worker down.
    Shutdown,
}

/// A dispatch request for a speculative task.
pub struct SpecRequest {
    /// The continuation closure to execute.
    pub task: TaskRef<SpecContext>,
    /// Register variables transferred from the parent at fork time
    /// (offset, raw value), installed in the child's bottom frame.
    pub regvars: Vec<(usize, mutls_membuf::RegisterValue)>,
}

const CPU_IDLE: u8 = 0;
const CPU_RUNNING: u8 = 1;

/// Per-virtual-CPU slot.
pub(crate) struct Slot {
    state: std::sync::atomic::AtomicU8,
    /// Set when the thread (or its subtree root) must abandon its work.
    abort: AtomicBool,
    /// Set when nobody will ever join this thread; the worker cleans up
    /// after itself in that case.
    orphaned: AtomicBool,
    /// Fork-site ID the running task was launched from (governor key).
    site: AtomicU32,
    /// `ForkModel::index()` of the model the task was launched under.
    model: AtomicU8,
    sender: Sender<WorkerMsg>,
    result: Mutex<Option<SpecOutcome>>,
    result_cv: Condvar,
}

impl Slot {
    fn new(sender: Sender<WorkerMsg>) -> Self {
        Slot {
            state: AtomicU8::new(CPU_IDLE),
            abort: AtomicBool::new(false),
            orphaned: AtomicBool::new(false),
            site: AtomicU32::new(0),
            model: AtomicU8::new(ForkModel::Mixed.index() as u8),
            sender,
            result: Mutex::new(None),
            result_cv: Condvar::new(),
        }
    }

    /// The (site, model) the current task was dispatched with.
    fn launch_info(&self) -> (SiteId, ForkModel) {
        let site = self.site.load(Ordering::Relaxed);
        let model = ForkModel::ALL[self.model.load(Ordering::Relaxed) as usize];
        (site, model)
    }
}

/// Accumulators for one speculative region run.
#[derive(Default)]
struct RunAccumulators {
    speculative: ThreadStats,
    committed_threads: u64,
    rolled_back_threads: u64,
    rolled_back_by_reason: [u64; RollbackReason::COUNT],
}

/// Central coordinator shared by every context and worker.
pub struct ThreadManager {
    config: RuntimeConfig,
    memory: Arc<GlobalMemory>,
    /// Versioned record of every write published to main memory; the
    /// substrate of real cross-thread conflict detection.
    commit_log: CommitLog,
    address_space: RwLock<AddressSpace>,
    slots: Vec<Slot>,
    /// Rank of the most recently speculated thread still in flight
    /// (0 = none); used by the in-order forking model.
    most_speculative: AtomicUsize,
    /// Number of speculative threads currently in flight.
    active: AtomicUsize,
    accum: Mutex<RunAccumulators>,
    rng: Mutex<SmallRng>,
    /// Monotone counter of speculation events (diagnostics).
    speculations: AtomicU64,
    /// Adaptive speculation governor: consulted before a fork is granted a
    /// CPU, fed with per-site join outcomes.
    governor: Governor,
}

impl ThreadManager {
    /// Create the manager plus the receivers its workers will consume.
    pub fn new(config: RuntimeConfig) -> (Arc<Self>, Vec<Receiver<WorkerMsg>>) {
        let memory = Arc::new(GlobalMemory::new(config.memory_bytes));
        let mut slots = Vec::with_capacity(config.num_cpus);
        let mut receivers = Vec::with_capacity(config.num_cpus);
        for _ in 0..config.num_cpus {
            let (tx, rx) = unbounded();
            slots.push(Slot::new(tx));
            receivers.push(rx);
        }
        let mut space = AddressSpace::new();
        // The whole arena below the allocation cursor grows as the program
        // allocates; individual allocations register themselves.
        space.register(GlobalMemory::BASE_ADDR, 0);
        // Size the log's dense fast path to the arena so every stamp and
        // lookup is a single atomic access with bounded memory; grain and
        // shard count come from the runtime configuration.
        let commit_log = CommitLog::with_config(config.commit_log, memory.size_bytes());
        let mgr = Arc::new(ThreadManager {
            config,
            memory,
            commit_log,
            address_space: RwLock::new(space),
            slots,
            most_speculative: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            accum: Mutex::new(RunAccumulators::default()),
            rng: Mutex::new(SmallRng::seed_from_u64(config.seed)),
            speculations: AtomicU64::new(0),
            governor: Governor::new(config.governor),
        });
        (mgr, receivers)
    }

    /// The adaptive speculation governor.
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Shared main memory arena.
    pub fn memory(&self) -> &Arc<GlobalMemory> {
        &self.memory
    }

    /// The shared commit log every published write is recorded in.
    pub fn commit_log(&self) -> &CommitLog {
        &self.commit_log
    }

    /// Register `[addr, addr+len)` as valid global data.
    pub fn register_range(&self, addr: Addr, len: u64) {
        self.address_space.write().register(addr, len);
    }

    /// Unregister a range (object deallocation).
    pub fn unregister_range(&self, addr: Addr, len: u64) {
        self.address_space.write().unregister(addr, len);
    }

    /// Whether an access is inside the registered global address space.
    ///
    /// Anything handed out by the arena's bump allocator is implicitly
    /// registered (allocation *is* registration, as in §IV-G1 where heap
    /// allocation calls are intercepted); explicitly registered ranges are
    /// honoured in addition.
    pub fn range_registered(&self, addr: Addr, len: u64) -> bool {
        if addr >= GlobalMemory::BASE_ADDR && addr + len <= self.memory.allocated_bytes() {
            return true;
        }
        self.address_space.read().contains(addr, len)
    }

    /// Total number of speculation events since construction.
    pub fn total_speculations(&self) -> u64 {
        self.speculations.load(Ordering::Relaxed)
    }

    /// Number of speculative threads currently in flight.
    pub fn active_speculations(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    // ----- fork path -------------------------------------------------

    /// Try to acquire an idle virtual CPU for a fork requested by
    /// `forker` under `model` (paper: `MUTLS_get_CPU`).
    pub fn try_acquire_cpu(&self, forker: Rank, model: ForkModel) -> Option<Rank> {
        let forker_is_spec = forker != 0;
        let most = self.most_speculative.load(Ordering::Acquire);
        let is_most = if self.active.load(Ordering::Acquire) == 0 {
            !forker_is_spec
        } else {
            forker == most
        };
        if !model.allows_fork(forker_is_spec, is_most) {
            return None;
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .state
                .compare_exchange(CPU_IDLE, CPU_RUNNING, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let rank = i + 1;
                slot.abort.store(false, Ordering::Release);
                slot.orphaned.store(false, Ordering::Release);
                *slot.result.lock() = None;
                self.active.fetch_add(1, Ordering::AcqRel);
                self.most_speculative.store(rank, Ordering::Release);
                self.speculations.fetch_add(1, Ordering::Relaxed);
                return Some(rank);
            }
        }
        None
    }

    /// Dispatch a speculative task to an acquired CPU.  `site` and `model`
    /// identify the fork point and forking model for governor feedback.
    pub fn dispatch(&self, rank: Rank, site: SiteId, model: ForkModel, request: SpecRequest) {
        let slot = &self.slots[rank - 1];
        slot.site.store(site, Ordering::Relaxed);
        slot.model.store(model.index() as u8, Ordering::Relaxed);
        self.governor.record_fork(site, model);
        slot.sender
            .send(WorkerMsg::Run(request))
            .expect("worker thread alive");
    }

    /// Signal every worker to shut down (used by `Runtime::drop`).
    pub fn shutdown_workers(&self) {
        for slot in &self.slots {
            let _ = slot.sender.send(WorkerMsg::Shutdown);
        }
    }

    // ----- join path -------------------------------------------------

    /// True if the speculative thread `rank` has been asked to abort.
    pub fn abort_requested(&self, rank: Rank) -> bool {
        rank != 0 && self.slots[rank - 1].abort.load(Ordering::Relaxed)
    }

    /// Block until the speculative thread `rank` deposits its outcome, then
    /// take it.
    pub fn wait_outcome(&self, rank: Rank) -> SpecOutcome {
        let slot = &self.slots[rank - 1];
        let mut guard = slot.result.lock();
        while guard.is_none() {
            slot.result_cv.wait(&mut guard);
        }
        guard.take().expect("outcome present")
    }

    /// Deposit the outcome of a finished speculative task.  Returns `true`
    /// if someone will join it, `false` if it was orphaned and the worker
    /// must clean up after itself.
    pub fn deposit_outcome(&self, rank: Rank, outcome: SpecOutcome) -> bool {
        let slot = &self.slots[rank - 1];
        {
            let mut guard = slot.result.lock();
            *guard = Some(outcome);
        }
        slot.result_cv.notify_all();
        if slot.orphaned.load(Ordering::Acquire) {
            // Re-take it; if the canceller got there first we are done.
            let taken = slot.result.lock().take();
            if let Some(outcome) = taken {
                self.finish_discarded(rank, outcome, SpecFailure::Cascaded);
                return false;
            }
        }
        true
    }

    /// Release a virtual CPU after its outcome has been consumed.
    pub fn release_cpu(&self, rank: Rank, joiner: Rank) {
        let slot = &self.slots[rank - 1];
        slot.state.store(CPU_IDLE, Ordering::Release);
        self.active.fetch_sub(1, Ordering::AcqRel);
        let _ = self.most_speculative.compare_exchange(
            rank,
            joiner,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    /// Record a discarded (rolled back / orphaned) speculative thread.
    fn finish_discarded(&self, rank: Rank, outcome: SpecOutcome, reason: SpecFailure) {
        // Cascade into the subtree first.
        for child in &outcome.children {
            self.reap_subtree(*child);
        }
        let mut stats = outcome.stats;
        stats.mark_work_wasted();
        self.report_discard_to_governor(rank, &stats, reason);
        {
            let mut accum = self.accum.lock();
            accum.speculative.merge(&stats);
            accum.rolled_back_threads += 1;
            accum.rolled_back_by_reason[RollbackReason::from(reason).index()] += 1;
        }
        self.release_cpu(rank, 0);
    }

    /// Feed a discarded thread's outcome into the governor's site profile.
    fn report_discard_to_governor(&self, rank: Rank, stats: &ThreadStats, reason: SpecFailure) {
        let (site, model) = self.slots[rank - 1].launch_info();
        self.governor.record_outcome(
            site,
            &SiteOutcome::rolled_back(
                reason,
                stats.get(Phase::WastedWork),
                stats.get(Phase::Idle),
                model,
            ),
        );
    }

    /// Abort and *synchronously* drain a speculative subtree: waits for
    /// every thread in the subtree to stop, accounts their work as wasted
    /// and reclaims their CPUs.  Used when a speculative region ends with
    /// children still unjoined.
    pub fn drain_subtree(&self, rank: Rank) {
        let slot = &self.slots[rank - 1];
        slot.abort.store(true, Ordering::Release);
        let outcome = self.wait_outcome(rank);
        for child in &outcome.children {
            self.drain_subtree(*child);
        }
        let mut stats = outcome.stats;
        stats.mark_work_wasted();
        self.report_discard_to_governor(rank, &stats, SpecFailure::Cascaded);
        {
            let mut accum = self.accum.lock();
            accum.speculative.merge(&stats);
            accum.rolled_back_threads += 1;
            accum.rolled_back_by_reason[RollbackReason::from(SpecFailure::Cascaded).index()] += 1;
        }
        self.release_cpu(rank, 0);
    }

    /// Abort an entire speculative subtree rooted at `rank` (paper §IV-F:
    /// cascading rollbacks are confined to the subtree).
    pub fn reap_subtree(&self, rank: Rank) {
        let slot = &self.slots[rank - 1];
        slot.abort.store(true, Ordering::Release);
        slot.orphaned.store(true, Ordering::Release);
        // If the outcome is already there, clean up now; otherwise the
        // worker will observe `orphaned` when it deposits.
        let taken = slot.result.lock().take();
        if let Some(outcome) = taken {
            self.finish_discarded(rank, outcome, SpecFailure::Cascaded);
        }
    }

    /// Validate a finished child and either publish or discard its buffers.
    ///
    /// `parent_buffer` is `Some` when the joiner is itself speculative; in
    /// that case a valid child is *absorbed* into the parent's buffers
    /// instead of being committed to main memory.
    ///
    /// Validation is the real dependence check of paper §IV-F: every
    /// read-set entry is checked against the shared [`CommitLog`] — did a
    /// logically earlier thread commit a write to this address *after* we
    /// read it?  (Joins happen in logical order — speculative parents
    /// absorb their children and only the non-speculative joiner publishes
    /// to main memory — so every commit racing a child is by a logical
    /// predecessor.)  When the joiner is itself speculative, the child's
    /// reads are additionally compared against the parent's uncommitted
    /// write-set overlay, since the child could not observe those
    /// logically earlier writes at all.
    ///
    /// Returns `Ok(())` on commit and `Err(reason)` on rollback.
    /// Validation/commit/finalize time is charged to the child's
    /// statistics, matching the paper's attribution of those phases to the
    /// speculative path.
    pub fn validate_and_commit(
        &self,
        outcome: &mut SpecOutcome,
        parent_buffer: Option<&mut GlobalBuffer>,
    ) -> Result<(), SpecFailure> {
        let started = Instant::now();
        let mem: &GlobalMemory = &self.memory;

        let failure = match outcome.status {
            TaskStatus::Failed(reason) => Some(reason),
            TaskStatus::Completed | TaskStatus::Barrier => None,
        };
        if let Some(reason) = failure {
            outcome.stats.add(Phase::Validation, elapsed_ns(started));
            return Err(reason);
        }

        // Dependence validation against the commit log (range grain,
        // classifying suspected false sharing), plus the parent write-set
        // overlay when the joiner is speculative.
        let log_verdict = outcome
            .buffers
            .global
            .validate_against_with(&self.commit_log, mem);
        let valid = log_verdict.is_valid()
            && match &parent_buffer {
                None => true,
                Some(parent) => {
                    let view = |addr: Addr| match parent.write_entries().find(|e| e.addr == addr) {
                        Some(e) if e.mask == u64::MAX => e.data,
                        Some(e) => (mem.read_word(addr) & !e.mask) | (e.data & e.mask),
                        None => mem.read_word(addr),
                    };
                    outcome.buffers.global.validate_view(view)
                }
            };
        outcome.stats.add(Phase::Validation, elapsed_ns(started));
        if !valid {
            if let Validation::Conflict {
                suspected_false_sharing: true,
            } = log_verdict
            {
                // Every conflicting word still held its first-read value:
                // the rollback is most likely grain-induced false sharing
                // (or a value-identical ABA write) — recorded so the
                // governor and the reports can tell the regimes apart.
                outcome.stats.counters.false_sharing_suspects += 1;
            }
            return Err(SpecFailure::ReadConflict);
        }

        // Injected rollback — only under the opt-in sensitivity mode
        // (`RollbackSource::Injected`, paper §V-D).
        if self.draw_injected_rollback() {
            return Err(SpecFailure::Injected);
        }

        // Commit.  Publishing to main memory records the batch in the
        // commit log (memory first, then the version bump — see the
        // ordering protocol on `CommitLog`), which is what dooms any
        // still-running logical successor that read stale values.
        let commit_started = Instant::now();
        let commit_result = match parent_buffer {
            None => {
                outcome.buffers.global.commit(mem);
                if outcome.buffers.global.write_set_len() > 0 {
                    self.commit_log
                        .record(outcome.buffers.global.write_addresses());
                }
                Ok(())
            }
            Some(parent) => parent.absorb(&outcome.buffers.global),
        };
        outcome.stats.add(Phase::Commit, elapsed_ns(commit_started));
        match commit_result {
            Ok(()) => Ok(()),
            // The parent could not hold the child's data; discard the child.
            Err(_) => Err(SpecFailure::BufferOverflow),
        }
    }

    /// Draw from the rollback-injection distribution.  Always `false`
    /// unless the sensitivity mode ([`RollbackSource::Injected`]) is
    /// enabled — real conflicts are the default rollback source.
    pub fn draw_injected_rollback(&self) -> bool {
        if self.config.rollback_source != RollbackSource::Injected {
            return false;
        }
        let p = self.config.rollback_probability;
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.rng.lock().gen_bool(p)
    }

    /// Fold a finished speculative thread's statistics into the current
    /// run's accumulators.  `rollback` carries the failure when the thread
    /// rolled back (`None` = committed).
    pub fn record_speculative(&self, stats: &ThreadStats, rollback: Option<SpecFailure>) {
        let mut accum = self.accum.lock();
        accum.speculative.merge(stats);
        match rollback {
            None => accum.committed_threads += 1,
            Some(reason) => {
                accum.rolled_back_threads += 1;
                accum.rolled_back_by_reason[RollbackReason::from(reason).index()] += 1;
            }
        }
    }

    /// Reset the per-run accumulators, the commit log and the governor's
    /// site profiles (called at the start of `Runtime::run`).
    pub fn reset_run(&self) {
        *self.accum.lock() = RunAccumulators::default();
        self.commit_log.clear();
        self.governor.reset();
    }

    /// Take a snapshot of the per-run accumulators: speculative-path
    /// stats, committed threads, rolled-back threads and the per-reason
    /// rollback breakdown.
    pub fn run_snapshot(&self) -> (ThreadStats, u64, u64, [u64; RollbackReason::COUNT]) {
        let accum = self.accum.lock();
        (
            accum.speculative.clone(),
            accum.committed_threads,
            accum.rolled_back_threads,
            accum.rolled_back_by_reason,
        )
    }

    /// Build the buffers for a new speculative thread.
    pub fn make_buffers(&self) -> ThreadBuffers {
        ThreadBuffers {
            global: GlobalBuffer::new(self.config.buffer),
            local: LocalBuffer::new(self.config.local_buffer),
        }
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// Worker loop executed by each virtual CPU's OS thread.
pub fn worker_loop(mgr: Arc<ThreadManager>, rank: Rank, rx: Receiver<WorkerMsg>) {
    while let Ok(msg) = rx.recv() {
        let request = match msg {
            WorkerMsg::Run(request) => request,
            WorkerMsg::Shutdown => break,
        };
        let mut ctx = SpecContext::speculative(Arc::clone(&mgr), rank, request.regvars);
        let started = Instant::now();
        let result = (request.task)(&mut ctx);
        let status = match result {
            Ok(()) => TaskStatus::Completed,
            Err(SpecAbort::BarrierReached) => TaskStatus::Barrier,
            Err(SpecAbort::Failed(reason)) => TaskStatus::Failed(reason),
        };
        let outcome = ctx.into_outcome(status, started);
        mgr.deposit_outcome(rank, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(cpus: usize) -> Arc<ThreadManager> {
        let (m, _rx) = ThreadManager::new(RuntimeConfig::with_cpus(cpus).memory_bytes(1 << 16));
        m
    }

    #[test]
    fn acquire_respects_cpu_count() {
        let m = mgr(2);
        let a = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        let b = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        assert_ne!(a, b);
        assert!(m.try_acquire_cpu(0, ForkModel::Mixed).is_none());
        m.release_cpu(a, 0);
        assert!(m.try_acquire_cpu(0, ForkModel::Mixed).is_some());
    }

    #[test]
    fn out_of_order_denies_speculative_forkers() {
        let m = mgr(4);
        let child = m.try_acquire_cpu(0, ForkModel::OutOfOrder).unwrap();
        // The speculative child may not fork under out-of-order.
        assert!(m.try_acquire_cpu(child, ForkModel::OutOfOrder).is_none());
        // But the non-speculative thread may keep forking.
        assert!(m.try_acquire_cpu(0, ForkModel::OutOfOrder).is_some());
    }

    #[test]
    fn in_order_only_most_speculative_forks() {
        let m = mgr(4);
        let first = m.try_acquire_cpu(0, ForkModel::InOrder).unwrap();
        // Non-speculative thread is no longer the most speculative.
        assert!(m.try_acquire_cpu(0, ForkModel::InOrder).is_none());
        let second = m.try_acquire_cpu(first, ForkModel::InOrder).unwrap();
        assert!(m.try_acquire_cpu(first, ForkModel::InOrder).is_none());
        assert!(m.try_acquire_cpu(second, ForkModel::InOrder).is_some());
    }

    #[test]
    fn mixed_allows_any_forker() {
        let m = mgr(4);
        let a = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        let b = m.try_acquire_cpu(a, ForkModel::Mixed).unwrap();
        assert!(m.try_acquire_cpu(b, ForkModel::Mixed).is_some());
        assert!(m.try_acquire_cpu(0, ForkModel::Mixed).is_some());
        assert_eq!(m.active_speculations(), 4);
    }

    #[test]
    fn release_restores_most_speculative_to_joiner() {
        let m = mgr(2);
        let a = m.try_acquire_cpu(0, ForkModel::InOrder).unwrap();
        m.release_cpu(a, 0);
        // After the join the non-speculative thread can speculate again.
        assert!(m.try_acquire_cpu(0, ForkModel::InOrder).is_some());
    }

    #[test]
    fn rollback_injection_extremes() {
        let (m, _rx) = ThreadManager::new(
            RuntimeConfig::with_cpus(1)
                .memory_bytes(1 << 12)
                .rollback_probability(0.0),
        );
        assert!(!m.draw_injected_rollback());
        let (m, _rx) = ThreadManager::new(
            RuntimeConfig::with_cpus(1)
                .memory_bytes(1 << 12)
                .rollback_probability(1.0),
        );
        assert!(m.draw_injected_rollback());
    }

    #[test]
    fn injection_requires_the_sensitivity_mode() {
        // A probability set without opting into RollbackSource::Injected
        // (e.g. by direct field assignment) never injects: real conflicts
        // are the only rollback source by default.
        let mut config = RuntimeConfig::with_cpus(1).memory_bytes(1 << 12);
        config.rollback_probability = 1.0;
        assert_eq!(config.rollback_source, crate::RollbackSource::Real);
        let (m, _rx) = ThreadManager::new(config);
        assert!(!m.draw_injected_rollback());
    }

    #[test]
    fn validate_and_commit_detects_a_real_predecessor_write() {
        let m = mgr(1);
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(1);
        mem.set(&cell, 0, 7);

        // A speculative child reads the cell…
        let mut buffers = m.make_buffers();
        let value = buffers
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
            .unwrap();
        assert_eq!(value, 7);

        // …then a logical predecessor commits a write to it.
        mem.set(&cell, 0, 8);
        m.commit_log().record_word(cell.addr_of(0));

        let mut outcome = SpecOutcome {
            status: TaskStatus::Completed,
            buffers,
            children: Vec::new(),
            stats: ThreadStats::new(),
            finished_at: Instant::now(),
        };
        assert_eq!(
            m.validate_and_commit(&mut outcome, None),
            Err(SpecFailure::ReadConflict)
        );
    }

    #[test]
    fn validate_and_commit_publishes_writes_into_the_log() {
        let m = mgr(1);
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(1);

        let mut buffers = m.make_buffers();
        buffers.global.store(cell.addr_of(0), 42, 8).unwrap();
        let mut outcome = SpecOutcome {
            status: TaskStatus::Completed,
            buffers,
            children: Vec::new(),
            stats: ThreadStats::new(),
            finished_at: Instant::now(),
        };
        let epoch_before = m.commit_log().epoch();
        assert_eq!(m.validate_and_commit(&mut outcome, None), Ok(()));
        assert_eq!(mem.get(&cell, 0), 42);
        // The committed address is now stamped: a thread that read it
        // before this commit will fail validation.
        assert!(m.commit_log().written_after(cell.addr_of(0), epoch_before));
    }

    #[test]
    fn address_registration_flows_through() {
        let m = mgr(1);
        m.register_range(0x100, 0x40);
        assert!(m.range_registered(0x100, 8));
        assert!(!m.range_registered(0x200, 8));
        m.unregister_range(0x100, 0x40);
        assert!(!m.range_registered(0x100, 8));
    }

    #[test]
    fn run_accumulators_reset_and_snapshot() {
        let m = mgr(1);
        let mut stats = ThreadStats::new();
        stats.add(Phase::Work, 10);
        m.record_speculative(&stats, None);
        m.record_speculative(&stats, Some(SpecFailure::ReadConflict));
        m.record_speculative(&stats, Some(SpecFailure::Injected));
        let (agg, committed, rolled, by_reason) = m.run_snapshot();
        assert_eq!(agg.get(Phase::Work), 30);
        assert_eq!(committed, 1);
        assert_eq!(rolled, 2);
        assert_eq!(by_reason[RollbackReason::Conflict.index()], 1);
        assert_eq!(by_reason[RollbackReason::Injected.index()], 1);
        m.commit_log().record_word(64);
        m.reset_run();
        let (agg, committed, rolled, by_reason) = m.run_snapshot();
        assert_eq!(agg.total(), 0);
        assert_eq!(committed + rolled, 0);
        assert_eq!(by_reason, [0; RollbackReason::COUNT]);
        assert_eq!(m.commit_log().commits(), 0);
    }
}
