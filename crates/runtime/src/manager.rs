//! The `ThreadManager` (paper §IV-B): virtual CPUs, speculative thread
//! dispatch, the join/validation/commit protocol and the tree-form mixed
//! forking model bookkeeping.
//!
//! Each virtual CPU (rank 1..=N) is backed by one worker OS thread and owns
//! a *slot* holding its dispatch channel, status flags and — once its task
//! finishes — the resulting buffers, statistics and list of unjoined
//! children.  Rank 0 is the non-speculative thread (the caller).
//!
//! The synchronization protocol mirrors the paper's flag-based barrier:
//! the joining thread signals the child (`sync_status` ≙ the `abort` /
//! result handshake here) and then waits for the child's outcome
//! (`valid_status` ≙ the deposited [`SpecOutcome`]), after which validation
//! and commit/rollback are performed and charged to the speculative
//! thread's statistics.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mutls_adaptive::{Governor, GrainController, SiteId, SiteOutcome};
use mutls_membuf::{
    Addr, AddressSpace, CommitLog, GlobalBuffer, GlobalMemory, LocalBuffer, MainMemory,
    RollbackReason, SpecFailure, Validation,
};
use mutls_metrics::{
    phase_share_gauges, CounterId, GaugeId, HistId, LabeledGauge, MetricsHub, MetricsSnapshot,
    ScrapeExtras,
};
use mutls_trace::{
    DoomSource, EventKind, LatencyPhase, PlanArm, Recorder, RollbackCause, TraceEvent,
    ValidateOutcome,
};

use crate::config::{RecoveryMode, RollbackSource, RuntimeConfig};
use crate::context::SpecContext;
use crate::fork_model::ForkModel;
use crate::stats::{Phase, ThreadStats};
use crate::task::{Rank, SpecAbort, TaskRef, TaskStatus};

/// Buffers owned by one speculative thread.
#[derive(Debug)]
pub struct ThreadBuffers {
    /// Buffered global (static/heap) accesses.
    pub global: GlobalBuffer,
    /// Buffered local (register/stack) variables and frame chain.
    pub local: LocalBuffer,
}

/// Everything a finished speculative task deposits for its joiner.
pub struct SpecOutcome {
    /// How the task stopped.
    pub status: TaskStatus,
    /// The task's buffers (taken by the joiner for validation/commit).
    pub buffers: ThreadBuffers,
    /// Ranks of children the task forked but never joined.
    pub children: Vec<Rank>,
    /// The task's accumulated statistics.
    pub stats: ThreadStats,
    /// When the task stopped (used to charge the waiting-to-be-joined time
    /// as speculative idle).
    pub finished_at: Instant,
}

/// Message sent to a worker thread.
pub enum WorkerMsg {
    /// Run a speculative task.
    Run(SpecRequest),
    /// Shut the worker down.
    Shutdown,
}

/// A dispatch request for a speculative task.
pub struct SpecRequest {
    /// The continuation closure to execute.
    pub task: TaskRef<SpecContext>,
    /// Register variables transferred from the parent at fork time
    /// (offset, raw value), installed in the child's bottom frame.
    pub regvars: Vec<(usize, mutls_membuf::RegisterValue)>,
}

const CPU_IDLE: u8 = 0;
const CPU_RUNNING: u8 = 1;

/// Per-virtual-CPU slot.
pub(crate) struct Slot {
    state: std::sync::atomic::AtomicU8,
    /// Set when the thread (or its subtree root) must abandon its work.
    abort: AtomicBool,
    /// Set by a committing writer that found this thread in the per-range
    /// reader registry: the thread's reads are (range-conservatively)
    /// stale and it should stop burning cycles now instead of failing
    /// validation at its join (targeted dooming).  The conflict is
    /// *published*, so the victim may attempt an in-flight value-predict
    /// retry against main memory before giving up.
    doomed: AtomicBool,
    /// Set by a speculative writer whose *buffered* store overlaps this
    /// thread's registered reads — the classic doomed-from-birth child of
    /// an inline re-execution.  The conflicting value lives in a private
    /// write-set, so no value revalidation against main memory can clear
    /// it: the victim must stop unconditionally.
    doomed_hard: AtomicBool,
    /// Set when nobody will ever join this thread; the worker cleans up
    /// after itself in that case.
    orphaned: AtomicBool,
    /// Fork-site ID the running task was launched from (governor key).
    site: AtomicU32,
    /// `ForkModel::index()` of the model the task was launched under.
    model: AtomicU8,
    /// Recorder timestamp of the task's dispatch (fork-to-commit latency).
    forked_ns: AtomicU64,
    /// Logical rank of the running task: its fork-clock stamp.  Children
    /// fork strictly after their forker acquired its own stamp, so a
    /// smaller value means the thread executes logically *earlier* work
    /// (exact under in-order forking; out-of-order forks can only
    /// overestimate a thread's logical position, which under-dooms —
    /// sound, since join-time validation stays the oracle).  Committing
    /// writers use it to skip dooming their logical predecessors, whose
    /// reads legitimately precede the write (the RMW-predecessor
    /// over-rollback bug).
    logical: AtomicU64,
    sender: Sender<WorkerMsg>,
    result: Mutex<Option<SpecOutcome>>,
    result_cv: Condvar,
}

impl Slot {
    fn new(sender: Sender<WorkerMsg>) -> Self {
        Slot {
            state: AtomicU8::new(CPU_IDLE),
            abort: AtomicBool::new(false),
            doomed: AtomicBool::new(false),
            doomed_hard: AtomicBool::new(false),
            orphaned: AtomicBool::new(false),
            site: AtomicU32::new(0),
            model: AtomicU8::new(ForkModel::Mixed.index() as u8),
            forked_ns: AtomicU64::new(0),
            logical: AtomicU64::new(0),
            sender,
            result: Mutex::new(None),
            result_cv: Condvar::new(),
        }
    }

    /// The (site, model) the current task was dispatched with.
    fn launch_info(&self) -> (SiteId, ForkModel) {
        let site = self.site.load(Ordering::Relaxed);
        let model = ForkModel::ALL[self.model.load(Ordering::Relaxed) as usize];
        (site, model)
    }
}

/// Accumulators for one speculative region run.
#[derive(Default)]
struct RunAccumulators {
    speculative: ThreadStats,
    committed_threads: u64,
    rolled_back_threads: u64,
    retried_threads: u64,
    rolled_back_by_reason: [u64; RollbackReason::COUNT],
}

/// Totals of one speculative region run (see
/// [`ThreadManager::run_snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct RunTotals {
    /// Combined statistics of every speculative thread.
    pub speculative: ThreadStats,
    /// Speculative threads that committed (including retried ones).
    pub committed: u64,
    /// Speculative threads that rolled back.
    pub rolled_back: u64,
    /// Committed threads whose conflict was repaired by
    /// value-predict-and-retry (a subset of `committed`, never counted in
    /// `rolled_back`).
    pub retried: u64,
    /// Rolled-back threads split by cause.
    pub by_reason: [u64; RollbackReason::COUNT],
}

/// How a validated join finished (see
/// [`ThreadManager::validate_and_commit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitKind {
    /// Validation passed outright.
    Committed,
    /// Validation initially conflicted but value prediction re-validated
    /// every conflicting read in place: the thread committed without
    /// re-execution.
    Retried,
}

impl CommitKind {
    /// True for a value-predict retry.
    pub fn retried(self) -> bool {
        matches!(self, CommitKind::Retried)
    }
}

/// The repair the recovery engine chose for one conflicting join — the
/// cheapest *sound* option available (see the README's decision table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryPlan {
    /// Every conflicting read still holds its first-read value: re-stamp
    /// and commit in place, no re-execution, nobody else is disturbed.
    Retry,
    /// Re-execute the child inline and eagerly doom exactly these ranks —
    /// the registered readers of the ranges the re-execution will rewrite.
    /// Always a subset of the threads the squash cascade would discard
    /// (every active speculative thread).
    DoomSet(Vec<Rank>),
    /// No registry answer (cascade mode, or an untracked rank read one of
    /// the ranges): fall back to lazy join-time discovery — the original
    /// squash-everything-younger behaviour.
    SquashCascade,
}

/// Central coordinator shared by every context and worker.
pub struct ThreadManager {
    config: RuntimeConfig,
    memory: Arc<GlobalMemory>,
    /// Versioned record of every write published to main memory; the
    /// substrate of real cross-thread conflict detection.
    commit_log: CommitLog,
    address_space: RwLock<AddressSpace>,
    slots: Vec<Slot>,
    /// Rank of the most recently speculated thread still in flight
    /// (0 = none); used by the in-order forking model.
    most_speculative: AtomicUsize,
    /// Number of speculative threads currently in flight.
    active: AtomicUsize,
    accum: Mutex<RunAccumulators>,
    rng: Mutex<SmallRng>,
    /// Monotone counter of speculation events (diagnostics).
    speculations: AtomicU64,
    /// Fork clock: source of the per-slot logical-rank stamps.  Starts at
    /// 1 so stamp 0 uniquely means "the non-speculative thread" (rank 0),
    /// which is logically earliest and whose commits doom unfiltered.
    fork_clock: AtomicU64,
    /// Adaptive speculation governor: consulted before a fork is granted a
    /// CPU, fed with per-site join outcomes.
    governor: Governor,
    /// Online adaptive-grain controller (None when
    /// `RuntimeConfig::grain_control` is disabled): ticked from the
    /// commit/validate bookkeeping paths, it turns the commit log's
    /// per-region telemetry into live [`CommitLog::regrain`] calls.
    grain: Option<Mutex<GrainController>>,
    /// Commit/validate events since the run started (drives the grain
    /// controller's tick cadence).
    grain_events: AtomicU64,
    /// The speculation flight recorder: per-lane lifecycle event rings
    /// (when `RuntimeConfig::trace.events` is on) plus the always-on
    /// phase-latency histograms.  Lanes 0..=num_cpus belong to the
    /// threads; lane num_cpus+1 is the control plane (grain-controller
    /// ticks), serialized by the controller lock.
    recorder: Recorder,
    /// Zero point of recorder timestamps.
    trace_origin: Instant,
    /// The live telemetry plane: a sharded lock-free counter/gauge/
    /// histogram registry plus the bounded snapshot series the sampler
    /// fills.  Disabled (the default) it is a single always-false branch
    /// per push, mirroring the recorder's no-op discipline.
    metrics: Arc<MetricsHub>,
}

impl ThreadManager {
    /// Create the manager plus the receivers its workers will consume.
    pub fn new(config: RuntimeConfig) -> (Arc<Self>, Vec<Receiver<WorkerMsg>>) {
        let memory = Arc::new(GlobalMemory::new(config.memory_bytes));
        let mut slots = Vec::with_capacity(config.num_cpus);
        let mut receivers = Vec::with_capacity(config.num_cpus);
        for _ in 0..config.num_cpus {
            let (tx, rx) = unbounded();
            slots.push(Slot::new(tx));
            receivers.push(rx);
        }
        let mut space = AddressSpace::new();
        // The whole arena below the allocation cursor grows as the program
        // allocates; individual allocations register themselves.
        space.register(GlobalMemory::BASE_ADDR, 0);
        // Size the log's dense fast path to the arena so every stamp and
        // lookup is a single atomic access with bounded memory; grain and
        // shard count come from the runtime configuration.  Under grain
        // control the configured grain is the floor the table is
        // allocated at and regions start at the controller's (usually
        // coarser) initial grain.
        // The recovery engine owns the validation protocol, so its ring
        // depth overrides whatever the raw commit-log config carries.
        let log_config = config.commit_log.ring_depth(config.recovery.ring_depth);
        let commit_log = if config.grain_control.enabled {
            CommitLog::with_initial_grain(
                log_config,
                memory.size_bytes(),
                config.grain_control.initial_grain_log2,
            )
        } else {
            CommitLog::with_config(log_config, memory.size_bytes())
        };
        let grain = config.grain_control.enabled.then(|| {
            Mutex::new(GrainController::new(
                config.grain_control,
                commit_log.config().grain_log2,
            ))
        });
        let mgr = Arc::new(ThreadManager {
            config,
            memory,
            commit_log,
            address_space: RwLock::new(space),
            slots,
            most_speculative: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            accum: Mutex::new(RunAccumulators::default()),
            rng: Mutex::new(SmallRng::seed_from_u64(config.seed)),
            speculations: AtomicU64::new(0),
            fork_clock: AtomicU64::new(1),
            governor: Governor::new(config.governor),
            grain,
            grain_events: AtomicU64::new(0),
            recorder: Recorder::new(config.trace, config.num_cpus + 2),
            trace_origin: Instant::now(),
            // Shards for ranks 0..=num_cpus plus the hub's own control
            // shard for unranked pushes.
            metrics: Arc::new(MetricsHub::new(config.metrics, config.num_cpus + 1)),
        });
        (mgr, receivers)
    }

    /// The adaptive speculation governor.
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// The speculation flight recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The live telemetry hub (registry + snapshot series).
    pub fn metrics(&self) -> &Arc<MetricsHub> {
        &self.metrics
    }

    /// Nanoseconds since the recorder's origin (the event/latency clock).
    #[inline]
    pub fn trace_now_ns(&self) -> u64 {
        self.trace_origin.elapsed().as_nanos() as u64
    }

    /// Emit one lifecycle event on `rank`'s lane, stamped with the current
    /// recorder clock and commit-log epoch.  A single branch when event
    /// tracing is off.
    #[inline]
    pub fn trace_event(&self, rank: Rank, site: SiteId, kind: EventKind) {
        if !self.recorder.enabled() {
            return;
        }
        self.recorder.emit(TraceEvent {
            ts: self.trace_now_ns(),
            rank: rank as u32,
            site,
            epoch: self.commit_log.epoch(),
            kind,
        });
    }

    /// The control-plane event lane (grain-controller ticks): one past the
    /// last thread rank, so its events never race a thread's SPSC ring.
    fn control_lane(&self) -> Rank {
        self.slots.len() + 1
    }

    /// The fork-site id `rank`'s current task was launched from (0 for the
    /// non-speculative thread).
    fn site_of(&self, rank: Rank) -> SiteId {
        if rank == 0 || rank > self.slots.len() {
            0
        } else {
            self.slots[rank - 1].site.load(Ordering::Relaxed)
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Shared main memory arena.
    pub fn memory(&self) -> &Arc<GlobalMemory> {
        &self.memory
    }

    /// The shared commit log every published write is recorded in.
    pub fn commit_log(&self) -> &CommitLog {
        &self.commit_log
    }

    /// Register `[addr, addr+len)` as valid global data.
    pub fn register_range(&self, addr: Addr, len: u64) {
        self.address_space.write().register(addr, len);
    }

    /// Unregister a range (object deallocation).
    pub fn unregister_range(&self, addr: Addr, len: u64) {
        self.address_space.write().unregister(addr, len);
    }

    /// Whether an access is inside the registered global address space.
    ///
    /// Anything handed out by the arena's bump allocator is implicitly
    /// registered (allocation *is* registration, as in §IV-G1 where heap
    /// allocation calls are intercepted); explicitly registered ranges are
    /// honoured in addition.
    pub fn range_registered(&self, addr: Addr, len: u64) -> bool {
        if addr >= GlobalMemory::BASE_ADDR && addr + len <= self.memory.allocated_bytes() {
            return true;
        }
        self.address_space.read().contains(addr, len)
    }

    /// Count one commit/validate event and, every
    /// [`GrainControlConfig::tick_commits`](mutls_adaptive::GrainControlConfig::tick_commits),
    /// run an adaptive-grain controller tick: snapshot the commit log's
    /// per-region telemetry, apply the resulting regrains and doom the
    /// collected readers.  The doom is conservative recovery, not a
    /// penalty: a regrained region's outstanding snapshots are about to
    /// fail validation anyway, and a value-predict retry can still clear
    /// the doom in place.  `try_lock` keeps ticking off the hot path —
    /// if another thread is mid-tick, this event's tick is simply
    /// skipped.
    pub fn tick_grain_controller(&self) {
        let Some(controller) = &self.grain else {
            return;
        };
        let cadence = self.config.grain_control.tick_commits.max(1);
        if !(self.grain_events.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(cadence) {
            return;
        }
        let Some(mut controller) = controller.try_lock() else {
            return;
        };
        let profiles = self.commit_log.region_profiles();
        let lane = self.control_lane();
        let mut actions = 0u32;
        for action in controller.tick(&profiles) {
            let from = self.commit_log.grain_of_region(action.region);
            let (_, readers) = self
                .commit_log
                .regrain(action.region, action.new_grain_log2);
            self.trace_event(
                lane,
                0,
                EventKind::Regrain {
                    region: action.region,
                    from,
                    to: action.new_grain_log2,
                },
            );
            let ranks: Vec<Rank> = readers.ranks().collect();
            if self.doom_ranks(&ranks) > 0 {
                self.trace_event(
                    lane,
                    0,
                    EventKind::Doom {
                        source: DoomSource::Regrain,
                    },
                );
            }
            actions += 1;
        }
        self.trace_event(lane, 0, EventKind::GrainTick { actions });
    }

    /// The live grain the finished thread's traffic ran at, for per-site
    /// reporting: the static configured grain when the controller is
    /// disabled, else the current grain of the thread's first written
    /// (falling back to first read) region.
    pub fn observed_grain(&self, outcome: &SpecOutcome) -> u32 {
        if self.grain.is_none() {
            return self.commit_log.config().grain_log2;
        }
        outcome
            .buffers
            .global
            .write_addresses()
            .next()
            .or_else(|| outcome.buffers.global.read_addresses().next())
            .map(|addr| self.commit_log.grain_of(addr))
            .unwrap_or_else(|| self.commit_log.config().grain_log2)
    }

    /// Total number of speculation events since construction.
    pub fn total_speculations(&self) -> u64 {
        self.speculations.load(Ordering::Relaxed)
    }

    /// Number of speculative threads currently in flight.
    pub fn active_speculations(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    // ----- fork path -------------------------------------------------

    /// Whether `model` permits `forker` to fork right now — the ordering
    /// half of [`try_acquire_cpu`](Self::try_acquire_cpu), exposed so the
    /// fork path can distinguish a model denial from CPU exhaustion in
    /// the trace (racy against concurrent joins, which is fine for
    /// attribution).
    pub fn model_allows_fork(&self, forker: Rank, model: ForkModel) -> bool {
        let forker_is_spec = forker != 0;
        let most = self.most_speculative.load(Ordering::Acquire);
        let is_most = if self.active.load(Ordering::Acquire) == 0 {
            !forker_is_spec
        } else {
            forker == most
        };
        model.allows_fork(forker_is_spec, is_most)
    }

    /// Try to acquire an idle virtual CPU for a fork requested by
    /// `forker` under `model` (paper: `MUTLS_get_CPU`).
    pub fn try_acquire_cpu(&self, forker: Rank, model: ForkModel) -> Option<Rank> {
        let forker_is_spec = forker != 0;
        let most = self.most_speculative.load(Ordering::Acquire);
        let is_most = if self.active.load(Ordering::Acquire) == 0 {
            !forker_is_spec
        } else {
            forker == most
        };
        if !model.allows_fork(forker_is_spec, is_most) {
            return None;
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .state
                .compare_exchange(CPU_IDLE, CPU_RUNNING, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let rank = i + 1;
                slot.abort.store(false, Ordering::Release);
                slot.doomed.store(false, Ordering::Release);
                slot.doomed_hard.store(false, Ordering::Release);
                slot.orphaned.store(false, Ordering::Release);
                slot.logical.store(
                    self.fork_clock.fetch_add(1, Ordering::Relaxed),
                    Ordering::Release,
                );
                *slot.result.lock() = None;
                self.active.fetch_add(1, Ordering::AcqRel);
                self.most_speculative.store(rank, Ordering::Release);
                self.speculations.fetch_add(1, Ordering::Relaxed);
                let registry = self.metrics.registry();
                registry.add(forker, CounterId::Forks, 1);
                registry.gauge_add(GaugeId::InFlightSpeculations, 1);
                return Some(rank);
            }
        }
        None
    }

    /// Dispatch a speculative task to an acquired CPU.  `site` and `model`
    /// identify the fork point and forking model for governor feedback.
    pub fn dispatch(&self, rank: Rank, site: SiteId, model: ForkModel, request: SpecRequest) {
        let slot = &self.slots[rank - 1];
        slot.site.store(site, Ordering::Relaxed);
        slot.model.store(model.index() as u8, Ordering::Relaxed);
        slot.forked_ns.store(self.trace_now_ns(), Ordering::Relaxed);
        self.governor.record_fork(site, model);
        slot.sender
            .send(WorkerMsg::Run(request))
            .expect("worker thread alive");
    }

    /// Signal every worker to shut down (used by `Runtime::drop`).
    pub fn shutdown_workers(&self) {
        for slot in &self.slots {
            let _ = slot.sender.send(WorkerMsg::Shutdown);
        }
    }

    // ----- join path -------------------------------------------------

    /// True if the speculative thread `rank` has been asked to abort.
    pub fn abort_requested(&self, rank: Rank) -> bool {
        rank != 0 && self.slots[rank - 1].abort.load(Ordering::Relaxed)
    }

    /// True if the speculative thread `rank` was doomed surgically by a
    /// committing writer (its registered reads are stale; an in-flight
    /// value-predict retry may still clear it).
    pub fn doom_requested(&self, rank: Rank) -> bool {
        rank != 0 && self.slots[rank - 1].doomed.load(Ordering::Relaxed)
    }

    /// True if the speculative thread `rank` was doomed by a *buffered*
    /// (uncommitted) write overlapping its reads — unconditional, no
    /// value revalidation can clear it (the conflicting value is in a
    /// private write-set, invisible in main memory).
    pub fn hard_doom_requested(&self, rank: Rank) -> bool {
        rank != 0 && self.slots[rank - 1].doomed_hard.load(Ordering::Relaxed)
    }

    /// Clear `rank`'s (soft) doom flag after an in-flight value-predict
    /// retry re-validated (and re-stamped) every conflicting read: the
    /// doom was range-induced false sharing (or a value-identical write)
    /// and the thread may keep running.  A commit racing the retry
    /// re-dooms or is caught by join-time validation against the fresh
    /// stamps.  Hard dooms are never cleared.
    pub fn clear_doom(&self, rank: Rank) {
        if rank != 0 {
            self.slots[rank - 1].doomed.store(false, Ordering::Release);
        }
    }

    /// Doom exactly the threads registered as readers of the ranges
    /// covering `addrs` — called by a committing writer right after the
    /// ranges were stamped (or by a rollback about to re-execute them).
    /// `exclude` (the finishing child, whose registrations are already
    /// dead) is never doomed.  Returns how many threads were doomed.
    /// Since the registry spills ranks past the bitmask window into
    /// per-range hash sets, enumeration is complete at any thread count
    /// — there is no overflow fallback any more.
    ///
    /// In [`RecoveryMode::Cascade`] the registry is never consulted and
    /// nothing is doomed (conflicts surface at join-time validation, the
    /// pre-registry behaviour).  Dooming is sound in every interleaving:
    /// a doomed thread rolls back and re-executes, so a *spurious* doom
    /// (stale registration, or a registration racing the commit) costs
    /// time, never correctness — and join-time validation remains the
    /// oracle for anything the registry missed.
    pub fn doom_readers<I: IntoIterator<Item = Addr>>(&self, addrs: I, exclude: Rank) -> u64 {
        self.doom_readers_with(addrs, exclude, false)
    }

    /// Like [`doom_readers`](Self::doom_readers), but the conflicting
    /// write is *buffered* (a speculative writer's private write-set), so
    /// the victims' doom is **hard**: no value revalidation against main
    /// memory can clear it.  This is what stops the doomed-from-birth
    /// children of an inline re-execution within one poll interval —
    /// they read main memory underneath their (re-executing) parent's
    /// uncommitted writes and can never validate.
    pub fn doom_readers_hard<I: IntoIterator<Item = Addr>>(&self, addrs: I, exclude: Rank) -> u64 {
        self.doom_readers_with(addrs, exclude, true)
    }

    /// The logical-rank stamp of `rank`'s current task (0 for the
    /// non-speculative thread, which is logically earliest).
    fn logical_of(&self, rank: Rank) -> u64 {
        if rank == 0 || rank > self.slots.len() {
            0
        } else {
            self.slots[rank - 1].logical.load(Ordering::Acquire)
        }
    }

    fn doom_readers_with<I: IntoIterator<Item = Addr>>(
        &self,
        addrs: I,
        exclude: Rank,
        hard: bool,
    ) -> u64 {
        if self.config.recovery.mode != RecoveryMode::Targeted {
            return 0;
        }
        let set = self.commit_log.take_readers(addrs);
        if set.is_empty() {
            return 0;
        }
        // Logical-order filter: a reader forked *before* the committing
        // writer executes logically earlier work, so its reads are
        // legitimately allowed to precede the write (the RMW-predecessor
        // pattern: the forker read the cell, forked the continuation,
        // and the continuation's commit must not doom it).  Skipping a
        // predecessor is always sound — dooming only accelerates the
        // verdict join-time validation delivers anyway.
        let committer = self.logical_of(exclude);
        let mut doomed = 0;
        for rank in set.ranks() {
            if rank == exclude || rank > self.slots.len() {
                continue;
            }
            let slot = &self.slots[rank - 1];
            // Only running threads are doomed — the doom set is thereby a
            // subset of what the cascade would squash (every active
            // speculative thread); an idle slot's registration is stale.
            if slot.state.load(Ordering::Acquire) == CPU_RUNNING
                && slot.logical.load(Ordering::Acquire) >= committer
            {
                if hard {
                    slot.doomed_hard.store(true, Ordering::Release);
                } else {
                    slot.doomed.store(true, Ordering::Release);
                }
                doomed += 1;
            }
        }
        doomed
    }

    /// The recovery engine's choice for a join that failed dependence
    /// validation and could not retry: surgically doom the registered
    /// readers of the child's write ranges (the re-execution is about to
    /// rewrite them), or fall back to the lazy squash cascade when the
    /// registry is not in use ([`RecoveryMode::Cascade`]).  Registry
    /// enumeration is complete at any thread count since ranks past the
    /// bitmask window spill into per-range hash sets, so overflow no
    /// longer forces the cascade.
    pub fn plan_rollback_recovery(&self, child: Rank, outcome: &SpecOutcome) -> RecoveryPlan {
        if self.config.recovery.mode != RecoveryMode::Targeted {
            return RecoveryPlan::SquashCascade;
        }
        let set = self
            .commit_log
            .take_readers(outcome.buffers.global.write_addresses());
        // Same logical-order filter as `doom_readers_with`: the failing
        // child's re-execution rewrites its ranges, but readers running
        // logically *earlier* work are entitled to the pre-write values.
        let committer = self.logical_of(child);
        RecoveryPlan::DoomSet(
            set.ranks()
                .filter(|&r| r != child && self.logical_of(r) >= committer)
                .collect(),
        )
    }

    /// Block until the speculative thread `rank` deposits its outcome, then
    /// take it.
    pub fn wait_outcome(&self, rank: Rank) -> SpecOutcome {
        let slot = &self.slots[rank - 1];
        let mut guard = slot.result.lock();
        while guard.is_none() {
            slot.result_cv.wait(&mut guard);
        }
        guard.take().expect("outcome present")
    }

    /// Like [`wait_outcome`](Self::wait_outcome), but the wait is
    /// abandoned (returning `None`) when `abandon()` reports that the
    /// *waiting* thread should stop — it was doomed or aborted while
    /// blocked at the join.  Without this, a doomed speculative joiner
    /// would sit out its child's entire (equally doomed) subtree before
    /// noticing; with it, the doom unwinds the whole blocked chain within
    /// the polling interval.  The abandoning caller still owns the child
    /// and must reap it.
    pub fn wait_outcome_where(
        &self,
        rank: Rank,
        mut abandon: impl FnMut() -> bool,
    ) -> Option<SpecOutcome> {
        const DOOM_POLL: std::time::Duration = std::time::Duration::from_micros(100);
        let slot = &self.slots[rank - 1];
        let mut guard = slot.result.lock();
        loop {
            if let Some(outcome) = guard.take() {
                return Some(outcome);
            }
            if abandon() {
                return None;
            }
            let _ = slot.result_cv.wait_for(&mut guard, DOOM_POLL);
        }
    }

    /// Deposit the outcome of a finished speculative task.  Returns `true`
    /// if someone will join it, `false` if it was orphaned and the worker
    /// must clean up after itself.
    pub fn deposit_outcome(&self, rank: Rank, outcome: SpecOutcome) -> bool {
        let slot = &self.slots[rank - 1];
        {
            let mut guard = slot.result.lock();
            *guard = Some(outcome);
        }
        slot.result_cv.notify_all();
        if slot.orphaned.load(Ordering::Acquire) {
            // Re-take it; if the canceller got there first we are done.
            let taken = slot.result.lock().take();
            if let Some(outcome) = taken {
                self.finish_discarded(rank, outcome, SpecFailure::Cascaded);
                return false;
            }
        }
        true
    }

    /// Release a virtual CPU after its outcome has been consumed.
    pub fn release_cpu(&self, rank: Rank, joiner: Rank) {
        let slot = &self.slots[rank - 1];
        slot.state.store(CPU_IDLE, Ordering::Release);
        self.active.fetch_sub(1, Ordering::AcqRel);
        self.metrics
            .registry()
            .gauge_add(GaugeId::InFlightSpeculations, -1);
        let _ = self.most_speculative.compare_exchange(
            rank,
            joiner,
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    /// Record a discarded (rolled back / orphaned) speculative thread.
    fn finish_discarded(&self, rank: Rank, outcome: SpecOutcome, reason: SpecFailure) {
        // Cascade into the subtree first.
        for child in &outcome.children {
            self.reap_subtree(*child);
        }
        // Dead registrations only cause spurious dooms.
        self.commit_log
            .unregister_reader(outcome.buffers.global.read_addresses(), rank);
        let mut stats = outcome.stats;
        let wasted = stats.mark_work_wasted();
        self.push_rollback_metrics(rank, RollbackReason::from(reason), wasted, stats.total());
        self.report_discard_to_governor(rank, &stats, reason);
        {
            let mut accum = self.accum.lock();
            accum.speculative.merge(&stats);
            accum.rolled_back_threads += 1;
            accum.rolled_back_by_reason[RollbackReason::from(reason).index()] += 1;
        }
        self.release_cpu(rank, 0);
    }

    /// Feed one rolled-back thread into the telemetry registry: the
    /// rollback count, its cause, and the wasted cycles it burned (both
    /// as a counter and as a histogram observation for attribution).
    fn push_rollback_metrics(&self, rank: Rank, reason: RollbackReason, wasted: u64, total: u64) {
        let registry = self.metrics.registry();
        if !registry.enabled() {
            return;
        }
        registry.add(rank, CounterId::Rollbacks, 1);
        registry.add(rank, CounterId::rollback_reason(reason.index()), 1);
        registry.add(rank, CounterId::WastedCycles, wasted);
        registry.observe(HistId::RollbackWastedCycles, wasted);
        registry.observe(HistId::ThreadCycles, total);
    }

    /// Feed a discarded thread's outcome into the governor's site profile.
    fn report_discard_to_governor(&self, rank: Rank, stats: &ThreadStats, reason: SpecFailure) {
        let (site, model) = self.slots[rank - 1].launch_info();
        self.governor.record_outcome(
            site,
            &SiteOutcome::rolled_back(
                reason,
                stats.get(Phase::WastedWork),
                stats.get(Phase::Idle),
                model,
            ),
        );
    }

    /// Abort and *synchronously* drain a speculative subtree: waits for
    /// every thread in the subtree to stop, accounts their work as wasted
    /// and reclaims their CPUs.  Used when a speculative region ends with
    /// children still unjoined.
    pub fn drain_subtree(&self, rank: Rank) {
        let slot = &self.slots[rank - 1];
        slot.abort.store(true, Ordering::Release);
        let outcome = self.wait_outcome(rank);
        for child in &outcome.children {
            self.drain_subtree(*child);
        }
        self.commit_log
            .unregister_reader(outcome.buffers.global.read_addresses(), rank);
        let mut stats = outcome.stats;
        let wasted = stats.mark_work_wasted();
        self.push_rollback_metrics(
            rank,
            RollbackReason::from(SpecFailure::Cascaded),
            wasted,
            stats.total(),
        );
        self.report_discard_to_governor(rank, &stats, SpecFailure::Cascaded);
        {
            let mut accum = self.accum.lock();
            accum.speculative.merge(&stats);
            accum.rolled_back_threads += 1;
            accum.rolled_back_by_reason[RollbackReason::from(SpecFailure::Cascaded).index()] += 1;
        }
        self.release_cpu(rank, 0);
    }

    /// Abort an entire speculative subtree rooted at `rank` (paper §IV-F:
    /// cascading rollbacks are confined to the subtree).
    pub fn reap_subtree(&self, rank: Rank) {
        let slot = &self.slots[rank - 1];
        slot.abort.store(true, Ordering::Release);
        slot.orphaned.store(true, Ordering::Release);
        // If the outcome is already there, clean up now; otherwise the
        // worker will observe `orphaned` when it deposits.
        let taken = slot.result.lock().take();
        if let Some(outcome) = taken {
            self.finish_discarded(rank, outcome, SpecFailure::Cascaded);
        }
    }

    /// Opportunistically **adopt** the subtree rooted at `rank` instead of
    /// reaping it: a grandchild left unjoined by a child that just
    /// committed ran logically *after* state that has already reached the
    /// commit log, so its work is only stale if validation says so — it
    /// must not be re-speculated from scratch just because its joiner
    /// finished first.  Non-blocking: a thread that already deposited a
    /// `Completed` outcome is validated and committed/absorbed exactly
    /// like a joined child (recursing into *its* unjoined children on
    /// success); anything still running, failed, or conflicting is reaped
    /// as before.  Returns the number of threads whose work was salvaged.
    pub fn adopt_subtree(&self, rank: Rank, mut parent_buffer: Option<&mut GlobalBuffer>) -> u64 {
        let taken = self.slots[rank - 1].result.lock().take();
        let Some(mut outcome) = taken else {
            // Still running: joining would block the adopter on an
            // unbounded subtree — fall back to the reap.
            self.reap_subtree(rank);
            return 0;
        };
        if outcome.status != TaskStatus::Completed {
            self.finish_discarded(rank, outcome, SpecFailure::Cascaded);
            return 0;
        }
        let verdict = self.validate_and_commit(rank, &mut outcome, parent_buffer.as_deref_mut());
        outcome.buffers.global.clear();
        let children = std::mem::take(&mut outcome.children);
        let (site, model) = self.slots[rank - 1].launch_info();
        match verdict {
            Ok(kind) => {
                self.governor.record_outcome(
                    site,
                    &SiteOutcome::committed(
                        outcome.stats.get(Phase::Work),
                        outcome.stats.get(Phase::Idle),
                        model,
                    )
                    .with_retry(kind.retried()),
                );
                self.record_speculative(&outcome.stats, None, kind.retried());
                self.release_cpu(rank, 0);
                let mut adopted = 1;
                for grandchild in children {
                    adopted += self.adopt_subtree(grandchild, parent_buffer.as_deref_mut());
                }
                adopted
            }
            Err(reason) => {
                // `validate_and_commit` already unregistered the readers
                // and planned the rollback recovery; the subtree below a
                // conflicting thread read underneath it and only
                // re-speculation repairs it.
                outcome.stats.mark_work_wasted();
                self.governor.record_outcome(
                    site,
                    &SiteOutcome::rolled_back(
                        reason,
                        outcome.stats.get(Phase::WastedWork),
                        outcome.stats.get(Phase::Idle),
                        model,
                    ),
                );
                self.record_speculative(&outcome.stats, Some(reason), false);
                self.release_cpu(rank, 0);
                for grandchild in children {
                    self.reap_subtree(grandchild);
                }
                0
            }
        }
    }

    /// Validate a finished child and either publish, retry or discard its
    /// buffers — the join half of the **recovery engine**, which picks the
    /// cheapest sound repair per conflict (see [`RecoveryPlan`]).
    ///
    /// `child` is the virtual CPU the task ran on (0 in unit tests that
    /// drive the protocol by hand); `parent_buffer` is `Some` when the
    /// joiner is itself speculative, in which case a valid child is
    /// *absorbed* into the parent's buffers instead of being committed to
    /// main memory.
    ///
    /// Validation is the real dependence check of paper §IV-F: every
    /// read-set entry is checked against the shared [`CommitLog`] — did a
    /// logically earlier thread commit a write to this address *after* we
    /// read it?  (Joins happen in logical order — speculative parents
    /// absorb their children and only the non-speculative joiner publishes
    /// to main memory — so every commit racing a child is by a logical
    /// predecessor.)  When the joiner is itself speculative, the child's
    /// reads are additionally compared against the parent's uncommitted
    /// write-set overlay, since the child could not observe those
    /// logically earlier writes at all.
    ///
    /// The recovery ladder on a conflict:
    ///
    /// 1. **Value-predict retry** (when enabled): if every conflicting
    ///    read still holds its first-read value, re-stamp and commit in
    ///    place — no re-execution, `Ok(CommitKind::Retried)`.
    /// 2. **Targeted dooming**: otherwise enumerate the registered
    ///    readers of the child's write ranges (the inline re-execution is
    ///    about to rewrite them) and doom exactly those threads.
    /// 3. **Squash cascade**: when the registry cannot answer (cascade
    ///    mode or overflow), fall back to lazy join-time discovery.
    ///
    /// Returns `Ok(kind)` on commit and `Err(reason)` on rollback.
    /// Validation/commit/finalize time is charged to the child's
    /// statistics, matching the paper's attribution of those phases to the
    /// speculative path.
    pub fn validate_and_commit(
        &self,
        child: Rank,
        outcome: &mut SpecOutcome,
        parent_buffer: Option<&mut GlobalBuffer>,
    ) -> Result<CommitKind, SpecFailure> {
        let started = Instant::now();
        let mem: &GlobalMemory = &self.memory;
        let site = self.site_of(child);
        self.trace_event(
            child,
            site,
            EventKind::ValidateBegin {
                ranges: outcome.buffers.global.read_set_len() as u32,
            },
        );

        let failure = match outcome.status {
            TaskStatus::Failed(reason) => Some(reason),
            TaskStatus::Completed | TaskStatus::Barrier => None,
        };
        if let Some(reason) = failure {
            if reason == SpecFailure::ReadConflict && self.grain.is_some() {
                // An eagerly doomed thread never reaches join-time
                // validation, but its read set still holds the stale
                // entries: attribute them so the grain controller sees
                // contended regions regardless of *when* the conflict
                // surfaced.
                outcome
                    .buffers
                    .global
                    .attribute_conflicts(&self.commit_log, mem);
            }
            // The thread is dead either way: its registrations would only
            // cause spurious dooms from here on.  In-flight doom-watch
            // revalidations may still have precise-passed before the final
            // failure — keep those counted.
            outcome.stats.counters.precise_passes += outcome.buffers.global.stats().precise_passes;
            self.commit_log
                .unregister_reader(outcome.buffers.global.read_addresses(), child);
            let validate_ns = elapsed_ns(started);
            outcome.stats.add(Phase::Validation, validate_ns);
            self.recorder
                .latency()
                .record(LatencyPhase::Validation, validate_ns);
            self.trace_event(
                child,
                site,
                EventKind::ValidateEnd {
                    outcome: ValidateOutcome::Failed,
                },
            );
            self.trace_event(
                child,
                site,
                EventKind::Rollback {
                    reason: rollback_cause(reason),
                    plan: PlanArm::None,
                },
            );
            return Err(reason);
        }

        // Dependence validation against the commit log (range grain,
        // classifying suspected false sharing), plus the parent write-set
        // overlay when the joiner is speculative.
        let precise_before = outcome.buffers.global.stats().precise_passes;
        let log_verdict = outcome
            .buffers
            .global
            .validate_against_with(&self.commit_log, mem);
        let mut retried = false;
        let log_valid = match log_verdict {
            Validation::Valid => true,
            Validation::Conflict { .. } if self.config.recovery.value_predict => {
                // Recovery rung 1 — value prediction: the current
                // committed values validate the reads, so the execution
                // is equivalent to one that read after those commits.
                retried = outcome
                    .buffers
                    .global
                    .revalidate_by_value(&self.commit_log, mem);
                retried
            }
            Validation::Conflict { .. } => false,
        };
        // The joining parent's view of a word: its own uncommitted
        // write-set overlaid on main memory.  Shared by overlay
        // validation and (on its failure) the per-region conflict
        // attribution, so the mask-merge semantics cannot drift apart.
        let overlay_view = |parent: &GlobalBuffer, addr: Addr| match parent
            .write_entries()
            .find(|e| e.addr == addr)
        {
            Some(e) if e.mask == u64::MAX => e.data,
            Some(e) => (mem.read_word(addr) & !e.mask) | (e.data & e.mask),
            None => mem.read_word(addr),
        };
        let valid = log_valid
            && match &parent_buffer {
                None => true,
                Some(parent) => outcome
                    .buffers
                    .global
                    .validate_view(|addr| overlay_view(parent, addr)),
            };
        let validate_ns = elapsed_ns(started);
        outcome.stats.add(Phase::Validation, validate_ns);
        self.recorder
            .latency()
            .record(LatencyPhase::Validation, validate_ns);
        if retried {
            // The in-place re-stamp is the whole repair for this arm.
            self.recorder
                .latency()
                .record(LatencyPhase::RepairRetry, validate_ns);
        }
        // Single capture point for the buffer's ring-precision counter:
        // it covers both this join-time validation and any in-flight
        // doom-watch revalidations the thread survived along the way.
        let precise_total = outcome.buffers.global.stats().precise_passes;
        outcome.stats.counters.precise_passes += precise_total;
        self.trace_event(
            child,
            site,
            EventKind::ValidateEnd {
                outcome: if !valid {
                    if matches!(
                        log_verdict,
                        Validation::Conflict {
                            suspected_false_sharing: true
                        }
                    ) {
                        // All conflicting words still held their
                        // first-read values: the doom is grain- or
                        // ring-overflow conservatism, not a proven
                        // dependence violation.
                        ValidateOutcome::ConservativeDoom
                    } else {
                        ValidateOutcome::Conflict
                    }
                } else if retried {
                    ValidateOutcome::Retried
                } else if precise_total > precise_before {
                    ValidateOutcome::PrecisePass
                } else {
                    ValidateOutcome::Clean
                },
            },
        );
        if !valid {
            if self.grain.is_some() {
                // Per-region conflict attribution — the grain
                // controller's split signal (only the extra read-set scan
                // is gated; the counters themselves are always-on).
                if !log_valid {
                    outcome
                        .buffers
                        .global
                        .attribute_conflicts(&self.commit_log, mem);
                } else if let Some(parent) = &parent_buffer {
                    // The conflict lives in the speculative parent's
                    // uncommitted overlay, invisible to the commit log;
                    // attribute the mismatching words' regions directly
                    // (true sharing by construction — the values differ).
                    // Dedup with a real set: read-set order is temporal,
                    // so interleaved regions are not adjacent.
                    let mut seen: std::collections::HashSet<mutls_membuf::RegionId> =
                        std::collections::HashSet::new();
                    for entry in outcome.buffers.global.read_entries() {
                        if overlay_view(parent, entry.addr) == entry.data {
                            continue;
                        }
                        if seen.insert(self.commit_log.region_of(entry.addr)) {
                            self.commit_log.note_conflict(entry.addr, false);
                        }
                    }
                }
            }
            if let Validation::Conflict {
                suspected_false_sharing: true,
            } = log_verdict
            {
                // Every conflicting word still held its first-read value:
                // the rollback is most likely grain-induced false sharing
                // (or a value-identical ABA write) — recorded so the
                // governor and the reports can tell the regimes apart.
                outcome.stats.counters.false_sharing_suspects += 1;
            }
            self.commit_log
                .unregister_reader(outcome.buffers.global.read_addresses(), child);
            // Recovery rungs 2/3 — the re-execution will rewrite the
            // child's write ranges; doom their registered readers now
            // instead of letting them burn their whole conflict window.
            let plan_arm = match self.plan_rollback_recovery(child, outcome) {
                RecoveryPlan::Retry => unreachable!("retry handled above"),
                RecoveryPlan::DoomSet(ranks) => {
                    let doomed = self.doom_ranks(&ranks);
                    outcome.stats.counters.targeted_dooms += doomed;
                    if doomed > 0 {
                        self.trace_event(
                            child,
                            site,
                            EventKind::Doom {
                                source: DoomSource::Rollback,
                            },
                        );
                    }
                    PlanArm::DoomSet
                }
                RecoveryPlan::SquashCascade => {
                    outcome.stats.counters.cascade_fallbacks += 1;
                    PlanArm::Cascade
                }
            };
            self.trace_event(
                child,
                site,
                EventKind::Rollback {
                    reason: RollbackCause::Conflict,
                    plan: plan_arm,
                },
            );
            return Err(SpecFailure::ReadConflict);
        }

        // Injected rollback — only under the opt-in sensitivity mode
        // (`RollbackSource::Injected`, paper §V-D).
        if self.draw_injected_rollback() {
            self.commit_log
                .unregister_reader(outcome.buffers.global.read_addresses(), child);
            self.trace_event(
                child,
                site,
                EventKind::Rollback {
                    reason: RollbackCause::Injected,
                    plan: PlanArm::None,
                },
            );
            return Err(SpecFailure::Injected);
        }

        // Commit.  Publishing to main memory records the batch in the
        // commit log (memory first, then the version bump — see the
        // ordering protocol on `CommitLog`), which is what dooms any
        // still-running logical successor that read stale values — now
        // surgically, through the reader registry.
        let commit_started = Instant::now();
        let commit_result = match parent_buffer {
            None => {
                // The child's own registrations die before its writes
                // publish, so an RMW thread never dooms itself.
                self.commit_log
                    .unregister_reader(outcome.buffers.global.read_addresses(), child);
                outcome.buffers.global.commit(mem);
                if outcome.buffers.global.write_set_len() > 0 {
                    let lock_started = Instant::now();
                    let (_, cas_retries) = self
                        .commit_log
                        .record_counted(outcome.buffers.global.write_addresses());
                    let lock_ns = elapsed_ns(lock_started);
                    self.recorder
                        .latency()
                        .record(LatencyPhase::CommitLockWait, lock_ns);
                    self.trace_event(child, site, EventKind::CommitLockWait { ns: lock_ns });
                    // Contended lock-free batches surface their CAS-loop
                    // losses; uncontended (and locked-mode) commits stay
                    // silent, so the sample count doubles as a contention
                    // signal.
                    if cas_retries > 0 {
                        self.recorder
                            .latency()
                            .record(LatencyPhase::CommitCasRetry, cas_retries);
                        self.trace_event(
                            child,
                            site,
                            EventKind::CommitCasRetry {
                                attempts: cas_retries,
                            },
                        );
                    }
                    let doomed = self.doom_readers(outcome.buffers.global.write_addresses(), child);
                    outcome.stats.counters.targeted_dooms += doomed;
                    if doomed > 0 {
                        self.trace_event(
                            child,
                            site,
                            EventKind::Doom {
                                source: DoomSource::Commit,
                            },
                        );
                    }
                }
                Ok(())
            }
            Some(parent) => {
                let absorbed = parent.absorb(&outcome.buffers.global);
                match absorbed {
                    Ok(()) => {
                        // The child's read dependences became the
                        // parent's: future commits to those ranges must
                        // doom the parent now.  Transferred only *after*
                        // a successful absorb — on overflow the child is
                        // discarded and the parent must not inherit
                        // registrations for ranges it never read.
                        self.commit_log.transfer_reader(
                            outcome.buffers.global.read_addresses(),
                            child,
                            parent.reader(),
                        );
                    }
                    Err(_) => {
                        // The child is about to be discarded; its
                        // registrations are dead.
                        self.commit_log
                            .unregister_reader(outcome.buffers.global.read_addresses(), child);
                    }
                }
                absorbed
            }
        };
        outcome.stats.add(Phase::Commit, elapsed_ns(commit_started));
        if commit_result.is_ok() {
            self.trace_event(child, site, EventKind::Commit);
            if child != 0 {
                let forked = self.slots[child - 1].forked_ns.load(Ordering::Relaxed);
                self.recorder.latency().record(
                    LatencyPhase::ForkToCommit,
                    self.trace_now_ns().saturating_sub(forked),
                );
            }
        } else {
            self.trace_event(
                child,
                site,
                EventKind::Rollback {
                    reason: RollbackCause::Overflow,
                    plan: PlanArm::None,
                },
            );
        }
        match commit_result {
            Ok(()) if retried => {
                outcome.stats.counters.retries_succeeded += 1;
                Ok(CommitKind::Retried)
            }
            Ok(()) => Ok(CommitKind::Committed),
            // The parent could not hold the child's data; discard the child.
            Err(_) => Err(SpecFailure::BufferOverflow),
        }
    }

    /// Apply a [`RecoveryPlan::DoomSet`]: set the doom flag of every
    /// listed rank that is still running.  Returns how many were doomed.
    fn doom_ranks(&self, ranks: &[Rank]) -> u64 {
        let mut doomed = 0;
        for &rank in ranks {
            if rank == 0 || rank > self.slots.len() {
                continue;
            }
            let slot = &self.slots[rank - 1];
            if slot.state.load(Ordering::Acquire) == CPU_RUNNING {
                slot.doomed.store(true, Ordering::Release);
                doomed += 1;
            }
        }
        doomed
    }

    /// Draw from the rollback-injection distribution.  Always `false`
    /// unless the sensitivity mode ([`RollbackSource::Injected`]) is
    /// enabled — real conflicts are the default rollback source.
    pub fn draw_injected_rollback(&self) -> bool {
        if self.config.rollback_source != RollbackSource::Injected {
            return false;
        }
        let p = self.config.rollback_probability;
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.rng.lock().gen_bool(p)
    }

    /// Fold a finished speculative thread's statistics into the current
    /// run's accumulators.  `rollback` carries the failure when the thread
    /// rolled back (`None` = committed); `retried` marks a commit that was
    /// repaired by value prediction (counted as a commit *and* a retry —
    /// never as a rollback).
    pub fn record_speculative(
        &self,
        stats: &ThreadStats,
        rollback: Option<SpecFailure>,
        retried: bool,
    ) {
        // Every joined thread is one commit/validate event on the grain
        // controller's clock.
        self.tick_grain_controller();
        let registry = self.metrics.registry();
        if registry.enabled() {
            match rollback {
                None => {
                    registry.add_unranked(CounterId::Commits, 1);
                    registry.add_unranked(CounterId::Retries, u64::from(retried));
                    registry.add_unranked(CounterId::CommittedCycles, stats.get(Phase::Work));
                    registry.observe(HistId::ThreadCycles, stats.total());
                }
                Some(reason) => {
                    // The joiner already reclassified the thread's work as
                    // wasted before handing the stats over.
                    self.push_rollback_metrics(
                        usize::MAX,
                        RollbackReason::from(reason),
                        stats.get(Phase::WastedWork),
                        stats.total(),
                    );
                }
            }
        }
        let mut accum = self.accum.lock();
        accum.speculative.merge(stats);
        match rollback {
            None => {
                accum.committed_threads += 1;
                accum.retried_threads += u64::from(retried);
            }
            Some(reason) => {
                accum.rolled_back_threads += 1;
                accum.rolled_back_by_reason[RollbackReason::from(reason).index()] += 1;
            }
        }
    }

    /// Reset the per-run accumulators, the commit log and the governor's
    /// site profiles (called at the start of `Runtime::run`).
    pub fn reset_run(&self) {
        *self.accum.lock() = RunAccumulators::default();
        self.commit_log.clear();
        self.governor.reset();
        if let Some(controller) = &self.grain {
            controller.lock().reset();
        }
        self.grain_events.store(0, Ordering::Relaxed);
        self.recorder.reset();
        self.metrics.reset();
    }

    /// Aggregate every telemetry source into one [`MetricsSnapshot`] at
    /// timestamp `ts` and append it to the hub's series.  This is the
    /// sampler's tick body and the final-scrape path; pull-side state
    /// (run accumulators, commit log, governor sites, grain census,
    /// latency phases) is folded in as scrape extras so the snapshot is a
    /// complete view regardless of which side owns a counter.
    pub fn scrape_metrics(&self, ts: u64) -> MetricsSnapshot {
        let totals = self.run_snapshot();
        let counters = &totals.speculative.counters;
        let log = self.commit_log.stats();
        let mut extras = ScrapeExtras {
            // These accumulate per-thread and merge at joins — the
            // registry never sees them, so the accumulators own them.
            counter_overrides: vec![
                (CounterId::TargetedDooms, counters.targeted_dooms),
                (CounterId::CascadeFallbacks, counters.cascade_fallbacks),
                (CounterId::PrecisePasses, counters.precise_passes),
                (
                    CounterId::FalseSharingSuspects,
                    counters.false_sharing_suspects,
                ),
            ],
            extra_counters: vec![
                ("log_commits".to_string(), log.commits),
                ("log_stamps".to_string(), log.stamp_writes),
                ("log_cas_retries".to_string(), log.cas_retries),
                ("log_ring_overflows".to_string(), log.ring_overflows),
                ("log_regrains".to_string(), log.regrains),
                ("log_reader_spills".to_string(), log.reader_spills),
            ],
            ..ScrapeExtras::default()
        };
        for site in self.governor.snapshot() {
            let site_label = site.site.to_string();
            extras.labeled.push(LabeledGauge::new(
                "site_rollback_rate",
                "site",
                site_label.clone(),
                site.rollback_rate,
            ));
            extras.labeled.push(LabeledGauge::new(
                "site_throttled",
                "site",
                site_label,
                site.throttled as f64,
            ));
        }
        for (grain_log2, regions) in self.commit_log.grain_census() {
            extras.labeled.push(LabeledGauge::new(
                "grain_regions",
                "grain_log2",
                grain_log2.to_string(),
                regions as f64,
            ));
        }
        extras
            .labeled
            .extend(phase_share_gauges(&self.recorder.latency().approx_totals()));
        self.metrics.registry().scrape(ts, extras)
    }

    /// Scrape and append one sample to the hub's bounded series (the
    /// sampler tick).
    pub fn sample_metrics(&self) {
        let snapshot = self.scrape_metrics(self.trace_now_ns());
        self.metrics.push(snapshot);
    }

    /// Take a snapshot of the per-run accumulators: speculative-path
    /// stats, committed / rolled-back / retried thread counts and the
    /// per-reason rollback breakdown.
    pub fn run_snapshot(&self) -> RunTotals {
        let accum = self.accum.lock();
        RunTotals {
            speculative: accum.speculative.clone(),
            committed: accum.committed_threads,
            rolled_back: accum.rolled_back_threads,
            retried: accum.retried_threads,
            by_reason: accum.rolled_back_by_reason,
        }
    }

    /// Build the buffers for a new speculative thread running on virtual
    /// CPU `rank`.  Under targeted recovery the global buffer registers
    /// the rank in the commit log's reader registry on every first-touch
    /// read; in cascade mode the registry is bypassed entirely (the true
    /// pre-registry baseline, zero registration overhead).
    pub fn make_buffers(&self, rank: Rank) -> ThreadBuffers {
        let global = if self.config.recovery.mode == RecoveryMode::Targeted {
            GlobalBuffer::for_reader(self.config.buffer, rank)
        } else {
            GlobalBuffer::new(self.config.buffer)
        };
        ThreadBuffers {
            global,
            local: LocalBuffer::new(self.config.local_buffer),
        }
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// Map the runtime's failure vocabulary onto the recorder's export enum.
pub(crate) fn rollback_cause(reason: SpecFailure) -> RollbackCause {
    match reason {
        SpecFailure::ReadConflict | SpecFailure::LocalValidationFailed => RollbackCause::Conflict,
        SpecFailure::BufferOverflow | SpecFailure::LocalBufferOverflow => RollbackCause::Overflow,
        SpecFailure::Injected => RollbackCause::Injected,
        SpecFailure::UnregisteredAddress | SpecFailure::Cascaded | SpecFailure::NoSync => {
            RollbackCause::Other
        }
    }
}

/// Worker loop executed by each virtual CPU's OS thread.
pub fn worker_loop(mgr: Arc<ThreadManager>, rank: Rank, rx: Receiver<WorkerMsg>) {
    while let Ok(msg) = rx.recv() {
        let request = match msg {
            WorkerMsg::Run(request) => request,
            WorkerMsg::Shutdown => break,
        };
        let mut ctx = SpecContext::speculative(Arc::clone(&mgr), rank, request.regvars);
        let started = Instant::now();
        let result = (request.task)(&mut ctx);
        let status = match result {
            Ok(()) => TaskStatus::Completed,
            Err(SpecAbort::BarrierReached) => TaskStatus::Barrier,
            Err(SpecAbort::Failed(reason)) => TaskStatus::Failed(reason),
        };
        let outcome = ctx.into_outcome(status, started);
        mgr.deposit_outcome(rank, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(cpus: usize) -> Arc<ThreadManager> {
        let (m, _rx) = ThreadManager::new(RuntimeConfig::with_cpus(cpus).memory_bytes(1 << 16));
        m
    }

    #[test]
    fn acquire_respects_cpu_count() {
        let m = mgr(2);
        let a = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        let b = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        assert_ne!(a, b);
        assert!(m.try_acquire_cpu(0, ForkModel::Mixed).is_none());
        m.release_cpu(a, 0);
        assert!(m.try_acquire_cpu(0, ForkModel::Mixed).is_some());
    }

    #[test]
    fn out_of_order_denies_speculative_forkers() {
        let m = mgr(4);
        let child = m.try_acquire_cpu(0, ForkModel::OutOfOrder).unwrap();
        // The speculative child may not fork under out-of-order.
        assert!(m.try_acquire_cpu(child, ForkModel::OutOfOrder).is_none());
        // But the non-speculative thread may keep forking.
        assert!(m.try_acquire_cpu(0, ForkModel::OutOfOrder).is_some());
    }

    #[test]
    fn in_order_only_most_speculative_forks() {
        let m = mgr(4);
        let first = m.try_acquire_cpu(0, ForkModel::InOrder).unwrap();
        // Non-speculative thread is no longer the most speculative.
        assert!(m.try_acquire_cpu(0, ForkModel::InOrder).is_none());
        let second = m.try_acquire_cpu(first, ForkModel::InOrder).unwrap();
        assert!(m.try_acquire_cpu(first, ForkModel::InOrder).is_none());
        assert!(m.try_acquire_cpu(second, ForkModel::InOrder).is_some());
    }

    #[test]
    fn mixed_allows_any_forker() {
        let m = mgr(4);
        let a = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        let b = m.try_acquire_cpu(a, ForkModel::Mixed).unwrap();
        assert!(m.try_acquire_cpu(b, ForkModel::Mixed).is_some());
        assert!(m.try_acquire_cpu(0, ForkModel::Mixed).is_some());
        assert_eq!(m.active_speculations(), 4);
    }

    #[test]
    fn release_restores_most_speculative_to_joiner() {
        let m = mgr(2);
        let a = m.try_acquire_cpu(0, ForkModel::InOrder).unwrap();
        m.release_cpu(a, 0);
        // After the join the non-speculative thread can speculate again.
        assert!(m.try_acquire_cpu(0, ForkModel::InOrder).is_some());
    }

    #[test]
    fn rollback_injection_extremes() {
        let (m, _rx) = ThreadManager::new(
            RuntimeConfig::with_cpus(1)
                .memory_bytes(1 << 12)
                .rollback_probability(0.0),
        );
        assert!(!m.draw_injected_rollback());
        let (m, _rx) = ThreadManager::new(
            RuntimeConfig::with_cpus(1)
                .memory_bytes(1 << 12)
                .rollback_probability(1.0),
        );
        assert!(m.draw_injected_rollback());
    }

    #[test]
    fn injection_requires_the_sensitivity_mode() {
        // A probability set without opting into RollbackSource::Injected
        // (e.g. by direct field assignment) never injects: real conflicts
        // are the only rollback source by default.
        let mut config = RuntimeConfig::with_cpus(1).memory_bytes(1 << 12);
        config.rollback_probability = 1.0;
        assert_eq!(config.rollback_source, crate::RollbackSource::Real);
        let (m, _rx) = ThreadManager::new(config);
        assert!(!m.draw_injected_rollback());
    }

    /// A completed outcome wrapping `buffers`, ready for the join protocol.
    fn completed(buffers: ThreadBuffers) -> SpecOutcome {
        SpecOutcome {
            status: TaskStatus::Completed,
            buffers,
            children: Vec::new(),
            stats: ThreadStats::new(),
            finished_at: Instant::now(),
        }
    }

    #[test]
    fn validate_and_commit_detects_a_real_predecessor_write() {
        let m = mgr(1);
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(1);
        mem.set(&cell, 0, 7);

        // A speculative child reads the cell…
        let mut buffers = m.make_buffers(1);
        let value = buffers
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
            .unwrap();
        assert_eq!(value, 7);

        // …then a logical predecessor commits a *different value* to it:
        // value prediction cannot save this join.
        mem.set(&cell, 0, 8);
        m.commit_log().record_word(cell.addr_of(0));

        let mut outcome = completed(buffers);
        assert_eq!(
            m.validate_and_commit(1, &mut outcome, None),
            Err(SpecFailure::ReadConflict)
        );
        assert_eq!(outcome.stats.counters.retries_succeeded, 0);
    }

    #[test]
    fn validate_and_commit_publishes_writes_into_the_log() {
        let m = mgr(1);
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(1);

        let mut buffers = m.make_buffers(1);
        buffers.global.store(cell.addr_of(0), 42, 8).unwrap();
        let mut outcome = completed(buffers);
        let epoch_before = m.commit_log().epoch();
        assert_eq!(
            m.validate_and_commit(1, &mut outcome, None),
            Ok(CommitKind::Committed)
        );
        assert_eq!(mem.get(&cell, 0), 42);
        // The committed address is now stamped: a thread that read it
        // before this commit will fail validation.
        assert!(m.commit_log().written_after(cell.addr_of(0), epoch_before));
    }

    #[test]
    fn value_predict_retry_commits_without_reexecution() {
        let m = mgr(1);
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(2);
        mem.set(&cell, 0, 7);

        let mut buffers = m.make_buffers(1);
        let _ = buffers
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
            .unwrap();
        buffers.global.store(cell.addr_of(1), 9, 8).unwrap();

        // A predecessor commits the *same* value (ABA / false sharing):
        // version validation conflicts, value prediction repairs it.
        mem.set(&cell, 0, 7);
        m.commit_log().record_word(cell.addr_of(0));

        let mut outcome = completed(buffers);
        assert_eq!(
            m.validate_and_commit(1, &mut outcome, None),
            Ok(CommitKind::Retried)
        );
        assert_eq!(outcome.stats.counters.retries_succeeded, 1);
        assert_eq!(mem.get(&cell, 1), 9, "the retried write-set committed");
    }

    #[test]
    fn value_predict_can_be_disabled() {
        let (m, _rx) = ThreadManager::new(
            RuntimeConfig::with_cpus(1)
                .memory_bytes(1 << 16)
                .value_predict(false),
        );
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(1);
        mem.set(&cell, 0, 7);
        let mut buffers = m.make_buffers(1);
        let _ = buffers
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
            .unwrap();
        mem.set(&cell, 0, 7);
        m.commit_log().record_word(cell.addr_of(0));
        let mut outcome = completed(buffers);
        assert_eq!(
            m.validate_and_commit(1, &mut outcome, None),
            Err(SpecFailure::ReadConflict)
        );
    }

    #[test]
    fn commit_dooms_exactly_the_registered_readers() {
        let m = mgr(3);
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(64);
        // Occupy two CPUs so their slots count as running.
        let reader = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        let bystander = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();

        // `reader` reads word 0 (registering); `bystander` reads word 32 —
        // far enough to be a different range even at line grain.
        let mut reader_buf = m.make_buffers(reader);
        let _ = reader_buf
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
            .unwrap();
        let mut bystander_buf = m.make_buffers(bystander);
        let _ = bystander_buf
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(32), 8)
            .unwrap();

        // A third thread commits a write covering word 0.
        let mut writer = m.make_buffers(0);
        writer.global.store(cell.addr_of(0), 5, 8).unwrap();
        let mut outcome = completed(writer);
        assert_eq!(
            m.validate_and_commit(0, &mut outcome, None),
            Ok(CommitKind::Committed)
        );
        assert_eq!(outcome.stats.counters.targeted_dooms, 1);
        assert!(m.doom_requested(reader), "stale reader doomed");
        assert!(!m.doom_requested(bystander), "bystander untouched");

        // The doom set was a subset of the running threads (the cascade's
        // victims) by construction; releasing clears the flag for reuse.
        m.release_cpu(reader, 0);
        let again = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        assert!(!m.doom_requested(again), "doom flag cleared on acquire");
    }

    #[test]
    fn commit_spares_logically_older_readers() {
        let m = mgr(4);
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(1);
        // Fork order is logical order here: predecessor (stamp 1), then
        // the committing writer (stamp 2), then a successor (stamp 3).
        let predecessor = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        let writer = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        let successor = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();

        // Both bystanders read the word the writer will commit.
        let mut pred_buf = m.make_buffers(predecessor);
        let _ = pred_buf
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
            .unwrap();
        let mut succ_buf = m.make_buffers(successor);
        let _ = succ_buf
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
            .unwrap();

        assert_eq!(m.doom_readers([cell.addr_of(0)], writer), 1);
        assert!(
            !m.doom_requested(predecessor),
            "a logical predecessor's read legitimately precedes the write"
        );
        assert!(m.doom_requested(successor), "the successor's read is stale");

        // The writer's own rollback plan applies the same filter.
        let mut writer_buf = m.make_buffers(writer);
        writer_buf.global.store(cell.addr_of(0), 9, 8).unwrap();
        let _ = pred_buf
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
            .unwrap();
        let outcome = completed(writer_buf);
        match m.plan_rollback_recovery(writer, &outcome) {
            RecoveryPlan::DoomSet(ranks) => {
                assert!(
                    !ranks.contains(&predecessor),
                    "rollback recovery must spare logical predecessors"
                );
            }
            other => panic!("targeted mode plans a doom set, got {other:?}"),
        }
    }

    #[test]
    fn adoption_salvages_a_deposited_grandchild() {
        let m = mgr(4);
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(1);
        mem.set(&cell, 0, 7);

        // A grandchild finished and deposited before its (committed)
        // parent was joined — the classic orphan the old code reaped.
        let gc = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        let mut buffers = m.make_buffers(gc);
        buffers.global.store(cell.addr_of(0), 42, 8).unwrap();
        assert!(m.deposit_outcome(gc, completed(buffers)));

        assert_eq!(m.adopt_subtree(gc, None), 1, "clean work is salvaged");
        assert_eq!(mem.get(&cell, 0), 42, "adopted writes reach memory");
        assert!(
            m.try_acquire_cpu(0, ForkModel::Mixed).is_some(),
            "the adopted thread's CPU is released"
        );
    }

    #[test]
    fn adoption_still_reaps_conflicting_and_running_grandchildren() {
        let m = mgr(4);
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(1);
        mem.set(&cell, 0, 7);

        // Grandchild A read the cell before a predecessor overwrote it:
        // adoption must validate, fail, and discard — not blindly commit.
        let stale = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        let mut stale_buf = m.make_buffers(stale);
        let _ = stale_buf
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
            .unwrap();
        stale_buf.global.store(cell.addr_of(0), 99, 8).unwrap();

        let mut pred = m.make_buffers(0);
        pred.global.store(cell.addr_of(0), 13, 8).unwrap();
        let mut pred_outcome = completed(pred);
        m.validate_and_commit(0, &mut pred_outcome, None).unwrap();

        assert!(m.deposit_outcome(stale, completed(stale_buf)));
        assert_eq!(m.adopt_subtree(stale, None), 0, "stale work is discarded");
        assert_eq!(mem.get(&cell, 0), 13, "the stale write never commits");

        // Grandchild B never deposited: adoption must not block on it.
        let running = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        assert_eq!(m.adopt_subtree(running, None), 0);
        assert!(
            m.abort_requested(running),
            "a still-running grandchild is reaped as before"
        );
    }

    #[test]
    fn cascade_mode_never_registers_or_dooms() {
        let (m, _rx) = ThreadManager::new(
            RuntimeConfig::with_cpus(2)
                .memory_bytes(1 << 16)
                .recovery(crate::config::RecoveryConfig::cascade_only()),
        );
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(1);
        let reader = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        let mut buf = m.make_buffers(reader);
        let _ = buf
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
            .unwrap();
        assert!(
            m.commit_log()
                .registered_readers(cell.addr_of(0))
                .is_empty(),
            "cascade mode must not register readers"
        );
        assert_eq!(m.doom_readers([cell.addr_of(0)], 0), 0);
        assert!(!m.doom_requested(reader));
    }

    #[test]
    fn rollback_recovery_dooms_readers_of_the_rewritten_ranges() {
        let m = mgr(3);
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(64);
        mem.set(&cell, 0, 1);
        let victim = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();

        // The victim speculatively read the word the failing child wrote.
        let mut victim_buf = m.make_buffers(victim);
        let _ = victim_buf
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(32), 8)
            .unwrap();

        // The child read word 0, then a predecessor committed a different
        // value there: genuine conflict, no retry.  The child also wrote
        // word 32 — which the victim read.
        let mut child_buf = m.make_buffers(0);
        let _ = child_buf
            .global
            .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
            .unwrap();
        child_buf.global.store(cell.addr_of(32), 9, 8).unwrap();
        mem.set(&cell, 0, 2);
        m.commit_log().record_word(cell.addr_of(0));

        let mut outcome = completed(child_buf);
        assert_eq!(
            m.validate_and_commit(0, &mut outcome, None),
            Err(SpecFailure::ReadConflict)
        );
        assert_eq!(outcome.stats.counters.targeted_dooms, 1);
        assert!(
            m.doom_requested(victim),
            "reader of the to-be-rewritten range must be doomed"
        );
    }

    #[test]
    fn grain_controller_ticks_regrain_and_doom_outstanding_readers() {
        use mutls_adaptive::GrainControlConfig;
        use mutls_membuf::{PAGE_GRAIN_LOG2, WORD_GRAIN_LOG2};
        let (m, _rx) = ThreadManager::new(
            RuntimeConfig::with_cpus(2)
                .memory_bytes(1 << 16)
                .adaptive_grain()
                .grain_control(
                    GrainControlConfig::adaptive()
                        .tick_commits(1)
                        .initial_grain_log2(PAGE_GRAIN_LOG2),
                )
                // Single-version validation: under mvcc the neighbour
                // commits below precise-pass instead of producing the
                // false-sharing retries this test feeds the controller.
                .recovery(crate::config::RecoveryConfig::targeted_with_retry()),
        );
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(1024);
        assert_eq!(
            m.commit_log().grain_of(cell.addr_of(0)),
            PAGE_GRAIN_LOG2,
            "regions start at the controller's initial grain"
        );

        // A speculative reader registers, then keeps conflicting with
        // false-sharing suspects: the word it read never changes value,
        // but its page-grain range is committed by a neighbour write.
        let reader = m.try_acquire_cpu(0, ForkModel::Mixed).unwrap();
        for _ in 0..4 {
            let mut buf = m.make_buffers(reader);
            let _ = buf
                .global
                .load_logged(&*mem, Some(m.commit_log()), cell.addr_of(0), 8)
                .unwrap();
            // Neighbour word of the same page commits → range conflict,
            // value unchanged ⇒ suspected false sharing.
            mem.set(&cell, 8, 1);
            m.commit_log().record_word(cell.addr_of(8));
            let mut outcome = completed(buf);
            // value_predict is on by default, so this is a Retried
            // commit; the retry feeds the controller's split evidence.
            let _ = m.validate_and_commit(reader, &mut outcome, None);
            m.record_speculative(&outcome.stats, None, true);
        }
        assert!(
            m.commit_log().grain_of(cell.addr_of(0)) < PAGE_GRAIN_LOG2,
            "suspect spikes must re-split the region (grain now {})",
            m.commit_log().grain_of(cell.addr_of(0))
        );
        assert!(m.commit_log().regrains() > 0);

        // reset_run restores the initial grain and controller state.
        m.reset_run();
        assert_eq!(m.commit_log().grain_of(cell.addr_of(0)), PAGE_GRAIN_LOG2);
        assert_eq!(m.commit_log().regrains(), 0);
        let _ = WORD_GRAIN_LOG2;
    }

    #[test]
    fn observed_grain_reports_static_grain_without_the_controller() {
        let m = mgr(1);
        let mem = Arc::clone(m.memory());
        let cell = mem.alloc::<u64>(1);
        let mut buf = m.make_buffers(1);
        buf.global.store(cell.addr_of(0), 1, 8).unwrap();
        let outcome = completed(buf);
        assert_eq!(m.observed_grain(&outcome), m.config().commit_log.grain_log2);
    }

    #[test]
    fn address_registration_flows_through() {
        let m = mgr(1);
        m.register_range(0x100, 0x40);
        assert!(m.range_registered(0x100, 8));
        assert!(!m.range_registered(0x200, 8));
        m.unregister_range(0x100, 0x40);
        assert!(!m.range_registered(0x100, 8));
    }

    #[test]
    fn run_accumulators_reset_and_snapshot() {
        let m = mgr(1);
        let mut stats = ThreadStats::new();
        stats.add(Phase::Work, 10);
        m.record_speculative(&stats, None, false);
        m.record_speculative(&stats, None, true);
        m.record_speculative(&stats, Some(SpecFailure::ReadConflict), false);
        m.record_speculative(&stats, Some(SpecFailure::Injected), false);
        let totals = m.run_snapshot();
        assert_eq!(totals.speculative.get(Phase::Work), 40);
        assert_eq!(totals.committed, 2, "a retry is a commit");
        assert_eq!(totals.retried, 1);
        assert_eq!(totals.rolled_back, 2, "a retry is not a rollback");
        assert_eq!(totals.by_reason[RollbackReason::Conflict.index()], 1);
        assert_eq!(totals.by_reason[RollbackReason::Injected.index()], 1);
        m.commit_log().record_word(64);
        m.reset_run();
        let totals = m.run_snapshot();
        assert_eq!(totals.speculative.total(), 0);
        assert_eq!(totals.committed + totals.rolled_back + totals.retried, 0);
        assert_eq!(totals.by_reason, [0; RollbackReason::COUNT]);
        assert_eq!(m.commit_log().commits(), 0);
    }
}
