//! # mutls-runtime — the MUTLS software-TLS runtime
//!
//! Native implementation of the MUTLS thread-level-speculation runtime
//! (Cao & Verbrugge, ICPP 2013): virtual CPUs backed by worker threads,
//! programmer-directed fork/join/barrier points, speculative memory
//! buffering with validation and commit/rollback, the three forking models
//! (in-order, out-of-order and tree-form mixed), per-thread phase
//! statistics and rollback injection for sensitivity experiments.
//!
//! The typical entry point is [`Runtime`]:
//!
//! ```
//! use mutls_runtime::{task, JoinOutcome, Runtime, RuntimeConfig, SpecContext, TlsContext};
//!
//! let rt = Runtime::new(RuntimeConfig::with_cpus(2).memory_bytes(1 << 16));
//! let cells = rt.alloc::<i64>(2);
//! let (_, report) = rt.run(|ctx| {
//!     // Speculate on the continuation that fills cells[1]...
//!     let continuation = task(move |ctx: &mut SpecContext| {
//!         ctx.store(&cells, 1, 41)?;
//!         ctx.barrier()
//!     });
//!     let handle = ctx.fork(0, continuation)?;
//!     // ...while the parent fills cells[0].
//!     ctx.store(&cells, 0, 1)?;
//!     let outcome = ctx.join(handle)?;
//!     assert!(matches!(outcome, JoinOutcome::Committed | JoinOutcome::NotSpeculated));
//!     Ok(())
//! });
//! assert_eq!(rt.memory().get(&cells, 0) + rt.memory().get(&cells, 1), 42);
//! assert_eq!(report.rolled_back_threads, 0);
//! ```
//!
//! Workload code is written against the [`TlsContext`] trait so that the
//! same source drives both this native runtime and the discrete-event
//! multicore simulator in `mutls-simcpu`.

#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod direct;
pub mod manager;
pub mod runtime;
pub mod stats;
pub mod task;

// The forking models and the adaptive speculation governor live in
// `mutls-adaptive` (so policies can choose models without a dependency
// cycle); re-export them under the historical paths.
pub use mutls_adaptive::fork_model;

pub use config::{RecoveryConfig, RecoveryMode, RollbackSource, RuntimeConfig, ShardPolicy};
pub use context::{SpecContext, SpecHandle};
pub use direct::DirectContext;
pub use fork_model::ForkModel;
pub use manager::{CommitKind, RecoveryPlan, RunTotals, SpecOutcome, ThreadBuffers, ThreadManager};
pub use runtime::Runtime;
pub use stats::{Phase, RunReport, ThreadCounters, ThreadStats};
pub use task::{
    failure, task, JoinOutcome, Rank, SpecAbort, SpecResult, TaskRef, TaskStatus, TlsContext, Word,
};

// Re-export the adaptive governor layer for downstream convenience.
pub use mutls_adaptive as adaptive;
pub use mutls_adaptive::{
    ForkDecision, Governor, GovernorConfig, GrainAction, GrainControlConfig, GrainController,
    PolicyKind, SiteId, SiteOutcome, SiteProfile,
};

// Re-export the buffering layer for downstream convenience.
pub use mutls_membuf as membuf;
pub use mutls_membuf::{
    Addr, CommitLog, GPtr, GlobalMemory, RegisterValue, RollbackReason, SpecFailure,
};

// Re-export the flight recorder so harnesses can configure tracing and
// consume drained events without naming the leaf crate.
pub use mutls_metrics as metrics;
pub use mutls_metrics::{MetricsConfig, MetricsSeries, MetricsSnapshot};
pub use mutls_trace as trace;
pub use mutls_trace::{
    DenyPolicy, DoomSource, EventKind, LatencyPhase, LatencyReport, LatencyRow, PlanArm, Recorder,
    RollbackCause, TraceConfig, TraceEvent, ValidateOutcome,
};
