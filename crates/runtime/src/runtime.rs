//! The [`Runtime`] facade: owns the virtual CPUs (worker threads), the
//! shared memory arena and the speculative region entry point.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mutls_membuf::{GPtr, GlobalMemory, WORD_BYTES};
use mutls_metrics::{prometheus_text, MetricsSeries, MetricsSnapshot, Sampler};

use crate::config::RuntimeConfig;
use crate::context::SpecContext;
use crate::manager::{worker_loop, ThreadManager};
use crate::stats::RunReport;
use crate::task::{SpecResult, Word};

/// A native MUTLS runtime instance.
///
/// ```
/// use mutls_runtime::{Runtime, RuntimeConfig, SpecContext, TlsContext, task, JoinOutcome};
///
/// let rt = Runtime::new(RuntimeConfig::with_cpus(2).memory_bytes(1 << 16));
/// let data = rt.alloc::<i64>(8);
/// let mem = rt.memory();
/// for i in 0..8 {
///     mem.set(&data, i, i as i64);
/// }
/// let (sum, report) = rt.run(|ctx| {
///     let continuation = task(move |ctx: &mut SpecContext| {
///         let mut acc = 0;
///         for i in 4..8 {
///             acc += ctx.load(&data, i)?;
///         }
///         ctx.store(&data, 7, acc)?;
///         ctx.barrier()
///     });
///     let handle = ctx.fork(0, continuation)?;
///     let mut acc = 0;
///     for i in 0..4 {
///         acc += ctx.load(&data, i)?;
///     }
///     let _ = ctx.join(handle)?;
///     acc += ctx.load(&data, 7)?;
///     Ok(acc)
/// });
/// assert_eq!(sum, 0 + 1 + 2 + 3 + (4 + 5 + 6 + 7));
/// assert!(report.runtime > 0);
/// ```
pub struct Runtime {
    mgr: Arc<ThreadManager>,
    workers: Vec<JoinHandle<()>>,
    /// Background metrics sampler (None unless the metrics plane is
    /// enabled with a non-zero interval).  Stopped before the workers
    /// shut down so no scrape observes a torn-down manager.
    sampler: Option<Sampler>,
}

impl Runtime {
    /// Create a runtime with `config.num_cpus` speculative virtual CPUs,
    /// each backed by a worker OS thread.
    pub fn new(config: RuntimeConfig) -> Self {
        let (mgr, receivers) = ThreadManager::new(config);
        let workers = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let mgr = Arc::clone(&mgr);
                std::thread::Builder::new()
                    .name(format!("mutls-cpu-{}", i + 1))
                    .spawn(move || worker_loop(mgr, i + 1, rx))
                    .expect("spawn virtual CPU worker")
            })
            .collect();
        let sampler =
            (config.metrics.enabled && config.metrics.sample_interval_ms > 0).then(|| {
                let mgr = Arc::clone(&mgr);
                Sampler::spawn(
                    Duration::from_millis(config.metrics.sample_interval_ms),
                    move || mgr.sample_metrics(),
                )
            });
        Runtime {
            mgr,
            workers,
            sampler,
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        self.mgr.config()
    }

    /// Shared main memory arena.
    pub fn memory(&self) -> Arc<GlobalMemory> {
        Arc::clone(self.mgr.memory())
    }

    /// Low-level access to the thread manager (used by the IR interpreter
    /// and advanced integrations).
    pub fn manager(&self) -> &Arc<ThreadManager> {
        &self.mgr
    }

    /// Allocate `count` elements of `T` in the shared arena and register
    /// the range in the global address space.
    pub fn alloc<T: Word>(&self, count: usize) -> GPtr<T> {
        let ptr = self.mgr.memory().alloc::<T>(count);
        self.mgr
            .register_range(ptr.base_addr(), (count as u64) * WORD_BYTES);
        ptr
    }

    /// Execute a speculative region on the calling thread (rank 0) and
    /// return its value together with the run report.
    ///
    /// # Panics
    /// Panics if the root closure itself aborts (e.g. calls
    /// [`TlsContext::barrier`](crate::TlsContext::barrier) at rank 0),
    /// which indicates a program structure error.
    pub fn run<R>(&self, f: impl FnOnce(&mut SpecContext) -> SpecResult<R>) -> (R, RunReport) {
        let (result, report) = self.try_run(f);
        match result {
            Ok(value) => (value, report),
            Err(abort) => panic!("non-speculative region aborted: {abort:?}"),
        }
    }

    /// Like [`run`](Self::run) but surfaces an abort of the root closure
    /// instead of panicking.
    pub fn try_run<R>(
        &self,
        f: impl FnOnce(&mut SpecContext) -> SpecResult<R>,
    ) -> (SpecResult<R>, RunReport) {
        self.mgr.reset_run();
        let started = Instant::now();
        let mut ctx = SpecContext::non_speculative(Arc::clone(&self.mgr));
        let result = f(&mut ctx);
        let (critical, unjoined) = ctx.finish(started);
        // Anything never joined is drained so its CPU is reclaimed and its
        // (wasted) work is accounted for.
        for child in unjoined {
            self.mgr.drain_subtree(child);
        }
        let runtime = started.elapsed().as_nanos() as u64;
        let totals = self.mgr.run_snapshot();
        let report = RunReport {
            critical,
            speculative: totals.speculative,
            committed_threads: totals.committed,
            rolled_back_threads: totals.rolled_back,
            retried_threads: totals.retried,
            rollback_reasons: totals.by_reason,
            runtime,
            sites: self.mgr.governor().snapshot(),
            commit_log: self.mgr.commit_log().stats(),
            region_grains: self.mgr.commit_log().grain_census(),
            latency: self.mgr.recorder().latency_report(),
        };
        (result, report)
    }

    /// Drain the flight recorder's buffered lifecycle events (merged
    /// across all lanes, ordered by timestamp).  Empty unless
    /// [`RuntimeConfig::trace`] enabled event tracing.  Call between
    /// runs — the recorder requires quiescence to drain.
    pub fn drain_trace_events(&self) -> Vec<mutls_trace::TraceEvent> {
        self.mgr.recorder().drain_events()
    }

    /// Events overwritten in the recorder's rings before they could be
    /// drained (ring-capacity pressure).
    pub fn trace_dropped(&self) -> u64 {
        self.mgr.recorder().dropped()
    }

    /// Scrape every telemetry source right now into one aggregated
    /// snapshot (without appending it to the series).  Meaningful only
    /// with [`RuntimeConfig::metrics`] enabled — disabled, all registry
    /// counters read zero and only pull-side extras carry data.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.mgr.scrape_metrics(self.mgr.trace_now_ns())
    }

    /// The sampler-filled bounded time series collected so far (clone).
    pub fn metrics_series(&self) -> MetricsSeries {
        self.mgr.metrics().series()
    }

    /// A fresh scrape rendered as a Prometheus text exposition.
    pub fn metrics_prometheus(&self) -> String {
        prometheus_text(&self.metrics_snapshot(), &[])
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Stop sampling first: a scrape must never race worker teardown.
        if let Some(sampler) = &mut self.sampler {
            sampler.stop();
        }
        self.mgr.shutdown_workers();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}
