//! Task types and the [`TlsContext`] abstraction shared by the native
//! runtime and the multicore simulator.
//!
//! In MUTLS the code between a join point and the matching barrier point is
//! what a speculative thread executes (figure 1: the parent forks before
//! `S1`, the child starts at the join point and runs `S2`, stopping before
//! `S3`).  In this Rust reproduction that region is expressed as a *task
//! closure*: [`TaskRef`].  The parent provides it at the fork point, runs
//! its own code (`S1`), and at the join point either synchronizes with the
//! speculative child or — if speculation never happened or rolled back —
//! executes the closure inline.
//!
//! Workloads are written generically against [`TlsContext`] so that the
//! exact same benchmark code drives the native threaded runtime
//! ([`crate::SpecContext`]) and the discrete-event simulator's recording
//! context.

use std::sync::Arc;

use mutls_membuf::{Addr, GPtr, SpecFailure};

pub use mutls_membuf::memory::Word;

/// Virtual CPU identifier.  Rank `0` is the non-speculative thread; ranks
/// `1..=num_cpus` are speculative virtual CPUs.
pub type Rank = usize;

/// Reason a task closure stopped before running to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecAbort {
    /// The task reached a barrier point: everything up to the barrier is
    /// valid and committable, and nothing after it ran.
    BarrierReached,
    /// The task must be discarded for the given reason.
    Failed(SpecFailure),
}

/// Result type threaded through speculative code.
pub type SpecResult<T> = Result<T, SpecAbort>;

/// Reference-counted task closure, re-executable by the parent when
/// speculation fails.
pub type TaskRef<C> = Arc<dyn Fn(&mut C) -> SpecResult<()> + Send + Sync>;

/// Build a [`TaskRef`] from a closure.
pub fn task<C, F>(f: F) -> TaskRef<C>
where
    F: Fn(&mut C) -> SpecResult<()> + Send + Sync + 'static,
{
    Arc::new(f)
}

/// What happened at a join point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOutcome {
    /// The speculative child validated and committed.
    Committed,
    /// The speculative child rolled back for the given reason; the parent
    /// re-executed the task inline.
    RolledBack(SpecFailure),
    /// No speculative thread had been launched for this fork point (no
    /// idle CPU, or the forking model forbade it); the parent executed the
    /// task inline.
    NotSpeculated,
}

impl JoinOutcome {
    /// True when the work was performed speculatively and committed.
    pub fn speculated(&self) -> bool {
        matches!(self, JoinOutcome::Committed)
    }
}

/// Status of a finished speculative task, as deposited by the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// The closure ran to completion.
    Completed,
    /// The closure stopped at a barrier point.
    Barrier,
    /// The closure failed and must roll back.
    Failed(SpecFailure),
}

/// Uniform interface to a speculative execution context.
///
/// Implemented by the native [`crate::SpecContext`] and by the simulator's
/// recording context, so workload code is written once:
///
/// ```
/// use mutls_runtime::{task, JoinOutcome, SpecResult, TlsContext};
/// use mutls_membuf::GPtr;
///
/// fn sum_halves<C: TlsContext>(ctx: &mut C, data: GPtr<i64>, out: GPtr<i64>) -> SpecResult<()> {
///     let n = data.len();
///     // Speculate on the second half (the continuation).
///     let second = task(move |ctx: &mut C| {
///         let mut acc = 0i64;
///         for i in n / 2..n {
///             acc += ctx.load(&data, i)?;
///         }
///         ctx.store(&out, 1, acc)?;
///         ctx.barrier()
///     });
///     let handle = ctx.fork(0, second)?;
///     let mut acc = 0i64;
///     for i in 0..n / 2 {
///         acc += ctx.load(&data, i)?;
///     }
///     ctx.store(&out, 0, acc)?;
///     let _outcome: JoinOutcome = ctx.join(handle)?;
///     Ok(())
/// }
/// ```
pub trait TlsContext: Sized {
    /// Token returned by [`fork`](Self::fork) and consumed by
    /// [`join`](Self::join).
    type Handle;

    /// Charge `units` of abstract computation to this thread.
    ///
    /// The native runtime measures real time, so this is only an
    /// (inexpensive) bookkeeping hint and an implicit check point; the
    /// simulator charges `units` virtual cycles.
    fn work(&mut self, units: u64) -> SpecResult<()>;

    /// Load one word at a raw global address.
    fn load_word(&mut self, addr: Addr) -> SpecResult<u64>;

    /// Store one word at a raw global address.
    fn store_word(&mut self, addr: Addr, value: u64) -> SpecResult<()>;

    /// Attempt to fork a speculative thread executing `task` (the
    /// continuation from the matching join point).  Speculation may be
    /// denied — by the forking model or because no CPU is idle — in which
    /// case the returned handle simply carries the closure for inline
    /// execution at the join point.
    fn fork(&mut self, point: u32, task: TaskRef<Self>) -> SpecResult<Self::Handle>;

    /// Fork under an explicit forking model, overriding the configured
    /// default (paper: the `model` argument of `__builtin_MUTLS_fork`).
    fn fork_with_model(
        &mut self,
        point: u32,
        model: crate::ForkModel,
        task: TaskRef<Self>,
    ) -> SpecResult<Self::Handle>;

    /// Join point: synchronize with the speculative child (validate and
    /// commit or roll back) or execute the task inline.
    fn join(&mut self, handle: Self::Handle) -> SpecResult<JoinOutcome>;

    /// Barrier point: stop speculative execution here; everything before
    /// the barrier is committable.  By convention this is the final
    /// statement of a task closure (`ctx.barrier()` as the return
    /// expression); it also "succeeds by stopping" during inline
    /// execution, so code after it never runs on either path.
    fn barrier(&mut self) -> SpecResult<()>;

    /// Check point: poll for abort requests (and, in the simulator, give
    /// the scheduler a preemption opportunity).  Inserted inside loops and
    /// before calls, as the speculator pass does.
    fn check_point(&mut self) -> SpecResult<()>;

    /// True if this context belongs to a speculative thread.
    fn is_speculative(&self) -> bool;

    /// Rank of the executing virtual CPU (0 = non-speculative).
    fn rank(&self) -> Rank;

    /// Typed load from a [`GPtr`] allocation.
    fn load<T: Word>(&mut self, ptr: &GPtr<T>, index: usize) -> SpecResult<T> {
        assert!(
            index < ptr.len(),
            "index {index} out of bounds {}",
            ptr.len()
        );
        Ok(T::from_word(self.load_word(ptr.addr_of(index))?))
    }

    /// Typed store into a [`GPtr`] allocation.
    fn store<T: Word>(&mut self, ptr: &GPtr<T>, index: usize, value: T) -> SpecResult<()> {
        assert!(
            index < ptr.len(),
            "index {index} out of bounds {}",
            ptr.len()
        );
        self.store_word(ptr.addr_of(index), value.to_word())
    }
}

/// Convenience conversion so `?` can be used on buffer errors inside
/// runtime internals.
pub fn failure(f: SpecFailure) -> SpecAbort {
    SpecAbort::Failed(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_outcome_speculated() {
        assert!(JoinOutcome::Committed.speculated());
        assert!(!JoinOutcome::NotSpeculated.speculated());
        assert!(!JoinOutcome::RolledBack(SpecFailure::ReadConflict).speculated());
    }

    #[test]
    fn task_helper_builds_arc() {
        struct Dummy;
        let t: TaskRef<Dummy> = task(|_d: &mut Dummy| Ok(()));
        let mut d = Dummy;
        assert!(t(&mut d).is_ok());
        let t2 = t.clone();
        assert_eq!(Arc::strong_count(&t), 2);
        drop(t2);
    }

    #[test]
    fn abort_equality() {
        assert_eq!(SpecAbort::BarrierReached, SpecAbort::BarrierReached);
        assert_ne!(
            SpecAbort::Failed(SpecFailure::ReadConflict),
            SpecAbort::Failed(SpecFailure::Injected)
        );
    }
}
