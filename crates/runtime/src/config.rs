//! Runtime configuration.

use crate::fork_model::ForkModel;
use mutls_adaptive::{GovernorConfig, GrainControlConfig, PolicyKind};
use mutls_membuf::{BufferConfig, CommitLogConfig, LocalBufferConfig};
use mutls_metrics::MetricsConfig;
use mutls_trace::TraceConfig;

/// Where rollbacks come from.
///
/// The default is [`RollbackSource::Real`]: every rollback is the result of
/// genuine dependence validation through the speculative buffers and the
/// shared [`CommitLog`](mutls_membuf::CommitLog).  The paper's §V-D
/// rollback-*sensitivity* experiment is still available, but only as an
/// explicit opt-in: with [`RollbackSource::Injected`] the runtime
/// additionally forces otherwise-valid joins to roll back with probability
/// [`RuntimeConfig::rollback_probability`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RollbackSource {
    /// Only real validation failures (conflicts, overflows, …) roll back.
    #[default]
    Real,
    /// Sensitivity mode: valid joins are additionally rolled back at
    /// random with the configured probability.
    Injected,
}

/// How a join-time conflict is repaired (see the recovery engine in
/// `ThreadManager::validate_and_commit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// The pre-registry behaviour: conflicts are discovered lazily at
    /// join-time validation and repaired by discarding the child's whole
    /// subtree and re-executing the continuation inline.
    Cascade,
    /// Targeted dooming: committing writers enumerate the per-range
    /// reader registry and doom exactly the threads whose read sets
    /// overlap the written ranges (falling back to the cascade when the
    /// registry overflows).  Join-time validation remains the oracle, so
    /// this only changes *when* a doomed thread stops, never whether a
    /// conflict is caught.
    #[default]
    Targeted,
}

impl RecoveryMode {
    /// Short label for sweep tables.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryMode::Cascade => "cascade",
            RecoveryMode::Targeted => "targeted",
        }
    }
}

/// Configuration of the conflict-recovery engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Whether misspeculation is repaired by the squash cascade alone or
    /// by registry-driven targeted dooming.
    pub mode: RecoveryMode,
    /// Value-predict-and-retry: a join whose conflicting reads all still
    /// hold their first-read values re-validates in place (the entries
    /// are re-stamped) and commits without re-execution.  With
    /// `ring_depth > 1` the retry is *time-travel retry*: entries are
    /// re-stamped to the newest ring version observed to touch them, not
    /// the current epoch.
    pub value_predict: bool,
    /// Depth of the per-range version rings in the commit log (mvcc
    /// validation).  Depth 1 degenerates to the pre-PR 8 single-version
    /// protocol; deeper rings let validation answer precisely whether
    /// the snapshot's word was overwritten, falling back to conservatism
    /// only on ring overflow.
    pub ring_depth: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self::mvcc()
    }
}

impl RecoveryConfig {
    /// The pre-registry baseline: lazy conflict discovery, full squash
    /// cascade, no value prediction, single-version validation.
    pub fn cascade_only() -> Self {
        RecoveryConfig {
            mode: RecoveryMode::Cascade,
            value_predict: false,
            ring_depth: 1,
        }
    }

    /// Targeted dooming without value prediction (single-version).
    pub fn targeted() -> Self {
        RecoveryConfig {
            mode: RecoveryMode::Targeted,
            value_predict: false,
            ring_depth: 1,
        }
    }

    /// Targeted dooming plus value-predict-and-retry at ring depth 1 —
    /// the pre-PR 8 default, kept as the pinned legacy configuration for
    /// replay baselines.
    pub fn targeted_with_retry() -> Self {
        RecoveryConfig {
            mode: RecoveryMode::Targeted,
            value_predict: true,
            ring_depth: 1,
        }
    }

    /// Multi-version validation (the default): targeted dooming,
    /// time-travel retry, and per-range version rings at
    /// [`mutls_membuf::DEFAULT_RING_DEPTH`].
    pub fn mvcc() -> Self {
        RecoveryConfig {
            mode: RecoveryMode::Targeted,
            value_predict: true,
            ring_depth: mutls_membuf::DEFAULT_RING_DEPTH,
        }
    }

    /// Whether multi-version validation is active.
    pub fn is_mvcc(&self) -> bool {
        self.ring_depth > 1
    }

    /// Short label for sweep tables.  Depth-1 labels are unchanged from
    /// the single-version era; the canonical mvcc configuration
    /// (targeted + retry + rings) is labelled `mvcc`, and other ringed
    /// combinations carry a `+mvcc` suffix.
    pub fn label(&self) -> &'static str {
        match (self.mode, self.value_predict, self.is_mvcc()) {
            (RecoveryMode::Cascade, false, false) => "cascade",
            (RecoveryMode::Cascade, true, false) => "cascade+retry",
            (RecoveryMode::Targeted, false, false) => "targeted",
            (RecoveryMode::Targeted, true, false) => "targeted+retry",
            (RecoveryMode::Targeted, true, true) => "mvcc",
            (RecoveryMode::Cascade, false, true) => "cascade+mvcc",
            (RecoveryMode::Cascade, true, true) => "cascade+retry+mvcc",
            (RecoveryMode::Targeted, false, true) => "targeted+mvcc",
        }
    }
}

/// How the Time Warp parallel simulator maps fibers onto its shard
/// workers (see `mutls_simcpu`'s `parsim` module).  A shared config type
/// like [`RecoveryConfig`]: the simulator consumes it, the harness sweeps
/// it, and the policy must be a pure function of replay-deterministic
/// fiber identity so the shard assignment itself can never perturb the
/// byte-identical schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Stripe by virtual CPU: all fibers of one simulated CPU stream to
    /// the same shard worker, preserving per-CPU locality of the publish
    /// log prefixes the shard scans (the default).
    #[default]
    CpuStripe,
    /// Hash by fiber id: round-robin fibers across shards regardless of
    /// their CPU, trading locality for balance on fork-heavy traces.
    FiberHash,
}

impl ShardPolicy {
    /// Short label for sweep tables.
    pub fn label(self) -> &'static str {
        match self {
            ShardPolicy::CpuStripe => "cpu-stripe",
            ShardPolicy::FiberHash => "fiber-hash",
        }
    }

    /// The shard worker (of `workers`) that owns fiber `fid` running on
    /// virtual CPU `cpu`.
    pub fn shard_of(self, cpu: usize, fid: usize, workers: usize) -> usize {
        if workers <= 1 {
            return 0;
        }
        match self {
            ShardPolicy::CpuStripe => cpu % workers,
            ShardPolicy::FiberHash => fid % workers,
        }
    }
}

/// Configuration of a [`Runtime`](crate::Runtime) instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Number of *speculative* virtual CPUs (ranks 1..=num_cpus).  The
    /// non-speculative thread (rank 0) always exists in addition.
    pub num_cpus: usize,
    /// Forking model applied to forks that do not specify one explicitly.
    pub fork_model: ForkModel,
    /// Capacity of every speculative thread's global buffer.
    pub buffer: BufferConfig,
    /// Capacity of every speculative thread's local buffer.
    pub local_buffer: LocalBufferConfig,
    /// Whether rollback injection (the §V-D sensitivity mode) is enabled.
    pub rollback_source: RollbackSource,
    /// Probability in `[0, 1]` that a join is forced to roll back even when
    /// validation succeeds.  Only consulted under
    /// [`RollbackSource::Injected`].
    pub rollback_probability: f64,
    /// Seed for the rollback-injection RNG, so experiments are repeatable.
    pub seed: u64,
    /// Size of the shared [`GlobalMemory`](mutls_membuf::GlobalMemory)
    /// arena in bytes.
    pub memory_bytes: u64,
    /// Adaptive speculation governor: per-fork-site profiling plus the
    /// fork-throttling / model-selection policy (default: `Static`, the
    /// unconditional behaviour of the original runtime).
    pub governor: GovernorConfig,
    /// Granularity and sharding of the shared commit log's version table
    /// (default: 64-byte ranges across 8 shards).  Coarser grains bound
    /// log growth and commit-lock time at the cost of false-sharing
    /// rollbacks; word grain ([`CommitLogConfig::word_grain`]) restores
    /// the exact per-word tracking of the original design.
    pub commit_log: CommitLogConfig,
    /// The conflict-recovery engine: targeted dooming through the
    /// per-range reader registry plus value-predict-and-retry (default),
    /// or the plain squash cascade ([`RecoveryConfig::cascade_only`]).
    pub recovery: RecoveryConfig,
    /// Online adaptive-grain control plane (default: disabled — the
    /// static `commit_log` grain).  When enabled, `commit_log.grain_log2`
    /// becomes the *floor* grain the version table is allocated at,
    /// regions start at `grain_control.initial_grain_log2`, and a
    /// [`GrainController`](mutls_adaptive::GrainController) regrains
    /// regions live from the commit/validate paths.
    pub grain_control: GrainControlConfig,
    /// The speculation flight recorder (default: lifecycle event tracing
    /// off).  The per-phase latency histograms behind
    /// `RunReport.latency` are always on; this knob only controls whether
    /// lifecycle events are captured into the per-rank rings for export
    /// as a Chrome/Perfetto trace.
    pub trace: TraceConfig,
    /// The live telemetry plane (default: disabled — every push is one
    /// always-false branch).  When enabled, the runtime feeds a sharded
    /// lock-free registry, a background sampler snapshots it on
    /// `metrics.sample_interval_ms` cadence into a bounded time series,
    /// and the aggregate can be exported as Prometheus text or a JSON
    /// time-series dump.
    pub metrics: MetricsConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_cpus: 4,
            fork_model: ForkModel::Mixed,
            buffer: BufferConfig::default(),
            local_buffer: LocalBufferConfig::default(),
            rollback_source: RollbackSource::Real,
            rollback_probability: 0.0,
            seed: 0x05EE_DCA0,
            memory_bytes: 64 << 20,
            governor: GovernorConfig::default(),
            commit_log: CommitLogConfig::default(),
            recovery: RecoveryConfig::default(),
            grain_control: GrainControlConfig::default(),
            trace: TraceConfig::default(),
            metrics: MetricsConfig::default(),
        }
    }
}

impl RuntimeConfig {
    /// Convenience constructor: `n` speculative CPUs, everything else
    /// default.
    pub fn with_cpus(n: usize) -> Self {
        RuntimeConfig {
            num_cpus: n,
            ..Default::default()
        }
    }

    /// Set the default forking model (builder style).
    pub fn fork_model(mut self, model: ForkModel) -> Self {
        self.fork_model = model;
        self
    }

    /// Set the injected rollback probability (builder style).  A non-zero
    /// probability opts in to [`RollbackSource::Injected`]; zero returns
    /// to real-conflicts-only behaviour.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`.
    pub fn rollback_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.rollback_probability = p;
        self.rollback_source = if p > 0.0 {
            RollbackSource::Injected
        } else {
            RollbackSource::Real
        };
        self
    }

    /// Set the rollback source explicitly (builder style).
    pub fn rollback_source(mut self, source: RollbackSource) -> Self {
        self.rollback_source = source;
        self
    }

    /// Set the global-buffer capacity of every speculative thread (builder
    /// style); shrink with [`BufferConfig::tiny`] to exercise the
    /// overflow-rollback paths.
    pub fn buffer(mut self, buffer: BufferConfig) -> Self {
        self.buffer = buffer;
        self
    }

    /// Set the shared memory arena size in bytes (builder style).
    pub fn memory_bytes(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Set the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the full governor configuration (builder style).
    pub fn governor(mut self, governor: GovernorConfig) -> Self {
        self.governor = governor;
        self
    }

    /// Select a governor policy with default tuning (builder style).
    pub fn governor_policy(mut self, policy: PolicyKind) -> Self {
        self.governor.policy = policy;
        self
    }

    /// Set the full commit-log grain/shard configuration (builder style).
    pub fn commit_log(mut self, commit_log: CommitLogConfig) -> Self {
        self.commit_log = commit_log;
        self
    }

    /// Set the commit-log tracking grain as a log2 of bytes (builder
    /// style); 3 = word, 6 = cache line, 12 = page.
    pub fn commit_grain_log2(mut self, grain_log2: u32) -> Self {
        self.commit_log.grain_log2 = grain_log2;
        self
    }

    /// Set the commit-log shard count (builder style).
    pub fn commit_shards(mut self, shards: usize) -> Self {
        self.commit_log.shards = shards;
        self
    }

    /// Choose between the lock-free CAS commit path (the default) and the
    /// locked A/B baseline (builder style).
    pub fn commit_lock_free(mut self, lock_free: bool) -> Self {
        self.commit_log.lock_free = lock_free;
        self
    }

    /// Set the full recovery-engine configuration (builder style).
    pub fn recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = recovery;
        self
    }

    /// Set the recovery mode, keeping the value-predict setting (builder
    /// style).
    pub fn recovery_mode(mut self, mode: RecoveryMode) -> Self {
        self.recovery.mode = mode;
        self
    }

    /// Enable or disable value-predict-and-retry (builder style).
    pub fn value_predict(mut self, enabled: bool) -> Self {
        self.recovery.value_predict = enabled;
        self
    }

    /// Set the commit-log version-ring depth (builder style); 1 restores
    /// the single-version validation protocol.
    pub fn ring_depth(mut self, depth: u32) -> Self {
        self.recovery.ring_depth = depth;
        self
    }

    /// Set the full adaptive-grain control configuration (builder style).
    pub fn grain_control(mut self, grain_control: GrainControlConfig) -> Self {
        self.grain_control = grain_control;
        self
    }

    /// Set the full flight-recorder configuration (builder style).
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Enable lifecycle event tracing at the default ring capacity
    /// (builder style).
    pub fn trace_events(mut self) -> Self {
        self.trace = TraceConfig::enabled();
        self
    }

    /// Set the full metrics-plane configuration (builder style).
    pub fn metrics(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = metrics;
        self
    }

    /// Enable the live metrics plane at the default sampling cadence
    /// (builder style).
    pub fn metrics_enabled(mut self) -> Self {
        self.metrics = MetricsConfig::enabled();
        self
    }

    /// Enable the adaptive-grain controller with default tuning
    /// (optimistic page start, split on false-sharing suspects) over a
    /// word-grain floor, so regions can re-split all the way to
    /// exactness (builder style).
    pub fn adaptive_grain(mut self) -> Self {
        self.commit_log.grain_log2 = mutls_membuf::WORD_GRAIN_LOG2;
        self.grain_control = GrainControlConfig::adaptive();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sensible() {
        let c = RuntimeConfig::default();
        assert!(c.num_cpus >= 1);
        assert_eq!(c.fork_model, ForkModel::Mixed);
        assert_eq!(c.rollback_probability, 0.0);
        assert_eq!(c.rollback_source, RollbackSource::Real);
        assert_eq!(c.governor.policy, PolicyKind::Static);
    }

    #[test]
    fn rollback_probability_opts_into_injection() {
        let c = RuntimeConfig::default().rollback_probability(0.3);
        assert_eq!(c.rollback_source, RollbackSource::Injected);
        let c = c.rollback_probability(0.0);
        assert_eq!(c.rollback_source, RollbackSource::Real);
        let c = c.rollback_source(RollbackSource::Injected);
        assert_eq!(c.rollback_source, RollbackSource::Injected);
    }

    #[test]
    fn buffer_builder_overrides_capacity() {
        let c = RuntimeConfig::default().buffer(BufferConfig::tiny());
        assert_eq!(c.buffer, BufferConfig::tiny());
    }

    #[test]
    fn governor_builders_select_policy() {
        let c = RuntimeConfig::default().governor_policy(PolicyKind::Throttle);
        assert_eq!(c.governor.policy, PolicyKind::Throttle);
        let g = GovernorConfig::with_policy(PolicyKind::ModelSelect).min_samples(2);
        let c = RuntimeConfig::default().governor(g);
        assert_eq!(c.governor, g);
    }

    #[test]
    fn builder_chain() {
        let c = RuntimeConfig::with_cpus(8)
            .fork_model(ForkModel::InOrder)
            .rollback_probability(0.05)
            .memory_bytes(1 << 20)
            .seed(7);
        assert_eq!(c.num_cpus, 8);
        assert_eq!(c.fork_model, ForkModel::InOrder);
        assert_eq!(c.rollback_probability, 0.05);
        assert_eq!(c.memory_bytes, 1 << 20);
        assert_eq!(c.seed, 7);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = RuntimeConfig::default().rollback_probability(1.5);
    }

    #[test]
    fn recovery_builders_and_labels() {
        let c = RuntimeConfig::default();
        assert_eq!(c.recovery, RecoveryConfig::mvcc());
        assert!(c.recovery.is_mvcc());
        assert_eq!(c.recovery.label(), "mvcc");
        let c = c.recovery(RecoveryConfig::cascade_only());
        assert_eq!(c.recovery.mode, RecoveryMode::Cascade);
        assert!(!c.recovery.value_predict);
        assert_eq!(c.recovery.label(), "cascade");
        let c = c.recovery_mode(RecoveryMode::Targeted);
        assert_eq!(c.recovery, RecoveryConfig::targeted());
        assert_eq!(c.recovery.label(), "targeted");
        let c = c.value_predict(true);
        assert_eq!(c.recovery, RecoveryConfig::targeted_with_retry());
        assert_eq!(c.recovery.label(), "targeted+retry");
        let c = c.ring_depth(mutls_membuf::DEFAULT_RING_DEPTH);
        assert_eq!(c.recovery, RecoveryConfig::default());
        // The depth-1 legacy labels are untouched; ringed non-canonical
        // combinations are suffixed.
        assert_eq!(
            RecoveryConfig::targeted_with_retry().ring_depth,
            1,
            "legacy constructor pins single-version validation"
        );
        let odd = RecoveryConfig {
            value_predict: false,
            ..RecoveryConfig::mvcc()
        };
        assert_eq!(odd.label(), "targeted+mvcc");
    }

    #[test]
    fn grain_control_builders() {
        let c = RuntimeConfig::default();
        assert!(!c.grain_control.enabled, "grain control defaults off");
        let c = c.adaptive_grain();
        assert!(c.grain_control.enabled);
        assert_eq!(
            c.commit_log.grain_log2,
            mutls_membuf::WORD_GRAIN_LOG2,
            "adaptive grain floors the table at word exactness"
        );
        assert_eq!(
            c.grain_control.initial_grain_log2,
            mutls_membuf::PAGE_GRAIN_LOG2,
            "regions start optimistically coarse"
        );
        let custom = GrainControlConfig::adaptive_from_floor(mutls_membuf::LINE_GRAIN_LOG2);
        let c = RuntimeConfig::default().grain_control(custom);
        assert_eq!(c.grain_control, custom);
    }

    #[test]
    fn trace_builders() {
        let c = RuntimeConfig::default();
        assert!(!c.trace.events, "event tracing defaults off");
        let c = c.trace_events();
        assert!(c.trace.events);
        let c = RuntimeConfig::default().trace(TraceConfig::enabled().ring_capacity(64));
        assert_eq!(c.trace.ring_capacity, 64);
    }

    #[test]
    fn commit_log_builders_set_grain_and_shards() {
        let c = RuntimeConfig::default();
        assert_eq!(c.commit_log, CommitLogConfig::default());
        let c = c.commit_grain_log2(3).commit_shards(2);
        assert_eq!(c.commit_log.grain_log2, 3);
        assert_eq!(c.commit_log.shards, 2);
        let c = c.commit_log(CommitLogConfig::page_grain());
        assert_eq!(c.commit_log, CommitLogConfig::page_grain());
        // The native runtime defaults to the lock-free commit path; the
        // locked baseline stays reachable for A/B comparisons.
        assert!(RuntimeConfig::default().commit_log.lock_free);
        let c = RuntimeConfig::default().commit_lock_free(false);
        assert!(!c.commit_log.lock_free);
        assert_eq!(c.commit_log, CommitLogConfig::default().locked());
    }
}
